//! Criterion microbenchmarks of the simulator's core data structures:
//! the lock table, the LRU cache, the event calendar, the FIFO
//! multi-server, and the random distributions. These are the inner
//! loops of every simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use dbshare_lockmgr::{GemLockTable, LockMode, LockTable};
use dbshare_model::{PageId, PartitionId, TxnId};
use desim::dist::{Alias, Zipf};
use desim::lru::LruCache;
use desim::{Calendar, MultiServer, Rng, SimDuration, SimTime};
use std::hint::black_box;

fn page(n: u64) -> PageId {
    PageId::new(PartitionId::new(0), n)
}

fn lock_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_table");
    g.bench_function("grant_release_cycle", |b| {
        let mut lt = LockTable::new();
        let mut i = 0u64;
        b.iter(|| {
            let t = TxnId::new(i);
            i += 1;
            lt.request(t, page(i % 512), LockMode::Write);
            lt.request(t, page((i + 7) % 512), LockMode::Read);
            black_box(lt.release_all(t));
        })
    });
    g.bench_function("contended_queue", |b| {
        b.iter(|| {
            let mut lt = LockTable::new();
            for i in 0..64 {
                lt.request(TxnId::new(i), page(0), LockMode::Write);
            }
            for i in 0..64 {
                black_box(lt.release(TxnId::new(i), page(0)));
            }
        })
    });
    g.bench_function("waits_for_edges", |b| {
        let mut lt = LockTable::new();
        for p in 0..32 {
            lt.request(TxnId::new(p), page(p), LockMode::Write);
            for w in 0..8 {
                lt.request(TxnId::new(1000 + p * 8 + w), page(p), LockMode::Write);
            }
        }
        b.iter(|| black_box(lt.waits_for_edges()))
    });
    g.finish();
}

fn gem_glt(c: &mut Criterion) {
    c.bench_function("gem_glt_request_mod_release", |b| {
        let mut glt = GemLockTable::new();
        let node = dbshare_model::NodeId::new(0);
        let mut i = 0u64;
        b.iter(|| {
            let t = TxnId::new(i);
            i += 1;
            black_box(glt.request(t, page(i % 256), LockMode::Write));
            glt.record_modification(page(i % 256), node, false);
            black_box(glt.release_all(t));
        })
    });
}

fn lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.bench_function("hit", |b| {
        let mut cache = LruCache::new(1_000);
        for i in 0..1_000u64 {
            cache.insert(i, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1_000;
            black_box(cache.get(&i));
        })
    });
    g.bench_function("miss_insert_evict", |b| {
        let mut cache = LruCache::new(1_000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.insert(i, i));
        })
    });
    g.finish();
}

fn calendar(c: &mut Criterion) {
    c.bench_function("calendar_schedule_pop", |b| {
        let mut cal = Calendar::new();
        let mut rng = Rng::seed_from_u64(1);
        let mut now = SimTime::ZERO;
        // steady-state heap of ~1000 events
        for _ in 0..1_000 {
            cal.schedule(now + SimDuration::from_nanos(rng.below(1_000_000)), 0u32);
        }
        b.iter(|| {
            let (t, e) = cal.pop().expect("non-empty");
            now = t;
            cal.schedule(now + SimDuration::from_nanos(rng.below(1_000_000)), e);
            black_box(e);
        })
    });
}

fn multiserver(c: &mut Criterion) {
    c.bench_function("multiserver_offer", |b| {
        let mut srv = MultiServer::new(4);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_micros(10);
            black_box(srv.offer(now, SimDuration::from_micros(35)));
        })
    });
}

fn distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributions");
    g.bench_function("zipf_sample", |b| {
        let z = Zipf::new(66_000, 1.0);
        let mut rng = Rng::seed_from_u64(2);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
    g.bench_function("alias_sample", |b| {
        let weights: Vec<f64> = (1..=1_000).map(|i| 1.0 / i as f64).collect();
        let a = Alias::new(&weights);
        let mut rng = Rng::seed_from_u64(3);
        b.iter(|| black_box(a.sample(&mut rng)))
    });
    g.bench_function("exp_sample", |b| {
        let mut rng = Rng::seed_from_u64(4);
        b.iter(|| black_box(rng.exp(50_000.0)))
    });
    g.finish();
}

criterion_group!(
    components,
    lock_table,
    gem_glt,
    lru,
    calendar,
    multiserver,
    distributions
);
criterion_main!(components);
