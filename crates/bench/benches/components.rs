//! Microbenchmarks of the simulator's core data structures: the lock
//! table, the LRU cache, the event calendar, the FIFO multi-server, and
//! the random distributions. These are the inner loops of every
//! simulation run. Runs on the dependency-free
//! [`dbshare_bench::minibench`] harness.

use dbshare_bench::minibench::Bench;
use dbshare_lockmgr::{GemLockTable, LockMode, LockTable};
use dbshare_model::{PageId, PartitionId, TxnId};
use desim::dist::{Alias, Zipf};
use desim::fxhash::FxHashMap;
use desim::lru::LruCache;
use desim::{Calendar, MultiServer, Rng, SimDuration, SimTime};
use std::collections::HashMap;
use std::hint::black_box;

fn page(n: u64) -> PageId {
    PageId::new(PartitionId::new(0), n)
}

fn lock_table(b: &Bench) {
    {
        let mut lt = LockTable::new();
        let mut i = 0u64;
        b.bench("lock_table/grant_release_cycle", || {
            let t = TxnId::new(i);
            i += 1;
            lt.request(t, page(i % 512), LockMode::Write);
            lt.request(t, page((i + 7) % 512), LockMode::Read);
            black_box(lt.release_all(t));
        });
    }
    b.bench("lock_table/contended_queue", || {
        let mut lt = LockTable::new();
        for i in 0..64 {
            lt.request(TxnId::new(i), page(0), LockMode::Write);
        }
        for i in 0..64 {
            black_box(lt.release(TxnId::new(i), page(0)));
        }
    });
    {
        let mut lt = LockTable::new();
        for p in 0..32 {
            lt.request(TxnId::new(p), page(p), LockMode::Write);
            for w in 0..8 {
                lt.request(TxnId::new(1000 + p * 8 + w), page(p), LockMode::Write);
            }
        }
        b.bench("lock_table/waits_for_edges", || {
            black_box(lt.waits_for_edges());
        });
    }
}

fn gem_glt(b: &Bench) {
    let mut glt = GemLockTable::new();
    let node = dbshare_model::NodeId::new(0);
    let mut i = 0u64;
    b.bench("gem_glt/request_mod_release", || {
        let t = TxnId::new(i);
        i += 1;
        black_box(glt.request(t, page(i % 256), LockMode::Write));
        glt.record_modification(page(i % 256), node, false);
        black_box(glt.release_all(t));
    });
}

fn lru(b: &Bench) {
    {
        let mut cache = LruCache::new(1_000);
        for i in 0..1_000u64 {
            cache.insert(i, i);
        }
        let mut i = 0u64;
        b.bench("lru_cache/hit", || {
            i = (i + 7) % 1_000;
            black_box(cache.get(&i));
        });
    }
    {
        let mut cache = LruCache::new(1_000);
        let mut i = 0u64;
        b.bench("lru_cache/miss_insert_evict", || {
            i += 1;
            black_box(cache.insert(i, i));
        });
    }
}

fn calendar(b: &Bench) {
    {
        let mut cal = Calendar::new();
        let mut rng = Rng::seed_from_u64(1);
        let mut now = SimTime::ZERO;
        // steady-state heap of ~1000 events
        for _ in 0..1_000 {
            cal.schedule(now + SimDuration::from_nanos(rng.below(1_000_000)), 0u32);
        }
        b.bench("calendar/schedule_pop", || {
            let (t, e) = cal.pop().expect("non-empty");
            now = t;
            cal.schedule(now + SimDuration::from_nanos(rng.below(1_000_000)), e);
            black_box(e);
        });
    }
    {
        // The engine's dominant pattern: a handler pops an event and
        // schedules its continuation at the same instant (near lane),
        // plus an occasional future event (heap).
        let mut cal = Calendar::new();
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1_000 {
            cal.schedule(SimTime::from_nanos(1 + rng.below(1_000_000)), 0u32);
        }
        let mut n = 0u32;
        b.bench("calendar/same_time_churn", || {
            let (t, e) = cal.pop().expect("non-empty");
            n = n.wrapping_add(1);
            if n.is_multiple_of(4) {
                cal.schedule(t + SimDuration::from_nanos(1 + rng.below(1_000_000)), e);
            } else {
                cal.schedule(t, e); // same-instant continuation
            }
            black_box(e);
        });
    }
    {
        // Far-lane stress shaped like the engine: head gaps of a few
        // hundred ns under a horizon stretched by 15 ms disk events,
        // so bucket width and the sorted current-day bucket both
        // matter (a uniform spread hides current-bucket crowding).
        let mut cal = Calendar::new();
        let mut rng = Rng::seed_from_u64(8);
        let mut now = SimTime::ZERO;
        for _ in 0..1_000 {
            cal.schedule(now + SimDuration::from_nanos(1 + rng.below(2_000)), 0u32);
        }
        for _ in 0..200 {
            cal.schedule(
                now + SimDuration::from_nanos(15_000_000 + rng.below(1_000_000)),
                0u32,
            );
        }
        let mut n = 0u32;
        b.bench("calendar/mixed_horizon", || {
            let (t, e) = cal.pop().expect("non-empty");
            now = t;
            n = n.wrapping_add(1);
            let delta = if n.is_multiple_of(6) {
                15_000_000 + rng.below(1_000_000) // disk completion
            } else {
                1 + rng.below(2_000) // CPU quantum / protocol hop
            };
            cal.schedule(now + SimDuration::from_nanos(delta), e);
            black_box(e);
        });
    }
    {
        // Sift cost with an engine-sized payload: the slab-indexed heap
        // moves 32-byte (key, slot) pairs regardless of payload size.
        #[derive(Clone, Copy)]
        struct Fat([u64; 14]);
        let mut cal = Calendar::new();
        let mut rng = Rng::seed_from_u64(6);
        let mut now = SimTime::ZERO;
        for _ in 0..1_000 {
            cal.schedule(
                now + SimDuration::from_nanos(rng.below(1_000_000)),
                Fat([0; 14]),
            );
        }
        b.bench("calendar/schedule_pop_fat_event", || {
            let (t, e) = cal.pop().expect("non-empty");
            now = t;
            cal.schedule(now + SimDuration::from_nanos(rng.below(1_000_000)), e);
            black_box(e.0[0]);
        });
    }
}

fn hashing(b: &Bench) {
    // The per-event map operations of the engine: PageId- and
    // TxnId-keyed lookups. FxHash vs the std SipHash default.
    let pages: Vec<PageId> = (0..4_096).map(page).collect();
    {
        let mut fx: FxHashMap<PageId, u64> = FxHashMap::default();
        for (i, &p) in pages.iter().enumerate() {
            fx.insert(p, i as u64);
        }
        let mut i = 0usize;
        b.bench("hashing/fx_page_lookup", || {
            i = (i + 61) % pages.len();
            black_box(fx.get(&pages[i]));
        });
    }
    {
        let mut std_map: HashMap<PageId, u64> = HashMap::new();
        for (i, &p) in pages.iter().enumerate() {
            std_map.insert(p, i as u64);
        }
        let mut i = 0usize;
        b.bench("hashing/std_page_lookup", || {
            i = (i + 61) % pages.len();
            black_box(std_map.get(&pages[i]));
        });
    }
    {
        let mut fx: FxHashMap<TxnId, u64> = FxHashMap::default();
        let mut i = 0u64;
        b.bench("hashing/fx_txn_insert_remove", || {
            i += 1;
            fx.insert(TxnId::new(i), i);
            black_box(fx.remove(&TxnId::new(i / 2)));
        });
    }
    {
        let mut std_map: HashMap<TxnId, u64> = HashMap::new();
        let mut i = 0u64;
        b.bench("hashing/std_txn_insert_remove", || {
            i += 1;
            std_map.insert(TxnId::new(i), i);
            black_box(std_map.remove(&TxnId::new(i / 2)));
        });
    }
}

fn pipe(b: &Bench) {
    use desim::pipe;
    {
        // Per-item hand-off: one mutex acquisition per send (the
        // pre-batching cost model). The drain thread keeps the ring
        // from filling, so this measures the uncontended-lock path.
        let (tx, rx) = pipe::channel::<u64>(1024);
        let drain = std::thread::spawn(move || while rx.recv().is_some() {});
        let mut i = 0u64;
        b.bench("pipe/channel_send_per_item", || {
            i += 1;
            tx.send(i).expect("drain thread alive");
        });
        drop(tx);
        drain.join().unwrap();
    }
    {
        // Batched lane: the lock is taken once per 256-item batch, so
        // the steady-state push is a bounds check and a Vec write.
        let (mut tx, rx) = pipe::lane::<u64>(256, 8);
        let drain = std::thread::spawn(move || {
            let mut spare = None;
            while let Some(batch) = rx.recv(spare.take()) {
                spare = Some(batch);
            }
        });
        let mut i = 0u64;
        b.bench("pipe/lane_push_batch256", || {
            i += 1;
            tx.push(i).expect("drain thread alive");
        });
        drop(tx);
        drain.join().unwrap();
    }
}

fn multiserver(b: &Bench) {
    let mut srv = MultiServer::new(4);
    let mut now = SimTime::ZERO;
    b.bench("multiserver/offer", || {
        now += SimDuration::from_micros(10);
        black_box(srv.offer(now, SimDuration::from_micros(35)));
    });
}

fn distributions(b: &Bench) {
    {
        let z = Zipf::new(66_000, 1.0);
        let mut rng = Rng::seed_from_u64(2);
        b.bench("distributions/zipf_sample", || {
            black_box(z.sample(&mut rng));
        });
    }
    {
        let weights: Vec<f64> = (1..=1_000).map(|i| 1.0 / i as f64).collect();
        let a = Alias::new(&weights);
        let mut rng = Rng::seed_from_u64(3);
        b.bench("distributions/alias_sample", || {
            black_box(a.sample(&mut rng));
        });
    }
    {
        let mut rng = Rng::seed_from_u64(4);
        b.bench("distributions/exp_sample", || {
            black_box(rng.exp(50_000.0));
        });
    }
}

fn main() {
    let b = Bench::from_args();
    lock_table(&b);
    gem_glt(&b);
    lru(&b);
    calendar(&b);
    hashing(&b);
    pipe(&b);
    multiserver(&b);
    distributions(&b);
}
