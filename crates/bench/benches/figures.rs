//! End-to-end benchmarks: one group per paper figure.
//!
//! Each benchmark runs the figure's *representative configuration* as a
//! short end-to-end simulation, so `cargo bench` both exercises every
//! experiment path and tracks simulator performance over time. The
//! full-length figure data comes from the `repro` binary
//! (`cargo run --release -p dbshare-bench --bin repro`), which prints
//! the same rows/series the paper reports. Runs on the dependency-free
//! [`dbshare_bench::minibench`] harness.

use dbshare_bench::minibench::Bench;
use dbshare_model::{CouplingMode, LogStorage, PageTransferMode, RoutingStrategy, UpdateStrategy};
use dbshare_sim::experiments::{
    debit_credit_run, trace_run, BtStorage, DebitCreditRun, RunLength, TraceRun,
};
use std::hint::black_box;
use std::time::Duration;

/// Short but non-trivial run: enough transactions to exercise steady
/// state without making `cargo bench` take minutes.
const BENCH_RUN: RunLength = RunLength {
    warmup: 100,
    measured: 800,
};

fn bench_base(nodes: u16) -> DebitCreditRun {
    DebitCreditRun::baseline(nodes, BENCH_RUN)
}

fn fig41(b: &Bench) {
    for (label, routing, update) in [
        (
            "random_force",
            RoutingStrategy::Random,
            UpdateStrategy::Force,
        ),
        (
            "random_noforce",
            RoutingStrategy::Random,
            UpdateStrategy::NoForce,
        ),
        (
            "affinity_force",
            RoutingStrategy::Affinity,
            UpdateStrategy::Force,
        ),
        (
            "affinity_noforce",
            RoutingStrategy::Affinity,
            UpdateStrategy::NoForce,
        ),
    ] {
        b.bench(&format!("fig41_routing_x_update/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                routing,
                update,
                ..bench_base(4)
            }));
        });
    }
}

fn fig42(b: &Bench) {
    for buffer in [200u64, 1_000] {
        b.bench(&format!("fig42_buffer_size/buffer_{buffer}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                routing: RoutingStrategy::Random,
                buffer,
                ..bench_base(4)
            }));
        });
    }
}

fn fig43(b: &Bench) {
    for (label, bt) in [("disk", BtStorage::Disk), ("gem", BtStorage::Gem)] {
        b.bench(&format!("fig43_bt_allocation/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                routing: RoutingStrategy::Random,
                update: UpdateStrategy::Force,
                buffer: 1_000,
                bt,
                ..bench_base(4)
            }));
        });
    }
}

fn fig44(b: &Bench) {
    for (label, bt) in [
        ("volatile_cache", BtStorage::VolatileCache),
        ("nonvolatile_cache", BtStorage::NvCache),
    ] {
        b.bench(&format!("fig44_disk_caches/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                routing: RoutingStrategy::Random,
                update: UpdateStrategy::Force,
                buffer: 1_000,
                bt,
                ..bench_base(4)
            }));
        });
    }
}

fn fig45(b: &Bench) {
    for (label, coupling) in [
        ("gem_locking", CouplingMode::GemLocking),
        ("pcl", CouplingMode::Pcl),
    ] {
        b.bench(&format!("fig45_coupling/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                coupling,
                routing: RoutingStrategy::Random,
                ..bench_base(4)
            }));
        });
    }
}

fn fig46(b: &Bench) {
    // Fig. 4.6 derives throughput-at-80%-CPU from the same runs as
    // Fig. 4.5 with buffer 1000; benchmark that configuration.
    for (label, coupling) in [
        ("gem_locking", CouplingMode::GemLocking),
        ("pcl", CouplingMode::Pcl),
    ] {
        b.bench(&format!("fig46_throughput_runs/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                coupling,
                routing: RoutingStrategy::Random,
                buffer: 1_000,
                ..bench_base(4)
            }));
        });
    }
}

fn fig47(b: &Bench) {
    for (label, coupling) in [
        ("gem_locking", CouplingMode::GemLocking),
        ("pcl", CouplingMode::Pcl),
    ] {
        b.bench(&format!("fig47_trace/{label}"), || {
            black_box(trace_run(TraceRun {
                nodes: 2,
                coupling,
                routing: RoutingStrategy::Affinity,
                read_optimization: true,
                run: RunLength {
                    warmup: 50,
                    measured: 400,
                },
                seed: 7,
            }));
        });
    }
}

fn ablation_gem_page_transfer(b: &Bench) {
    // Extension (§6): exchanging NOFORCE pages through GEM instead of
    // the network.
    for (label, transfer) in [
        ("network", PageTransferMode::Network),
        ("gem", PageTransferMode::Gem),
    ] {
        b.bench(&format!("ablation_page_transfer/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                routing: RoutingStrategy::Random,
                buffer: 1_000,
                transfer,
                ..bench_base(4)
            }));
        });
    }
}

fn ablation_gem_log(b: &Bench) {
    // Extension (§2 usage form 1): commit log records written to GEM
    // instead of the per-node log disks.
    for (label, log) in [("log_disk", LogStorage::Disk), ("log_gem", LogStorage::Gem)] {
        b.bench(&format!("ablation_log_storage/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                log,
                ..bench_base(4)
            }));
        });
    }
}

fn ablation_gem_write_buffer(b: &Bench) {
    // Extension (§2 usage form 2): a small non-volatile GEM write
    // buffer in front of the BRANCH/TELLER disks under FORCE.
    for (label, bt) in [
        ("disk", BtStorage::Disk),
        ("gem_write_buffer", BtStorage::GemWriteBuffer),
    ] {
        b.bench(&format!("ablation_write_buffer/{label}"), || {
            black_box(debit_credit_run(DebitCreditRun {
                update: UpdateStrategy::Force,
                buffer: 1_000,
                bt,
                ..bench_base(4)
            }));
        });
    }
}

fn main() {
    let b = Bench::from_args().budget(Duration::from_secs(4));
    fig41(&b);
    fig42(&b);
    fig43(&b);
    fig44(&b);
    fig45(&b);
    fig46(&b);
    fig47(&b);
    ablation_gem_page_transfer(&b);
    ablation_gem_log(&b);
    ablation_gem_write_buffer(&b);
}
