//! Criterion benchmarks: one group per paper figure.
//!
//! Each benchmark runs the figure's *representative configuration* as a
//! short end-to-end simulation, so `cargo bench` both exercises every
//! experiment path and tracks simulator performance over time. The
//! full-length figure data comes from the `repro` binary
//! (`cargo run --release -p dbshare-bench --bin repro`), which prints
//! the same rows/series the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use dbshare_model::{CouplingMode, LogStorage, PageTransferMode, RoutingStrategy, UpdateStrategy};
use dbshare_sim::experiments::{
    debit_credit_run, trace_run, BtStorage, DebitCreditRun, RunLength, TraceRun,
};
use std::hint::black_box;

/// Short but non-trivial run: enough transactions to exercise steady
/// state without making `cargo bench` take minutes.
const BENCH_RUN: RunLength = RunLength {
    warmup: 100,
    measured: 800,
};

fn bench_base(nodes: u16) -> DebitCreditRun {
    DebitCreditRun::baseline(nodes, BENCH_RUN)
}

fn fig41(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig41_routing_x_update");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, routing, update) in [
        ("random_force", RoutingStrategy::Random, UpdateStrategy::Force),
        ("random_noforce", RoutingStrategy::Random, UpdateStrategy::NoForce),
        ("affinity_force", RoutingStrategy::Affinity, UpdateStrategy::Force),
        ("affinity_noforce", RoutingStrategy::Affinity, UpdateStrategy::NoForce),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    routing,
                    update,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn fig42(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig42_buffer_size");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for buffer in [200u64, 1_000] {
        g.bench_function(format!("buffer_{buffer}"), |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    routing: RoutingStrategy::Random,
                    buffer,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn fig43(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig43_bt_allocation");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, bt) in [("disk", BtStorage::Disk), ("gem", BtStorage::Gem)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    routing: RoutingStrategy::Random,
                    update: UpdateStrategy::Force,
                    buffer: 1_000,
                    bt,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn fig44(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig44_disk_caches");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, bt) in [
        ("volatile_cache", BtStorage::VolatileCache),
        ("nonvolatile_cache", BtStorage::NvCache),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    routing: RoutingStrategy::Random,
                    update: UpdateStrategy::Force,
                    buffer: 1_000,
                    bt,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn fig45(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig45_coupling");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, coupling) in [
        ("gem_locking", CouplingMode::GemLocking),
        ("pcl", CouplingMode::Pcl),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    coupling,
                    routing: RoutingStrategy::Random,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn fig46(c: &mut Criterion) {
    // Fig. 4.6 derives throughput-at-80%-CPU from the same runs as
    // Fig. 4.5 with buffer 1000; benchmark that configuration.
    let mut g = c.benchmark_group("fig46_throughput_runs");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, coupling) in [
        ("gem_locking", CouplingMode::GemLocking),
        ("pcl", CouplingMode::Pcl),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    coupling,
                    routing: RoutingStrategy::Random,
                    buffer: 1_000,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn fig47(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig47_trace");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    for (label, coupling) in [
        ("gem_locking", CouplingMode::GemLocking),
        ("pcl", CouplingMode::Pcl),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(trace_run(TraceRun {
                    nodes: 2,
                    coupling,
                    routing: RoutingStrategy::Affinity,
                    read_optimization: true,
                    run: RunLength {
                        warmup: 50,
                        measured: 400,
                    },
                    seed: 7,
                }))
            })
        });
    }
    g.finish();
}

fn ablation_gem_page_transfer(c: &mut Criterion) {
    // Extension (§6): exchanging NOFORCE pages through GEM instead of
    // the network.
    let mut g = c.benchmark_group("ablation_page_transfer");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, transfer) in [
        ("network", PageTransferMode::Network),
        ("gem", PageTransferMode::Gem),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    routing: RoutingStrategy::Random,
                    buffer: 1_000,
                    transfer,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn ablation_gem_log(c: &mut Criterion) {
    // Extension (§2 usage form 1): commit log records written to GEM
    // instead of the per-node log disks.
    let mut g = c.benchmark_group("ablation_log_storage");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, log) in [("log_disk", LogStorage::Disk), ("log_gem", LogStorage::Gem)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    log,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

fn ablation_gem_write_buffer(c: &mut Criterion) {
    // Extension (§2 usage form 2): a small non-volatile GEM write
    // buffer in front of the BRANCH/TELLER disks under FORCE.
    let mut g = c.benchmark_group("ablation_write_buffer");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, bt) in [("disk", BtStorage::Disk), ("gem_write_buffer", BtStorage::GemWriteBuffer)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(debit_credit_run(DebitCreditRun {
                    update: UpdateStrategy::Force,
                    buffer: 1_000,
                    bt,
                    ..bench_base(4)
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig41,
    fig42,
    fig43,
    fig44,
    fig45,
    fig46,
    fig47,
    ablation_gem_page_transfer,
    ablation_gem_log,
    ablation_gem_write_buffer
);
criterion_main!(figures);
