//! Build script embedding run provenance into the `repro` binary.
//!
//! Captures the git revision, the compiler version, and the build
//! profile at compile time so `BENCH_repro.json` can record exactly
//! which build produced a run. Everything degrades to `"unknown"` when
//! the information is unavailable (e.g. a source tarball without
//! `.git`), so the build never fails on provenance.

use std::process::Command;

fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let text = text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}

fn main() {
    let git_rev = capture("git", &["rev-parse", "HEAD"]).map_or_else(
        || "unknown".to_string(),
        |rev| {
            let dirty = capture("git", &["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
            if dirty {
                format!("{rev}-dirty")
            } else {
                rev
            }
        },
    );
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let rustc_version = capture(&rustc, &["-V"]).unwrap_or_else(|| "unknown".to_string());
    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_string());

    println!("cargo:rustc-env=REPRO_GIT_REVISION={git_rev}");
    println!("cargo:rustc-env=REPRO_RUSTC_VERSION={rustc_version}");
    println!("cargo:rustc-env=REPRO_BUILD_PROFILE={profile}");
    // Re-run when HEAD moves so the embedded revision tracks commits.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
