//! The CI perf-regression gate, backed by the experiment store.
//!
//! ```text
//! perfgate [--max-regress-pct N] HISTORY.jsonl ARTIFACT.json
//! ```
//!
//! Reads recorded history from the store file and the run under test
//! from its `BENCH_repro.json` artifact, then applies the store's gate
//! ([`dbshare_expstore::gate`]):
//!
//! - **exit 1** when any job with an unchanged config fingerprint
//!   produced a different metric fingerprint (the simulator is
//!   deterministic — same config must mean bit-identical results), or
//!   when a figure's aggregate events/s fell more than
//!   `--max-regress-pct` percent (default 50) below the best recorded
//!   run of the identical job set;
//! - **exit 2** on unusable input: missing or malformed history or
//!   artifact, or a history with nothing to gate against. A gate that
//!   cannot see its baseline must fail loudly, not pass vacuously.
//!
//! Figures whose config set has no recorded counterpart are reported
//! and skipped — changing a sweep's shape is not a regression.

use dbshare_expstore::{gate_check, read_artifact_records, Store};
use std::path::Path;

fn fail(msg: &str) -> ! {
    eprintln!("perfgate: error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regress_pct = 50.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress-pct" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| fail("--max-regress-pct requires a value"));
                match v.parse::<f64>() {
                    Ok(p) if (0.0..100.0).contains(&p) => max_regress_pct = p,
                    _ => fail(&format!(
                        "--max-regress-pct takes a percentage in [0, 100), got {v:?}"
                    )),
                }
            }
            other if other.starts_with('-') => {
                fail(&format!("unknown flag {other:?} (try --max-regress-pct)"))
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [history_path, artifact_path] = paths.as_slice() else {
        fail("usage: perfgate [--max-regress-pct N] HISTORY.jsonl ARTIFACT.json");
    };

    let store = Store::new(history_path);
    if !store.path().exists() {
        fail(&format!("history store {history_path} does not exist"));
    }
    let read = store
        .read()
        .unwrap_or_else(|e| fail(&format!("cannot read history {history_path}: {e}")));
    if let Some(recovery) = &read.recovery {
        eprintln!("perfgate: warning: history {history_path}: {recovery}");
    }
    if read.records.is_empty() {
        fail(&format!("history store {history_path} holds no records"));
    }
    let current = read_artifact_records(Path::new(artifact_path)).unwrap_or_else(|e| fail(&e));
    if current.is_empty() {
        fail(&format!("artifact {artifact_path} holds no job records"));
    }

    println!(
        "perfgate: {} history record(s) vs {} current job(s), \
         events/s floor at -{max_regress_pct:.0}%",
        read.records.len(),
        current.len()
    );
    let outcome = gate_check(&read.records, &current, max_regress_pct);
    for note in &outcome.notes {
        println!("  ok: {note}");
    }
    for failure in &outcome.failures {
        println!("  FAIL: {failure}");
    }
    if outcome.passed() {
        println!("perfgate: PASS");
    } else {
        println!("perfgate: FAIL ({} finding(s))", outcome.failures.len());
        std::process::exit(1);
    }
}
