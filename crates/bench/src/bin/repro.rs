//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--jobs N] [--cores N] [--json PATH] [--nodes 1,2,5,10]
//!       [--csv DIR] [--svg DIR] [--trace DIR] [--timeline DIR]
//!       [--profile] [--alloc-stats] [--compare OLD.json]
//!       [--history [DIR]] [--report [PATH]] [--no-history] [-v]
//!       [--scale smoke|full] [--explain [PATH]] [--knee smoke|full]
//!       [--ticker [SECS]]
//!       [table41|fig41|fig42|fig43|fig44|fig45|fig46|fig47|lockengine|all]
//! ```
//!
//! Each figure prints one row per curve and one column per node count
//! with the figure's metric (mean response time in ms; TPS/node at 80%
//! CPU for Fig. 4.6; normalized response for Fig. 4.7). All selected
//! figures are flattened into independent jobs and executed on the
//! `dbshare-harness` worker pool (`--jobs N`, default: all cores);
//! every run is deterministic, so the printed tables are byte-identical
//! for any worker count. `--cores N` additionally runs *each* job on
//! the pipeline engine with N threads (arrival producer, statistics
//! sink, trace sink; default 1 = the serial event loop) — results,
//! fingerprints, and exported traces are bit-identical at every
//! setting, only host wall-clock changes, and the per-job `cores`
//! value is recorded in the artifact and the experiment store so perf
//! comparisons stay apples-to-apples. Progress goes to stderr; a per-job artifact
//! with wall-clocks, seeds, and headline metrics is written to
//! `BENCH_repro.json` (`--json PATH` to relocate). `--verbose`
//! additionally prints the full per-run reports; `--csv DIR` writes
//! every report field per figure; `--svg DIR` draws each figure.
//! `--profile` prints the engine's always-on event-loop counters
//! (per-event-type and per-subsystem, aggregated per figure and for
//! the whole suite, with events/s of host wall-clock) to stderr —
//! stdout stays byte-identical with or without the flag.
//!
//! The binary installs a counting global allocator (a thread-local
//! increment per allocation), so every artifact records per-job
//! `host_allocs` / `allocs_per_event`. `--alloc-stats` additionally
//! prints the per-figure and suite allocs/event to stderr, and
//! `--compare OLD.json` prints a per-figure delta table (wall seconds,
//! events/s, allocs/event) between this run and a saved artifact —
//! the old file is validated *before* the run starts and a
//! missing/malformed artifact exits non-zero.
//!
//! Every run is also appended to the experiment store — one JSON line
//! per job under `exphistory/history.jsonl` (`--history DIR` to
//! relocate, `--no-history` to skip) — with config and metric
//! fingerprints, build provenance, and host cost. `--history` prints
//! per-figure trend tables over every recorded run to stderr,
//! including the delta against the best prior run of the identical
//! job set; `--report [PATH]` renders the same store as an HTML page
//! (default `<store dir>/report.html`). The separate `perfgate`
//! binary turns the store into a CI regression gate.
//!
//! `--timeline DIR` turns on the simulator's timeline sampler and
//! writes one CSV per figure (`<fig>_timeline.csv`: windowed
//! throughput, response components, occupancy, and utilizations per
//! curve point). `--trace DIR` turns on structured tracing and writes
//! one Perfetto-loadable Chrome trace-event JSON per curve point
//! (`<fig>_<curve>_n<N>.trace.json`); traces record every event, so
//! pair the flag with `--quick`, one figure, and a short `--nodes`
//! list. Both outputs are stamped with simulated time only and are
//! byte-identical across repeated runs and any `--jobs` value; with
//! neither flag the engine runs the exact unobserved path, leaving
//! stdout and the allocation profile untouched.
//!
//! `--scale smoke|full` adds the memory-lean large-system scenario
//! family: `full` sweeps 50–200 nodes against a fixed million-account
//! database (the 200-node endpoint processes on the order of 10^8
//! calendar events), `smoke` is the CI-sized miniature (≤64 nodes,
//! 100k accounts). The scale presets carry their own node axes and run
//! lengths, so `--nodes` and `--quick` do not affect them. Without a
//! figure selector, `--scale` runs only the scale sweep (figures can
//! still be requested alongside). Every scale job records its peak-RSS
//! estimate in the artifact and the experiment store.
//!
//! `--explain` attributes every selected figure after the run: a
//! per-point table naming the *binding constraint* (the most-utilized
//! resource), the runner-up, and the queue-wait shares of mean
//! response time, plus a knee verdict per curve — printed to stderr
//! and written as a JSON sidecar (`BENCH_explain.json`, or the given
//! path). Everything derives from deterministic report fields, so the
//! table and sidecar are byte-identical across `--jobs` and `--cores`.
//! `--knee smoke|full` answers the knee question directly: instead of
//! the fixed `--scale` grid it bisects the node axis per curve —
//! hi endpoint first (one job if the curve never saturates), then lo,
//! then midpoints until the bracket narrows to a quarter of the span.
//! Probes run through the ordinary job pool, are recorded in the
//! experiment store under `knee-smoke`/`knee-full`, and fingerprint-
//! match the fixed grid's rows at the same node counts. `--ticker
//! [SECS]` (default 2) prints a live stderr line per interval — jobs
//! done/running, aggregate events/s, simulated time, ETA, peak RSS,
//! and pipeline-lane occupancy — sampled from observer-only gauges
//! that leave every result bit-identical.

use dbshare_bench::chart::Chart;
use dbshare_bench::html_report;
use dbshare_bench::trace_export::{self, TimelineRows};
use dbshare_expstore::{
    figure_runs, gate_check, read_artifact_records, short_rev, FigureRun, Record,
};
use dbshare_harness::{
    rss, run_knee, write_artifact, CountingAlloc, Harness, History, Json, Observe, Outcome,
    Provenance, Store, Sweep,
};
use dbshare_sim::experiments::{self, CurveGrid, RunLength, ScalePreset, Series};
use dbshare_sim::explain;
use dbshare_sim::{RunProfile, RunReport};
use std::path::{Path, PathBuf};

/// Count every heap allocation the reproduction performs, so
/// `--alloc-stats` can report per-job allocator traffic and the
/// artifact can pin allocs/event. Counting is a thread-local increment
/// per `alloc`/`realloc` — cheap enough to leave always on.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Which metric a figure plots.
#[derive(Clone, Copy)]
enum Metric {
    MeanResponse,
    TpsAt80,
    NormResponse,
}

impl Metric {
    fn label(self) -> &'static str {
        match self {
            Metric::MeanResponse => "mean response time [ms]",
            Metric::TpsAt80 => "TPS per node at 80% CPU",
            Metric::NormResponse => "normalized response time [ms]",
        }
    }
    fn of(self, r: &RunReport) -> f64 {
        match self {
            Metric::MeanResponse => r.mean_response_ms,
            Metric::TpsAt80 => r.tps_per_node_at_80pct_cpu,
            Metric::NormResponse => r.norm_response_ms,
        }
    }
}

/// One reproducible figure: its id, title, metric, node list, and the
/// preset that lays out its job grid.
struct Figure {
    name: &'static str,
    title: &'static str,
    metric: Metric,
    trace_nodes: bool,
    grid: fn(&[u16], RunLength) -> Vec<CurveGrid>,
}

// Adapters so the scale presets (which carry their own node axes and
// run lengths) fit the common `Figure::grid` signature.
fn scale_smoke_adapter(_nodes: &[u16], _run: RunLength) -> Vec<CurveGrid> {
    experiments::scale_smoke_grid()
}
fn scale_full_adapter(_nodes: &[u16], _run: RunLength) -> Vec<CurveGrid> {
    experiments::scale_full_grid()
}

/// The `--scale` scenario family: selected by flag, never by `all`
/// (the full sweep is deliberately expensive).
const SCALE_SMOKE: Figure = Figure {
    name: "scale-smoke",
    title: "Scale smoke  16-64 nodes, 100k accounts (memory-lean presets)",
    metric: Metric::MeanResponse,
    trace_nodes: false,
    grid: scale_smoke_adapter,
};
const SCALE_FULL: Figure = Figure {
    name: "scale-full",
    title: "Scale  50-200 nodes, 1M accounts (memory-lean presets)",
    metric: Metric::MeanResponse,
    trace_nodes: false,
    grid: scale_full_adapter,
};

const FIGURES: &[Figure] = &[
    Figure {
        name: "fig41",
        title: "Fig. 4.1  GEM locking: workload allocation x update strategy (buffer 200)",
        metric: Metric::MeanResponse,
        trace_nodes: false,
        grid: experiments::fig41_grid,
    },
    Figure {
        name: "fig42",
        title: "Fig. 4.2  buffer size 200 vs 1000 (random routing, GEM locking)",
        metric: Metric::MeanResponse,
        trace_nodes: false,
        grid: experiments::fig42_grid,
    },
    Figure {
        name: "fig43",
        title: "Fig. 4.3  BRANCH/TELLER allocation disk vs GEM (buffer 1000)",
        metric: Metric::MeanResponse,
        trace_nodes: false,
        grid: experiments::fig43_grid,
    },
    Figure {
        name: "fig44",
        title: "Fig. 4.4  disk caches for BRANCH/TELLER (FORCE, buffer 1000)",
        metric: Metric::MeanResponse,
        trace_nodes: false,
        grid: experiments::fig44_grid,
    },
    Figure {
        name: "fig45",
        title: "Fig. 4.5  PCL vs GEM locking",
        metric: Metric::MeanResponse,
        trace_nodes: false,
        grid: experiments::fig45_grid,
    },
    Figure {
        name: "fig46",
        title: "Fig. 4.6  throughput per node at 80% CPU utilization (buffer 1000)",
        metric: Metric::TpsAt80,
        trace_nodes: false,
        grid: experiments::fig46_grid,
    },
    Figure {
        name: "lockengine",
        title: "S5   GEM locking vs central lock engine [Yu87] (random routing, buffer 200)",
        metric: Metric::MeanResponse,
        trace_nodes: false,
        grid: experiments::lock_engine_comparison_grid,
    },
    Figure {
        name: "fig47",
        title: "Fig. 4.7  PCL vs GEM locking, real-life (synthetic trace) workload",
        metric: Metric::NormResponse,
        trace_nodes: true,
        grid: experiments::fig47_grid,
    },
];

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Verifies an output directory is creatable and writable *before* the
/// (possibly long) run: create it and probe-write a scratch file.
/// A bad `--trace`/`--timeline`/`--csv`/`--svg` destination exits 2
/// immediately instead of failing after the simulations finish.
fn ensure_writable_dir(flag: &str, dir: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        fail(&format!("{flag}: cannot create directory {dir:?}: {e}"));
    }
    let probe = Path::new(dir).join(".repro-write-probe");
    if let Err(e) = std::fs::write(&probe, b"") {
        fail(&format!("{flag}: directory {dir:?} is not writable: {e}"));
    }
    let _ = std::fs::remove_file(&probe);
}

fn parse_nodes(s: &str) -> Vec<u16> {
    let nodes: Vec<u16> = s
        .split(',')
        .map(|x| match x.trim().parse::<u16>() {
            Ok(0) => fail("node counts must be >= 1"),
            Ok(n) => n,
            Err(_) => fail(&format!(
                "--nodes takes a comma-separated list of integers, got {x:?}"
            )),
        })
        .collect();
    if nodes.is_empty() {
        fail("--nodes needs at least one node count");
    }
    nodes
}

fn arg_value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    args.get(i)
        .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
}

fn print_series(fig: &Figure, series: &[Series]) {
    println!("\n=== {} ===  (metric: {})", fig.title, fig.metric.label());
    // Column axis: the union of node counts across all curves, so no
    // curve's points are silently misaligned if the sweeps differ.
    let mut nodes: Vec<u16> = Vec::new();
    for s in series {
        for n in s.node_counts() {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    nodes.sort_unstable();
    print!("{:<38}", "curve \\ nodes");
    for n in &nodes {
        print!("{n:>9}");
    }
    println!();
    for s in series {
        print!("{:<38}", s.label);
        for n in &nodes {
            match s.at(*n) {
                Some(r) => print!("{:>9.1}", fig.metric.of(r)),
                None => print!("{:>9}", "n/a"),
            }
        }
        println!();
    }
}

fn write_svg(dir: &str, fig: &Figure, series: &[Series]) {
    let mut chart = Chart::new(fig.title, "nodes", fig.metric.label());
    for s in series {
        chart.add_series(
            &s.label,
            s.points
                .iter()
                .map(|(n, r)| (*n as f64, fig.metric.of(r)))
                .collect(),
        );
    }
    let path = format!("{dir}/{}.svg", fig.name);
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, chart.render(860, 480)))
    {
        fail(&format!("cannot write {path}: {e}"));
    }
    println!("wrote {path}");
}

fn write_csv(dir: &str, name: &str, series: &[Series]) {
    let mut out = String::from(
        "curve,nodes,mean_response_ms,ci95_ms,p50_ms,p95_ms,norm_response_ms,\
         throughput_tps,tps_per_node_at_80pct_cpu,cpu_utilization,cpu_utilization_max,\
         gem_utilization,lock_engine_utilization,network_utilization,\
         messages_per_txn,page_requests_per_txn,page_req_delay_ms,\
         lock_requests_per_txn,local_lock_fraction,lock_wait_ms,io_wait_ms,\
         invalidations_per_txn,reads_per_txn,writes_per_txn,evict_writes_per_txn,\
         deadlock_aborts,timeout_aborts\n",
    );
    for s in series {
        for (n, r) in &s.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.label.replace(',', ";"),
                n,
                r.mean_response_ms,
                r.response_ci95_ms.unwrap_or(f64::NAN),
                r.p50_response_ms,
                r.p95_response_ms,
                r.norm_response_ms,
                r.throughput_tps,
                r.tps_per_node_at_80pct_cpu,
                r.cpu_utilization,
                r.cpu_utilization_max,
                r.gem_utilization,
                r.lock_engine_utilization,
                r.network_utilization,
                r.messages_per_txn,
                r.page_requests_per_txn,
                r.page_req_delay_ms,
                r.lock_requests_per_txn,
                r.local_lock_fraction.unwrap_or(f64::NAN),
                r.lock_wait_ms,
                r.io_wait_ms,
                r.invalidations_per_txn,
                r.reads_per_txn,
                r.writes_per_txn,
                r.evict_writes_per_txn,
                r.deadlock_aborts,
                r.timeout_aborts,
            ));
        }
    }
    let path = format!("{dir}/{name}.csv");
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, out)) {
        fail(&format!("cannot write {path}: {e}"));
    }
    println!("wrote {path}");
}

/// A curve label reduced to a filename-safe slug (`"2 CPUs, FORCE"`
/// becomes `"2-cpus--force"`).
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Writes one figure's timeline windows (every curve point) as a CSV.
fn write_timeline(dir: &str, figure: &str, outcome: &Outcome) {
    let rows: Vec<TimelineRows<'_>> = outcome
        .results
        .iter()
        .filter(|r| r.job.figure == figure)
        .map(|r| TimelineRows {
            curve: &r.job.curve,
            nodes: r.job.nodes,
            windows: &r.observations.timeline,
        })
        .collect();
    let out = trace_export::timeline_csv(&rows);
    let path = format!("{dir}/{figure}_timeline.csv");
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, out)) {
        fail(&format!("cannot write {path}: {e}"));
    }
    println!("wrote {path}");
}

/// Writes one Chrome trace-event JSON per curve point of a figure.
fn write_traces(dir: &str, figure: &str, outcome: &Outcome) {
    for r in outcome.results.iter().filter(|r| r.job.figure == figure) {
        let out = trace_export::chrome_trace(&r.observations.trace, r.job.nodes);
        let path = format!(
            "{dir}/{figure}_{}_n{}.trace.json",
            slug(&r.job.curve),
            r.job.nodes
        );
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, out)) {
            fail(&format!("cannot write {path}: {e}"));
        }
        println!("wrote {path}");
    }
}

/// Per-figure aggregate of the numbers `--alloc-stats` and `--compare`
/// work with.
#[derive(Default, Clone, Copy)]
struct FigureAgg {
    wall_secs: f64,
    events: u64,
    allocs: f64,
}

impl FigureAgg {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
    fn allocs_per_event(&self) -> f64 {
        self.allocs / (self.events.max(1)) as f64
    }
}

/// Aggregates the current run per figure (preserving `figures` order)
/// plus a trailing `"suite"` total.
fn aggregate_outcome(outcome: &Outcome, figures: &[&Figure]) -> Vec<(String, FigureAgg)> {
    let mut rows: Vec<(String, FigureAgg)> = Vec::new();
    let mut suite = FigureAgg::default();
    for fig in figures {
        let mut agg = FigureAgg::default();
        for res in outcome.results.iter().filter(|r| r.job.figure == fig.name) {
            agg.wall_secs += res.wall_secs;
            agg.events += res.report.events_processed;
            agg.allocs += res.report.profile.host_allocs as f64;
        }
        suite.wall_secs += agg.wall_secs;
        suite.events += agg.events;
        suite.allocs += agg.allocs;
        rows.push((fig.name.to_string(), agg));
    }
    rows.push(("suite".to_string(), suite));
    rows
}

/// Folds experiment-store records (from any source: a saved artifact
/// via [`read_artifact_records`], or the current run via
/// [`Outcome::store_records`]) into the same per-figure shape, with a
/// trailing `"suite"` total. Figures keep first-appearance order.
fn aggregates_from_records(records: &[Record]) -> Vec<(String, FigureAgg)> {
    let mut rows: Vec<(String, FigureAgg)> = Vec::new();
    let mut suite = FigureAgg::default();
    for rec in records {
        let agg = match rows.iter_mut().find(|(name, _)| *name == rec.figure) {
            Some((_, agg)) => agg,
            None => {
                rows.push((rec.figure.clone(), FigureAgg::default()));
                &mut rows.last_mut().expect("just pushed").1
            }
        };
        agg.wall_secs += rec.wall_secs;
        agg.events += rec.events_processed;
        agg.allocs += rec.allocs_per_event * rec.events_processed as f64;
        suite.wall_secs += rec.wall_secs;
        suite.events += rec.events_processed;
        suite.allocs += rec.allocs_per_event * rec.events_processed as f64;
    }
    rows.push(("suite".to_string(), suite));
    rows
}

/// Prints the `--compare` delta table: old vs new wall-clock, event
/// rate, and allocs/event for every figure both runs contain.
fn print_compare(old_path: &str, old: &[(String, FigureAgg)], new: &[(String, FigureAgg)]) {
    eprintln!("\n=== comparison vs {old_path} ===");
    eprintln!(
        "{:<12}{:>10}{:>10}{:>8}  {:>11}{:>11}{:>8}  {:>10}{:>10}{:>8}",
        "figure",
        "wall_old",
        "wall_new",
        "x",
        "ev/s_old",
        "ev/s_new",
        "x",
        "al/ev_old",
        "al/ev_new",
        "x"
    );
    for (name, cur) in new {
        let Some((_, prev)) = old.iter().find(|(n, _)| n == name) else {
            eprintln!("{name:<12}(not in old artifact)");
            continue;
        };
        let ratio = |old_v: f64, new_v: f64| {
            if new_v.abs() < 1e-12 {
                f64::NAN
            } else {
                old_v / new_v
            }
        };
        eprintln!(
            "{:<12}{:>9.2}s{:>9.2}s{:>7.2}x  {:>11.0}{:>11.0}{:>7.2}x  {:>10.4}{:>10.4}{:>7.2}x",
            name,
            prev.wall_secs,
            cur.wall_secs,
            ratio(prev.wall_secs, cur.wall_secs),
            prev.events_per_sec(),
            cur.events_per_sec(),
            ratio(cur.events_per_sec(), prev.events_per_sec()),
            prev.allocs_per_event(),
            cur.allocs_per_event(),
            ratio(prev.allocs_per_event(), cur.allocs_per_event()),
        );
    }
    eprintln!(
        "(x columns: wall and allocs/event are old/new — higher is better; \
         ev/s is new/old — higher is better)"
    );
}

/// Prints per-figure trend tables over every run the store recorded.
/// Stderr only — wall-clocks differ run to run, and stdout must stay
/// byte-identical with or without the flag.
fn print_history(store_path: &Path, wanted: &[&Figure]) {
    let read = match Store::new(store_path).read() {
        Ok(read) => read,
        Err(e) => {
            eprintln!("history: cannot read {}: {e}", store_path.display());
            return;
        }
    };
    if let Some(recovery) = &read.recovery {
        eprintln!("history {}: {recovery}", store_path.display());
    }
    let rows = figure_runs(&read.records);
    for fig in wanted {
        let fig_rows: Vec<&FigureRun> = rows.iter().filter(|r| r.figure == fig.name).collect();
        if fig_rows.is_empty() {
            continue;
        }
        eprintln!(
            "\n=== history [{}] ({} recorded run(s)) ===",
            fig.name,
            fig_rows.len()
        );
        eprintln!(
            "{:<22}{:<18}{:<14}{:>5}{:>6}{:>10}{:>9}{:>11}{:>10}{:>8}{:>14}  vs best prior",
            "run",
            "when (UTC)",
            "rev",
            "jobs",
            "cores",
            "events",
            "wall s",
            "events/s",
            "al/ev",
            "rss MB",
            "binding",
        );
        for (i, row) in fig_rows.iter().enumerate() {
            // Baseline: the best *earlier* run of the identical job
            // set *and engine thread count*, matching the gate's and
            // the HTML report's framing — a serial run is never the
            // wall-clock baseline of a parallel one.
            let best_prior = fig_rows[..i]
                .iter()
                .filter(|p| p.config_set == row.config_set && p.cores == row.cores)
                .map(|p| p.events_per_sec())
                .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))));
            let delta = match best_prior {
                None => "-".to_string(),
                Some(best) => format!("{:+.1}%", (row.events_per_sec() / best - 1.0) * 100.0),
            };
            eprintln!(
                "{:<22}{:<18}{:<14}{:>5}{:>6}{:>10}{:>9.2}{:>11.0}{:>10.4}{:>8}{:>14}  {delta}",
                row.run,
                html_report::utc_datetime(row.created_unix),
                short_rev(&row.git_revision),
                row.jobs,
                row.cores,
                row.events,
                row.wall_secs,
                row.events_per_sec(),
                row.allocs_per_event,
                rss::format_mb(row.peak_rss_mb),
                row.binding.as_deref().unwrap_or("-"),
            );
        }
    }
}

/// Renders the store as the HTML report page at `out_path`.
fn write_report(store_path: &Path, out_path: &Path) {
    let read = match Store::new(store_path).read() {
        Ok(read) => read,
        Err(e) => fail(&format!(
            "--report: cannot read {}: {e}",
            store_path.display()
        )),
    };
    if read.records.is_empty() {
        eprintln!(
            "--report: store {} holds no records, skipping",
            store_path.display()
        );
        return;
    }
    let page = html_report::render(&read.records);
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            fail(&format!("cannot create {}: {e}", parent.display()));
        }
    }
    if let Err(e) = std::fs::write(out_path, page) {
        fail(&format!("cannot write {}: {e}", out_path.display()));
    }
    eprintln!("wrote {}", out_path.display());
}

fn print_details(series: &[Series]) {
    for s in series {
        for (n, r) in &s.points {
            println!("[{} N={}]\n{}", s.label, n, r);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run = RunLength::full();
    let mut nodes: Option<Vec<u16>> = None;
    let mut which: Vec<String> = Vec::new();
    let mut verbose = false;
    let mut profile = false;
    let mut alloc_stats = false;
    let mut compare: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut svg: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut timeline_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut cores: Option<u32> = None;
    let mut json_path = String::from("BENCH_repro.json");
    let mut history_dir = String::from("exphistory");
    let mut show_history = false;
    let mut no_history = false;
    let mut report: Option<Option<String>> = None;
    let mut scale: Option<&'static Figure> = None;
    let mut explain_to: Option<String> = None;
    let mut knee: Option<(&'static str, ScalePreset)> = None;
    let mut ticker: Option<std::time::Duration> = None;
    // Known figure selectors, needed during parsing too: `--history`
    // and `--report` take *optional* values, so a selector following
    // them must not be swallowed as the value.
    let known: Vec<&str> = std::iter::once("table41")
        .chain(std::iter::once("all"))
        .chain(FIGURES.iter().map(|f| f.name))
        .collect();
    let optional_value = |args: &[String], i: usize| -> Option<String> {
        args.get(i + 1)
            .filter(|v| !v.starts_with('-') && !known.contains(&v.as_str()))
            .cloned()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => run = RunLength::quick(),
            "--verbose" | "-v" => verbose = true,
            "--profile" => profile = true,
            "--alloc-stats" => alloc_stats = true,
            "--compare" => {
                i += 1;
                compare = Some(arg_value(&args, i, "--compare").to_string());
            }
            "--nodes" => {
                i += 1;
                nodes = Some(parse_nodes(arg_value(&args, i, "--nodes")));
            }
            "--jobs" => {
                i += 1;
                let v = arg_value(&args, i, "--jobs");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => fail(&format!("--jobs takes an integer >= 1, got {v:?}")),
                }
            }
            "--cores" => {
                i += 1;
                let v = arg_value(&args, i, "--cores");
                match v.parse::<u32>() {
                    Ok(n) if n >= 1 => cores = Some(n),
                    _ => fail(&format!("--cores takes an integer >= 1, got {v:?}")),
                }
            }
            "--json" => {
                i += 1;
                json_path = arg_value(&args, i, "--json").to_string();
            }
            "--csv" => {
                i += 1;
                csv = Some(arg_value(&args, i, "--csv").to_string());
            }
            "--svg" => {
                i += 1;
                svg = Some(arg_value(&args, i, "--svg").to_string());
            }
            "--trace" => {
                i += 1;
                trace_dir = Some(arg_value(&args, i, "--trace").to_string());
            }
            "--timeline" => {
                i += 1;
                timeline_dir = Some(arg_value(&args, i, "--timeline").to_string());
            }
            "--history" => {
                show_history = true;
                if let Some(dir) = optional_value(&args, i) {
                    history_dir = dir;
                    i += 1;
                }
            }
            "--no-history" => no_history = true,
            "--scale" => {
                i += 1;
                scale = Some(match arg_value(&args, i, "--scale") {
                    "smoke" => &SCALE_SMOKE,
                    "full" => &SCALE_FULL,
                    other => fail(&format!("--scale takes smoke or full, got {other:?}")),
                });
            }
            "--report" => {
                if let Some(path) = optional_value(&args, i) {
                    report = Some(Some(path));
                    i += 1;
                } else {
                    report = Some(None);
                }
            }
            "--explain" => {
                explain_to = Some(match optional_value(&args, i) {
                    Some(path) => {
                        i += 1;
                        path
                    }
                    None => "BENCH_explain.json".to_string(),
                });
            }
            "--knee" => {
                i += 1;
                knee = Some(match arg_value(&args, i, "--knee") {
                    "smoke" => ("knee-smoke", ScalePreset::SMOKE),
                    "full" => ("knee-full", ScalePreset::FULL),
                    other => fail(&format!("--knee takes smoke or full, got {other:?}")),
                });
            }
            "--ticker" => {
                let secs = match optional_value(&args, i) {
                    Some(v) => {
                        i += 1;
                        match v.parse::<f64>() {
                            Ok(s) if s > 0.0 && s.is_finite() => s,
                            _ => fail(&format!("--ticker takes seconds > 0, got {v:?}")),
                        }
                    }
                    None => 2.0,
                };
                ticker = Some(std::time::Duration::from_secs_f64(secs));
            }
            other if other.starts_with('-') => fail(&format!(
                "unknown flag {other:?} (try --quick, --jobs, --cores, --json, --nodes, --csv, \
                 --svg, --trace, --timeline, --profile, --alloc-stats, --compare, --history, \
                 --report, --no-history, --scale, --explain, --knee, --ticker, -v)"
            )),
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    // `--scale`/`--knee` alone run only their own jobs; figure
    // selectors can still be added alongside them.
    if which.is_empty() && scale.is_none() && knee.is_none() {
        which.push("all".to_string());
    }
    // Reject unknown figure names instead of silently doing nothing.
    for w in &which {
        if !known.contains(&w.as_str()) {
            fail(&format!(
                "unknown figure {w:?}; valid: {}",
                known.join(", ")
            ));
        }
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    // Validate the --compare baseline *before* the (possibly long) run:
    // a missing or malformed artifact fails fast and non-zero instead
    // of wasting the run and limping through with an empty table.
    let compare_old: Option<(String, Vec<Record>)> = compare.as_ref().map(|old_path| {
        let records = read_artifact_records(Path::new(old_path))
            .unwrap_or_else(|e| fail(&format!("--compare: {e}")));
        (old_path.clone(), records)
    });

    // Likewise probe every export destination up front: an unwritable
    // --trace/--timeline/--csv/--svg directory exits 2 now, not after
    // the run.
    for (flag, dir) in [
        ("--csv", &csv),
        ("--svg", &svg),
        ("--trace", &trace_dir),
        ("--timeline", &timeline_dir),
    ] {
        if let Some(dir) = dir {
            ensure_writable_dir(flag, dir);
        }
    }

    let provenance = Provenance {
        git_revision: env!("REPRO_GIT_REVISION").to_string(),
        rustc_version: env!("REPRO_RUSTC_VERSION").to_string(),
        build_profile: env!("REPRO_BUILD_PROFILE").to_string(),
    };
    let store_path: PathBuf = Path::new(&history_dir).join("history.jsonl");

    let dc_nodes = nodes
        .clone()
        .unwrap_or_else(|| vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    let tr_nodes = nodes.unwrap_or_else(|| vec![1, 2, 4, 6, 8]);

    if want("table41") {
        println!("{}", experiments::table41());
    }

    // Flatten every selected figure into one job list and run the pool
    // once, so late jobs of one figure overlap with early jobs of the
    // next. Each run is deterministic and results are reassembled in
    // input order, so stdout is byte-identical for any --jobs value.
    let mut wanted: Vec<&Figure> = FIGURES.iter().filter(|f| want(f.name)).collect();
    if let Some(scale_fig) = scale {
        wanted.push(scale_fig);
    }
    let sweeps: Vec<Sweep> = wanted
        .iter()
        .map(|fig| Sweep {
            figure: fig.name.to_string(),
            grid: (fig.grid)(
                if fig.trace_nodes {
                    &tr_nodes
                } else {
                    &dc_nodes
                },
                run,
            ),
        })
        .collect();
    // Observation stays all-off unless asked for, keeping the engine on
    // the exact unobserved execution path (and stdout byte-identical).
    let observe = Observe {
        timeline_every: timeline_dir.as_ref().map(|_| Observe::DEFAULT_WINDOW),
        trace: trace_dir.is_some(),
    };
    let mut harness = Harness::new().progress(true).observe(observe);
    if let Some(n) = jobs {
        harness = harness.workers(n);
    }
    if let Some(n) = cores {
        // Oversubscribing engine stages past the physical cores only
        // adds context-switch overhead to every job, so clamp instead
        // of silently running N worker threads on fewer CPUs.
        let host = std::thread::available_parallelism()
            .map(|p| p.get() as u32)
            .unwrap_or(1);
        let n = if n > host {
            eprintln!("repro: --cores {n} exceeds host_cpus {host}; clamping to {host}");
            host
        } else {
            n
        };
        harness = harness.cores(n);
    }
    if !no_history {
        harness = harness.history(History {
            path: store_path.clone(),
            provenance: provenance.clone(),
        });
    }
    if let Some(every) = ticker {
        harness = harness.ticker(every);
    }
    let outcome: Outcome = harness.run(sweeps);

    for fig in &wanted {
        let series = outcome
            .series_for(fig.name)
            .expect("harness returns every submitted figure");
        print_series(fig, series);
        if let Some(dir) = &csv {
            write_csv(dir, fig.name, series);
        }
        if let Some(dir) = &svg {
            write_svg(dir, fig, series);
        }
        if let Some(dir) = &timeline_dir {
            write_timeline(dir, fig.name, &outcome);
        }
        if let Some(dir) = &trace_dir {
            write_traces(dir, fig.name, &outcome);
        }
        if verbose {
            print_details(series);
        }
    }

    // The knee bisection runs its probes one at a time through the
    // same harness (history appends and the ticker apply per probe).
    if let Some((knee_figure, preset)) = &knee {
        println!(
            "\n=== knee [{knee_figure}] (saturation threshold {:.0}%) ===",
            explain::SATURATION_THRESHOLD * 100.0
        );
        let knee_outcome = run_knee(&harness, knee_figure, preset, explain::SATURATION_THRESHOLD);
        print!("{}", knee_outcome.render());
    }

    // Attribution: a pure function of the (deterministic) reports, so
    // the stderr table and the sidecar are byte-identical across
    // --jobs and --cores.
    if let Some(sidecar_path) = &explain_to {
        let explains: Vec<explain::FigureExplain> = wanted
            .iter()
            .map(|fig| {
                let series = outcome
                    .series_for(fig.name)
                    .expect("harness returns every submitted figure");
                explain::explain_figure(fig.name, series, explain::SATURATION_THRESHOLD)
            })
            .collect();
        for fe in &explains {
            eprint!("\n{}", fe.render());
        }
        if let Err(e) = std::fs::write(sidecar_path, explain::sidecar_json(&explains)) {
            fail(&format!("--explain: cannot write {sidecar_path}: {e}"));
        }
        eprintln!("wrote {sidecar_path}");
    }

    if profile && !outcome.results.is_empty() {
        // Stderr only: stdout must stay byte-identical with or without
        // the flag (the repro tables are diffed against golden output).
        let mut suite = RunProfile::default();
        for fig in &wanted {
            let mut agg = RunProfile::default();
            let mut events = 0u64;
            let mut wall = 0.0f64;
            for res in outcome.results.iter().filter(|r| r.job.figure == fig.name) {
                agg.merge(&res.report.profile);
                events += res.report.events_processed;
                wall += res.wall_secs;
            }
            suite.merge(&agg);
            eprintln!(
                "profile [{}]: {:.0} events/s over {:.2}s job wall",
                fig.name,
                events as f64 / wall.max(1e-9),
                wall
            );
            eprintln!("{agg}");
        }
        let total_events: u64 = outcome
            .results
            .iter()
            .map(|r| r.report.events_processed)
            .sum();
        eprintln!(
            "profile [suite]: {:.0} events/s over {:.2}s pool wall ({} events, {} jobs)",
            total_events as f64 / outcome.total_wall_secs.max(1e-9),
            outcome.total_wall_secs,
            total_events,
            outcome.results.len()
        );
        eprintln!("{suite}");
    }

    if alloc_stats && !outcome.results.is_empty() {
        // Stderr for the same reason as --profile: stdout stays
        // byte-identical with or without the flag.
        for (name, agg) in aggregate_outcome(&outcome, &wanted) {
            eprintln!(
                "alloc [{name}]: {:.4} allocs/event ({} allocs, {} events, {:.2}s job wall)",
                agg.allocs_per_event(),
                agg.allocs,
                agg.events,
                agg.wall_secs
            );
        }
    }

    if let Some((old_path, old)) = &compare_old {
        if !outcome.results.is_empty() {
            let current = outcome.store_records(&provenance);
            print_compare(
                old_path,
                &aggregates_from_records(old),
                &aggregates_from_records(&current),
            );
            // The store's gate, run informationally: flags metric drift
            // for unchanged config fingerprints and reports each
            // figure's events/s against the baseline's best comparable
            // run — the same checks `perfgate` enforces in CI.
            let gate = gate_check(old, &current, 50.0);
            for note in &gate.notes {
                eprintln!("compare: ok: {note}");
            }
            for failure in &gate.failures {
                eprintln!("compare: NOTE: {failure}");
            }
        }
    }

    if !outcome.results.is_empty() {
        // Stamp the artifact with build/run provenance (captured by the
        // crate's build script) so a saved BENCH_repro.json records
        // exactly which build and command produced it.
        let mut doc = outcome.artifact();
        doc.set(
            "provenance",
            Json::obj(vec![
                ("git_revision", Json::Str(env!("REPRO_GIT_REVISION").into())),
                (
                    "rustc_version",
                    Json::Str(env!("REPRO_RUSTC_VERSION").into()),
                ),
                (
                    "build_profile",
                    Json::Str(env!("REPRO_BUILD_PROFILE").into()),
                ),
                (
                    "command_line",
                    Json::Str(
                        std::iter::once("repro".to_string())
                            .chain(args.iter().cloned())
                            .collect::<Vec<_>>()
                            .join(" "),
                    ),
                ),
            ]),
        );
        if let Err(e) = write_artifact(Path::new(&json_path), &doc) {
            fail(&format!("cannot write {json_path}: {e}"));
        }
        eprintln!(
            "wrote {json_path} ({} jobs, {} workers, {:.2}s wall)",
            outcome.results.len(),
            outcome.workers,
            outcome.total_wall_secs
        );
    }

    // Trend tables and the HTML report read the store *after* this
    // run's append, so the freshly recorded run is included.
    if show_history {
        print_history(&store_path, &wanted);
    }
    if let Some(report_path) = &report {
        let out_path = report_path
            .clone()
            .map(PathBuf::from)
            .unwrap_or_else(|| Path::new(&history_dir).join("report.html"));
        write_report(&store_path, &out_path);
    }
}
