//! A small, dependency-free SVG line-chart renderer used by the
//! `repro` binary to draw the paper's figures (`--svg DIR`).
//!
//! Deliberately minimal: numeric x/y axes with "nice" ticks, one
//! polyline + marker set per series, and a legend. Enough to eyeball
//! the reproduced figures against the paper's.

use std::fmt::Write as _;

/// Chart margins and layout constants (pixels).
const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 210.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 48.0;

/// A distinguishable line color palette.
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// An x/y line chart with one or more named series.
///
/// ```rust
/// use dbshare_bench::chart::Chart;
/// let mut c = Chart::new("Fig. X", "nodes", "response [ms]");
/// c.add_series("GEM", vec![(1.0, 70.0), (5.0, 72.0), (10.0, 74.0)]);
/// let svg = c.render(640, 400);
/// assert!(svg.contains("<svg") && svg.contains("GEM"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Chart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points (drawn in the given order).
    pub fn add_series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.to_string(), points));
        self
    }

    /// Number of series added.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Renders to an SVG document string.
    ///
    /// # Panics
    ///
    /// Panics if no series with at least one point was added, or if any
    /// coordinate is not finite.
    pub fn render(&self, width: u32, height: u32) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        assert!(!pts.is_empty(), "chart has no data");
        for &(x, y) in &pts {
            assert!(x.is_finite() && y.is_finite(), "non-finite point ({x},{y})");
        }
        let (x_min, x_max) = bounds(pts.iter().map(|p| p.0));
        // y axis starts at zero (the paper's response-time charts do)
        let (_, y_raw_max) = bounds(pts.iter().map(|p| p.1));
        let y_ticks = nice_ticks(0.0, y_raw_max.max(1e-9), 6);
        let y_max = *y_ticks.last().expect("ticks non-empty");
        let x_ticks = nice_ticks(x_min, x_max.max(x_min + 1e-9), 8);
        let x_lo = *x_ticks.first().expect("ticks non-empty");
        let x_hi = *x_ticks.last().expect("ticks non-empty");

        let w = width as f64;
        let h = height as f64;
        let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = h - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = |x: f64| MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo).max(1e-12) * plot_w;
        let sy = |y: f64| MARGIN_TOP + plot_h - y / y_max.max(1e-12) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{width}" height="{height}" fill="white"/>"#
        );
        // title
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="22" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_LEFT,
            escape(&self.title)
        );
        // axes
        let _ = write!(
            svg,
            r#"<line x1="{l:.1}" y1="{b:.1}" x2="{r:.1}" y2="{b:.1}" stroke="black"/><line x1="{l:.1}" y1="{t:.1}" x2="{l:.1}" y2="{b:.1}" stroke="black"/>"#,
            l = MARGIN_LEFT,
            r = MARGIN_LEFT + plot_w,
            t = MARGIN_TOP,
            b = MARGIN_TOP + plot_h,
        );
        // ticks + grid
        for &tx in &x_ticks {
            let x = sx(tx);
            let _ = write!(
                svg,
                r#"<line x1="{x:.1}" y1="{b:.1}" x2="{x:.1}" y2="{b2:.1}" stroke="black"/><text x="{x:.1}" y="{ty:.1}" text-anchor="middle">{}</text>"#,
                fmt_num(tx),
                b = MARGIN_TOP + plot_h,
                b2 = MARGIN_TOP + plot_h + 5.0,
                ty = MARGIN_TOP + plot_h + 18.0,
            );
        }
        for &ty in &y_ticks {
            let y = sy(ty);
            let _ = write!(
                svg,
                r##"<line x1="{l:.1}" y1="{y:.1}" x2="{r:.1}" y2="{y:.1}" stroke="#dddddd"/><text x="{tx:.1}" y="{yy:.1}" text-anchor="end">{}</text>"##,
                fmt_num(ty),
                l = MARGIN_LEFT,
                r = MARGIN_LEFT + plot_w,
                tx = MARGIN_LEFT - 8.0,
                yy = y + 4.0,
            );
        }
        // axis labels
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            h - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        );
        // series
        for (i, (name, points)) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let dash = if i >= PALETTE.len() {
                r#" stroke-dasharray="6 3""#
            } else {
                ""
            };
            let path: Vec<String> = points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"{dash}/>"#,
                path.join(" ")
            );
            for &(x, y) in points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // legend entry
            let ly = MARGIN_TOP + 14.0 * i as f64 + 8.0;
            let lx = MARGIN_LEFT + plot_w + 12.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="1.8"{dash}/><text x="{:.1}" y="{:.1}">{}</text>"#,
                lx + 18.0,
                lx + 24.0,
                ly + 4.0,
                escape(name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// "Nice numbers" tick generation (1/2/5 × 10^k steps) covering
/// `[lo, hi]` with about `n` ticks.
fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(hi > lo, "degenerate range");
    let span = hi - lo;
    let raw_step = span / n.max(2) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).floor() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t < hi + step * 0.999 {
        // avoid -0.0 and float crumbs
        let v = (t / step).round() * step;
        ticks.push(if v == 0.0 { 0.0 } else { v });
        t += step;
    }
    ticks
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_chart() {
        let mut c = Chart::new("T", "x", "y");
        c.add_series("a", vec![(1.0, 10.0), (2.0, 20.0)]);
        c.add_series("b", vec![(1.0, 5.0), (2.0, 8.0)]);
        let svg = c.render(640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>") && svg.contains(">b</text>"));
        assert_eq!(svg.matches("<circle").count(), 4);
        assert_eq!(c.series_count(), 2);
    }

    #[test]
    fn y_axis_starts_at_zero() {
        let mut c = Chart::new("T", "x", "y");
        c.add_series("a", vec![(1.0, 100.0), (2.0, 120.0)]);
        let svg = c.render(640, 400);
        assert!(svg.contains(">0</text>"), "zero tick missing");
    }

    #[test]
    fn ticks_are_nice_numbers() {
        let t = nice_ticks(0.0, 97.0, 6);
        assert_eq!(t, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let t = nice_ticks(1.0, 10.0, 8);
        assert!(t
            .iter()
            .all(|v| (v / 2.0).fract().abs() < 1e-9 || (v / 1.0).fract().abs() < 1e-9));
        assert!(*t.first().expect("non-empty") <= 1.0);
        assert!(*t.last().expect("non-empty") >= 10.0);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = Chart::new("a<b & c", "x", "y");
        c.add_series("s<1>", vec![(0.0, 1.0)]);
        let svg = c.render(320, 200);
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("s<1>"));
    }

    #[test]
    fn single_point_series_render() {
        let mut c = Chart::new("T", "x", "y");
        c.add_series("dot", vec![(5.0, 5.0)]);
        let svg = c.render(320, 200);
        assert!(svg.contains("<circle"));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_chart_panics() {
        Chart::new("T", "x", "y").render(320, 200);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_point_panics() {
        let mut c = Chart::new("T", "x", "y");
        c.add_series("bad", vec![(0.0, f64::NAN)]);
        c.render(320, 200);
    }
}
