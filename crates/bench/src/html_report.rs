//! The experiment store's HTML report: the perf trajectory as a page.
//!
//! Sits next to [`chart`](crate::chart) (the per-figure SVG renderer)
//! but reads the *store*, not a single run: one section per figure
//! with a trend table over every recorded run (host event rate,
//! allocations/event, wall, engine cores), inline sparklines for host
//! events/s *and* the simulated headline metrics (throughput TPS and
//! mean response — flat lines by construction, since results are
//! bit-identical run to run; any kink is a regression), an events/s
//! vs engine-cores sparkline when the store holds runs at more than
//! one `cores` setting, a result-set hash that makes metric drift
//! visible at a glance (two runs with the same config column and
//! different result column produced different simulated results for
//! the same configuration), and the delta against the best comparable
//! earlier run — comparable meaning same job set *and* same engine
//! thread count. Rendering is pure string building over [`Record`]s —
//! deterministic for a given store, no timestamps of its own, so
//! re-rendering an unchanged store is byte-identical.

use dbshare_expstore::{fnv1a_hex, short_rev, FigureRun, Record};

/// Renders the full report page for `records` (append order).
pub fn render(records: &[Record]) -> String {
    let rows = dbshare_expstore::figure_runs(records);
    let mut figures: Vec<&str> = Vec::new();
    for row in &rows {
        if !figures.contains(&row.figure.as_str()) {
            figures.push(&row.figure);
        }
    }
    let runs = {
        let mut seen: Vec<&str> = Vec::new();
        for r in records {
            if !seen.contains(&r.run.as_str()) {
                seen.push(&r.run);
            }
        }
        seen
    };

    let mut out = String::with_capacity(16 * 1024);
    out.push_str(HEADER);
    out.push_str(&format!(
        "<h1>dbshare perf history</h1>\n<p class=\"meta\">{} recorded run(s), \
         {} figure(s), {} job row(s)</p>\n",
        runs.len(),
        figures.len(),
        records.len()
    ));

    for figure in figures {
        let fig_rows: Vec<&FigureRun> = rows.iter().filter(|r| r.figure == figure).collect();
        out.push_str(&format!("<h2>{}</h2>\n", escape(figure)));
        out.push_str(&sparklines(records, &fig_rows));
        out.push_str(
            "<table>\n<tr><th>run</th><th>when (UTC)</th><th>rev</th><th>jobs</th>\
             <th>cores</th><th>events</th><th>wall s</th><th>events/s</th><th>allocs/ev</th>\
             <th>rss MB</th><th>binding</th><th>TPS</th><th>resp ms</th>\
             <th>config</th><th>results</th><th>vs best prior</th></tr>\n",
        );
        for (i, row) in fig_rows.iter().enumerate() {
            // Best *earlier* run of the identical job set at the same
            // engine thread count: the store's regression baseline. A
            // serial run never baselines a parallel one.
            let best_prior = fig_rows[..i]
                .iter()
                .filter(|p| p.config_set == row.config_set && p.cores == row.cores)
                .map(|p| p.events_per_sec())
                .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))));
            let delta = match best_prior {
                None => "<td class=\"na\">&mdash;</td>".to_string(),
                Some(best) => {
                    let pct = (row.events_per_sec() / best - 1.0) * 100.0;
                    let class = if pct < -10.0 {
                        "bad"
                    } else if pct > 10.0 {
                        "good"
                    } else {
                        "flat"
                    };
                    format!("<td class=\"{class}\">{pct:+.1}%</td>")
                }
            };
            let (tps, resp) = sim_metrics(records, row);
            // Largest per-job peak RSS of the row, when sampled —
            // the memory trend of the scale presets.
            let rss = match row.peak_rss_mb {
                Some(mb) => format!("<td>{mb:.0}</td>"),
                None => "<td class=\"na\">&mdash;</td>".to_string(),
            };
            // The hottest job's binding constraint, when attributed
            // (older stores carry none — dash, never a guess).
            let binding = match (&row.binding, row.binding_utilization) {
                (Some(b), Some(u)) => format!("<td>{} {:.0}%</td>", escape(b), u * 100.0),
                _ => "<td class=\"na\">&mdash;</td>".to_string(),
            };
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{:.2}</td><td>{:.0}</td><td>{:.4}</td>\
                 {rss}{binding}<td>{tps:.1}</td><td>{resp:.1}</td>\
                 <td class=\"hash\">{}</td><td class=\"hash\">{}</td>{}</tr>\n",
                escape(&row.run),
                utc_datetime(row.created_unix),
                escape(short_rev(&row.git_revision)),
                row.jobs,
                row.cores,
                row.events,
                row.wall_secs,
                row.events_per_sec(),
                row.allocs_per_event,
                &row.config_set[..8.min(row.config_set.len())],
                &result_set(records, row)[..8],
                delta,
            ));
        }
        out.push_str("</table>\n");
        out.push_str(&util_stack(records, figure));
    }
    out.push_str(FOOTER);
    out
}

/// The figure's utilization stack: per-resource fill bars for every
/// job of the latest run that carried an attribution, with the binding
/// constraint's cell bolded. Empty for stores written before
/// attribution existed — nothing rendered, never a zero bar.
fn util_stack(records: &[Record], figure: &str) -> String {
    let Some(run) = records
        .iter()
        .rev()
        .find(|r| r.figure == figure && r.utils.is_some())
        .map(|r| r.run.clone())
    else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str(&format!(
        "<p class=\"meta\">utilization stack of run {} (binding constraint in bold)</p>\n\
         <table>\n<tr><th>curve</th><th>n</th><th>cpu</th><th>coupling</th>\
         <th>network</th><th>disk</th><th>log</th></tr>\n",
        escape(&run)
    ));
    for r in records
        .iter()
        .filter(|r| r.figure == figure && r.run == run)
    {
        let Some(us) = r.utils else { continue };
        let binding = r.binding.as_deref().unwrap_or("");
        let cell = |v: f64, is_binding: bool| {
            let pct = (v * 100.0).clamp(0.0, 100.0);
            format!(
                "<td class=\"{}\" style=\"background:linear-gradient(90deg,#bfdbfe {pct:.0}%,\
                 transparent {pct:.0}%)\">{pct:.0}%</td>",
                if is_binding { "bind" } else { "util" }
            )
        };
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td>{}{}{}{}{}</tr>\n",
            escape(&r.curve),
            r.nodes,
            cell(us.cpu, binding == "cpu"),
            cell(us.coupling, binding == "gem" || binding == "lock-engine"),
            cell(us.network, binding == "network"),
            cell(us.disk, binding.starts_with("disk:")),
            cell(us.log, binding == "log"),
        ));
    }
    out.push_str("</table>\n");
    out
}

/// FNV over the figure-run's sorted `(config, metric)` fingerprint
/// pairs: equal iff the run produced bit-identical simulated results
/// for the identical job set.
fn result_set(records: &[Record], row: &FigureRun) -> String {
    let mut pairs: Vec<String> = records
        .iter()
        .filter(|r| r.run == row.run && r.figure == row.figure && r.cores == row.cores)
        .map(|r| format!("{}:{}", r.config_fingerprint, r.metric_fingerprint))
        .collect();
    pairs.sort_unstable();
    fnv1a_hex(&pairs.join(","))
}

/// Job-mean simulated headline metrics (throughput TPS, mean response
/// ms) of one figure-run's rows. Cores-invariant by the engine's
/// bit-identity guarantee, so the report plots them as drift alarms.
fn sim_metrics(records: &[Record], row: &FigureRun) -> (f64, f64) {
    let mut tps = 0.0;
    let mut resp = 0.0;
    let mut n = 0usize;
    for r in records
        .iter()
        .filter(|r| r.run == row.run && r.figure == row.figure && r.cores == row.cores)
    {
        tps += r.throughput_tps;
        resp += r.mean_response_ms;
        n += 1;
    }
    let n = n.max(1) as f64;
    (tps / n, resp / n)
}

/// One inline SVG polyline over `values` (index on x), labelled with
/// its range. Empty for fewer than two points.
fn spark_svg(values: &[f64], color: &str, label: &str, decimals: usize) -> String {
    if values.len() < 2 {
        return String::new();
    }
    let (w, h, pad) = (260.0f64, 40.0f64, 4.0f64);
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let points: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = pad + (w - 2.0 * pad) * i as f64 / (values.len() - 1) as f64;
            let y = h - pad - (h - 2.0 * pad) * (v - lo) / span;
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg class=\"spark\" width=\"{w:.0}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w:.0} {h:.0}\"><polyline points=\"{}\" fill=\"none\" \
         stroke=\"{color}\" stroke-width=\"1.5\"/></svg>\
         <span class=\"meta\"> {label}, {lo:.decimals$} &ndash; {hi:.decimals$}</span>\n",
        points.join(" "),
    )
}

/// The figure's sparkline block: host events/s and the simulated
/// headline metrics across runs, plus events/s vs engine cores when
/// the store holds more than one `cores` setting.
fn sparklines(records: &[Record], rows: &[&FigureRun]) -> String {
    let mut out = String::new();
    let rates: Vec<f64> = rows.iter().map(|r| r.events_per_sec()).collect();
    out.push_str(&spark_svg(&rates, "#2563eb", "events/s", 0));
    let sims: Vec<(f64, f64)> = rows.iter().map(|r| sim_metrics(records, r)).collect();
    let tps: Vec<f64> = sims.iter().map(|(t, _)| *t).collect();
    let resp: Vec<f64> = sims.iter().map(|(_, r)| *r).collect();
    out.push_str(&spark_svg(&tps, "#15803d", "sim TPS (job mean)", 1));
    out.push_str(&spark_svg(
        &resp,
        "#b45309",
        "sim mean resp ms (job mean)",
        1,
    ));

    // Best events/s per distinct cores value, ascending — the speedup
    // curve a multi-core host should show rising.
    let mut per_cores: Vec<(u32, f64)> = Vec::new();
    for row in rows {
        let rate = row.events_per_sec();
        match per_cores.iter_mut().find(|(c, _)| *c == row.cores) {
            Some((_, best)) => *best = best.max(rate),
            None => per_cores.push((row.cores, rate)),
        }
    }
    if per_cores.len() >= 2 {
        per_cores.sort_unstable_by_key(|(c, _)| *c);
        let curve: Vec<f64> = per_cores.iter().map(|(_, v)| *v).collect();
        let labels: Vec<String> = per_cores.iter().map(|(c, _)| c.to_string()).collect();
        out.push_str(&spark_svg(
            &curve,
            "#7c3aed",
            &format!("best events/s at cores {}", labels.join(", ")),
            0,
        ));
    }
    out
}

/// `seconds` since the Unix epoch as `YYYY-MM-DD HH:MM` UTC (civil
/// calendar arithmetic — no date dependency). Zero renders as `?`.
pub fn utc_datetime(seconds: u64) -> String {
    if seconds == 0 {
        return "?".to_string();
    }
    let days = (seconds / 86_400) as i64;
    let secs = seconds % 86_400;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!(
        "{year:04}-{month:02}-{day:02} {:02}:{:02}",
        secs / 3600,
        (secs % 3600) / 60
    )
}

/// Minimal HTML escaping for text interpolated into the page.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

const HEADER: &str = "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
<title>dbshare perf history</title>\n<style>\n\
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;padding:0 1rem;color:#111}\n\
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #ddd}\n\
table{border-collapse:collapse;margin:0.5rem 0;font-variant-numeric:tabular-nums}\n\
th,td{padding:0.2rem 0.7rem;text-align:right;border-bottom:1px solid #eee}\n\
th{font-weight:600;background:#f8f8f8}td:first-child,th:first-child{text-align:left}\n\
.hash{font-family:ui-monospace,monospace;color:#555}\n\
.good{color:#15803d}.bad{color:#b91c1c;font-weight:600}.flat{color:#666}.na{color:#aaa}\n\
.bind{font-weight:700}\n\
.meta{color:#666}.spark{vertical-align:middle}\n\
</style>\n</head>\n<body>\n";

const FOOTER: &str = "</body>\n</html>\n";

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_expstore::Provenance;

    fn rec(run: &str, unix: u64, figure: &str, nodes: u16, wall: f64, metric: &str) -> Record {
        Record {
            run: run.into(),
            created_unix: unix,
            provenance: Provenance {
                git_revision: format!("{run}revision000000"),
                rustc_version: "rustc".into(),
                build_profile: "release".into(),
            },
            figure: figure.into(),
            curve: "c".into(),
            nodes,
            seed: 1,
            cores: 1,
            host_cpus: 8,
            config_fingerprint: format!("cfg{figure}{nodes}"),
            metric_fingerprint: metric.into(),
            wall_secs: wall,
            events_processed: 100_000,
            allocs_per_event: 0.06,
            mean_response_ms: 50.0,
            throughput_tps: 100.0,
            peak_rss_mb: Some(64.0),
            binding: None,
            binding_utilization: None,
            next_constraint: None,
            next_utilization: None,
            utils: None,
        }
    }

    #[test]
    fn report_is_deterministic_and_covers_every_figure() {
        let records = vec![
            rec("r1", 1_754_000_000, "fig41", 1, 2.0, "m1"),
            rec("r1", 1_754_000_000, "fig45", 1, 2.0, "m2"),
            rec("r2", 1_754_100_000, "fig41", 1, 1.0, "m1"),
        ];
        let page = render(&records);
        assert_eq!(page, render(&records), "rendering is not deterministic");
        assert!(page.contains("<h2>fig41</h2>") && page.contains("<h2>fig45</h2>"));
        // r2 doubled fig41's event rate over r1: +100% vs best prior.
        assert!(page.contains("+100.0%"), "missing delta: {page}");
        // Same results => same result-set hash in both fig41 rows.
        let hash_cells: Vec<&str> = page.matches("class=\"hash\"").collect();
        assert_eq!(hash_cells.len(), 6, "two hash cells per row");
        // Sampled peak RSS lands in its own column.
        assert!(page.contains("<th>rss MB</th>"), "missing RSS column");
        assert!(page.contains("<td>64</td>"), "missing RSS cell: {page}");
        // Escapes interpolated text.
        assert!(!page.contains("<script"), "sanity");
    }

    #[test]
    fn missing_rss_samples_render_as_dashes() {
        let mut legacy = rec("r1", 1_754_000_000, "fig41", 1, 2.0, "m1");
        legacy.peak_rss_mb = None;
        let page = render(&[legacy]);
        // One dash each for the missing baseline delta, the RSS, and
        // the (unattributed) binding constraint — never a zero.
        assert_eq!(page.matches("class=\"na\"").count(), 3, "{page}");
    }

    #[test]
    fn binding_column_and_utilization_stack_render() {
        let mut attributed = rec("r1", 1_754_000_000, "fig41", 64, 2.0, "m1");
        attributed.binding = Some("network".into());
        attributed.binding_utilization = Some(0.71);
        attributed.utils = Some(dbshare_expstore::ResourceUtils {
            cpu: 0.644,
            coupling: 0.31,
            network: 0.71,
            disk: 0.39,
            log: 0.1,
        });
        let page = render(&[attributed]);
        assert!(page.contains("<th>binding</th>"), "{page}");
        assert!(page.contains("<td>network 71%</td>"), "{page}");
        assert!(page.contains("utilization stack of run r1"), "{page}");
        // The binding resource's stack cell is bolded; exactly one per
        // attributed job row.
        assert_eq!(page.matches("class=\"bind\"").count(), 1, "{page}");
    }

    #[test]
    fn parallel_rows_split_and_draw_the_cores_sparkline() {
        let mut fast_parallel = rec("r2", 1_754_100_000, "fig41", 1, 0.5, "m1");
        fast_parallel.cores = 4;
        let records = vec![
            rec("r1", 1_754_000_000, "fig41", 1, 2.0, "m1"),
            rec("r2", 1_754_100_000, "fig41", 1, 2.0, "m1"),
            fast_parallel,
        ];
        let page = render(&records);
        // The cores=4 row has no comparable (same-cores) prior, so its
        // delta cell is the em-dash, not a percentage against r1 —
        // 2 baseline dashes plus one unattributed-binding dash per row.
        assert_eq!(
            page.matches("class=\"na\"").count(),
            5,
            "first serial row and first cores=4 row both lack a baseline: {page}"
        );
        // Two distinct cores values => the events/s-vs-cores sparkline.
        assert!(
            page.contains("best events/s at cores 1, 4"),
            "missing cores sparkline: {page}"
        );
        // Simulated metrics are plotted too.
        assert!(page.contains("sim TPS"), "missing TPS sparkline: {page}");
        assert!(
            page.contains("sim mean resp"),
            "missing response sparkline: {page}"
        );
    }

    #[test]
    fn utc_datetime_matches_known_instants() {
        assert_eq!(utc_datetime(0), "?");
        assert_eq!(utc_datetime(86_400), "1970-01-02 00:00");
        assert_eq!(utc_datetime(1_786_492_800), "2026-08-12 00:00");
        assert_eq!(utc_datetime(1_754_006_400), "2025-08-01 00:00");
    }
}
