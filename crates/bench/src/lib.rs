//! Benchmark and reproduction harness for the `dbshare` workspace:
//! the `repro` binary regenerating every figure, wall-clock benches on
//! the dependency-free [`minibench`] runner, and a dependency-free
//! [`chart`] SVG renderer for drawing the figures, plus
//! [`trace_export`] turning run observations into Perfetto-loadable
//! trace JSON and per-figure timeline CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod minibench;
pub mod trace_export;
