//! Benchmark and reproduction harness for the `dbshare` workspace:
//! the `repro` binary regenerating every figure, wall-clock benches on
//! the dependency-free [`minibench`] runner, and a dependency-free
//! [`chart`] SVG renderer for drawing the figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod minibench;
