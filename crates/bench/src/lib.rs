//! Benchmark and reproduction harness for the `dbshare` workspace:
//! the `repro` binary regenerating every figure, wall-clock benches on
//! the dependency-free [`minibench`] runner, a dependency-free
//! [`chart`] SVG renderer for drawing the figures, [`trace_export`]
//! turning run observations into Perfetto-loadable trace JSON and
//! per-figure timeline CSV, and [`html_report`] rendering the
//! experiment store's regression history as a single HTML page (the
//! `perfgate` binary gates CI on the same store).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod html_report;
pub mod minibench;
pub mod trace_export;
