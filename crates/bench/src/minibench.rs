//! A minimal wall-clock benchmarking harness.
//!
//! Replaces criterion so the workspace carries no registry
//! dependencies: each benchmark warms up briefly, then runs for a fixed
//! time budget and reports mean / best iteration time. Invoked through
//! `cargo bench` (the bench targets set `harness = false`); a substring
//! filter can be passed after `--`:
//!
//! ```text
//! cargo bench -p dbshare-bench --bench components -- lock_table
//! ```

use std::time::{Duration, Instant};

/// Collects and prints benchmark measurements.
pub struct Bench {
    filter: Option<String>,
    warmup: Duration,
    budget: Duration,
}

impl Bench {
    /// Builds a runner from the process arguments: the first argument
    /// that is not a flag is used as a substring filter on benchmark
    /// names (cargo passes `--bench`; that and other flags are ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            warmup: Duration::from_millis(200),
            budget: Duration::from_secs(2),
        }
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one benchmark: `f` is called repeatedly, first for the
    /// warm-up window, then for the measurement budget (at least three
    /// iterations each), and the mean/best iteration times are printed.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        if !self.matches(name) {
            return;
        }
        let mut spin = |window: Duration| -> (u64, Duration, Duration) {
            let start = Instant::now();
            let mut iters = 0u64;
            let mut best = Duration::MAX;
            loop {
                let t0 = Instant::now();
                f();
                let dt = t0.elapsed();
                best = best.min(dt);
                iters += 1;
                let elapsed = start.elapsed();
                if elapsed >= window && iters >= 3 {
                    return (iters, elapsed, best);
                }
            }
        };
        spin(self.warmup);
        let (iters, elapsed, best) = spin(self.budget);
        let mean = elapsed / iters as u32;
        println!(
            "bench {name:<44} {:>12}/iter (best {:>12}, {iters} iters)",
            fmt_duration(mean),
            fmt_duration(best),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matches_substrings() {
        let b = Bench {
            filter: Some("lock".into()),
            warmup: Duration::ZERO,
            budget: Duration::ZERO,
        };
        assert!(b.matches("lock_table/grant"));
        assert!(!b.matches("lru/hit"));
        let all = Bench {
            filter: None,
            warmup: Duration::ZERO,
            budget: Duration::ZERO,
        };
        assert!(all.matches("anything"));
    }

    #[test]
    fn bench_runs_at_least_three_iterations() {
        let b = Bench {
            filter: None,
            warmup: Duration::ZERO,
            budget: Duration::ZERO,
        };
        let mut count = 0u32;
        b.bench("counting", || count += 1);
        assert!(
            count >= 6,
            "warmup + measure each run >= 3 iters, got {count}"
        );
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(150)), "150.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
