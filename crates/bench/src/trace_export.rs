//! Exporters for observation data: Chrome trace-event JSON (loadable
//! in Perfetto / `chrome://tracing`) and per-figure timeline CSV.
//!
//! Both exporters are pure functions from in-memory observations to a
//! `String`, built with integer-only timestamp formatting, so the
//! rendered bytes are identical across runs, hosts, and worker counts
//! whenever the input observations are — the determinism tests pin
//! exactly that.
//!
//! The trace exporter renders *derived* slices rather than every raw
//! record: wait durations are carried on the `*Done`/`Grant` events
//! (see [`desim::trace::TraceEventKind`]), so each completed wait
//! becomes one complete (`"ph":"X"`) slice placed retroactively at
//! `[end - wait, end]`. Request/queue/message markers are subsumed by
//! those slices and skipped, keeping files small enough to load
//! comfortably.

use dbshare_harness::{Observations, TimelineWindow};
use desim::trace::{unpack_page, TraceEvent, TraceEventKind, NO_TXN};

/// Formats a nanosecond count as a microsecond JSON number with three
/// decimals (`1234567` → `"1234.567"`). Integer arithmetic only, so the
/// text is bit-stable everywhere.
fn us3(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Human label for a packed page id, e.g. `"p2:817"`.
fn page_label(packed: u64) -> Option<String> {
    unpack_page(packed).map(|(part, number)| format!("p{part}:{number}"))
}

fn push_event(out: &mut String, body: &str) {
    if out.ends_with('}') {
        out.push_str(",\n");
    }
    out.push_str(body);
}

/// One complete (`"X"`) slice covering `[end - dur_ns, end]`.
#[allow(clippy::too_many_arguments)] // one positional field per JSON key
fn slice(
    out: &mut String,
    name: &str,
    cat: &str,
    node: u16,
    txn: u64,
    end_ns: u64,
    dur_ns: u64,
    args: &str,
) {
    let start = end_ns.saturating_sub(dur_ns);
    push_event(
        out,
        &format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
             \"pid\":{node},\"tid\":{txn},\"ts\":{},\"dur\":{}{args}}}",
            us3(start),
            us3(dur_ns),
        ),
    );
}

/// One thread-scoped instant (`"i"`) event.
fn instant(out: &mut String, name: &str, cat: &str, node: u16, tid: u64, at_ns: u64, args: &str) {
    push_event(
        out,
        &format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":{node},\"tid\":{tid},\"ts\":{}{args}}}",
            us3(at_ns),
        ),
    );
}

/// Renders a trace-event stream as Chrome trace-event JSON.
///
/// Layout: one Perfetto *process* per simulated node (`pid` = node),
/// one *thread* per transaction (`tid` = transaction sequence number),
/// so a node's track shows its transactions as rows with the `txn`
/// span on each row and the wait slices nested inside it. Node-scoped
/// events without a transaction (evictions, the watchdog) land on
/// `tid` 0. All timestamps are simulated time in microseconds.
pub fn chrome_trace(events: &[TraceEvent], nodes: u16) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for node in 0..nodes {
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\
                 \"args\":{{\"name\":\"node {node}\"}}}}"
            ),
        );
    }
    for ev in events {
        let ns = ev.at.as_nanos();
        let page = page_label(ev.page);
        let page_arg = page
            .as_deref()
            .map(|p| format!(",\"args\":{{\"page\":\"{p}\"}}"))
            .unwrap_or_default();
        match ev.kind {
            TraceEventKind::TxnCommit => {
                slice(&mut out, "txn", "txn", ev.node, ev.txn, ns, ev.arg, "");
            }
            TraceEventKind::TxnAdmit if ev.arg > 0 => {
                slice(
                    &mut out,
                    "input wait",
                    "wait",
                    ev.node,
                    ev.txn,
                    ns,
                    ev.arg,
                    "",
                );
            }
            TraceEventKind::LockGrant if ev.arg > 0 => {
                slice(
                    &mut out,
                    "lock wait",
                    "wait",
                    ev.node,
                    ev.txn,
                    ns,
                    ev.arg,
                    &page_arg,
                );
            }
            TraceEventKind::PageReadDone if ev.arg > 0 => {
                slice(
                    &mut out, "page io", "io", ev.node, ev.txn, ns, ev.arg, &page_arg,
                );
            }
            TraceEventKind::CommitIoDone if ev.arg > 0 => {
                slice(&mut out, "commit io", "io", ev.node, ev.txn, ns, ev.arg, "");
            }
            TraceEventKind::TxnAbort => {
                let reason = match ev.arg {
                    0 => "deadlock",
                    1 => "timeout",
                    _ => "crash",
                };
                let args = format!(",\"args\":{{\"reason\":\"{reason}\"}}");
                instant(&mut out, "abort", "txn", ev.node, ev.txn, ns, &args);
            }
            TraceEventKind::PageTransfer => {
                let p = page.as_deref().unwrap_or("?");
                let args = format!(",\"args\":{{\"page\":\"{p}\",\"to\":{}}}", ev.arg);
                instant(&mut out, "page transfer", "io", ev.node, ev.txn, ns, &args);
            }
            TraceEventKind::PageFlush => {
                let tid = if ev.txn == NO_TXN { 0 } else { ev.txn };
                instant(&mut out, "page flush", "io", ev.node, tid, ns, &page_arg);
            }
            TraceEventKind::Watchdog => {
                let args = format!(",\"args\":{{\"live_txns\":{}}}", ev.arg);
                instant(&mut out, "watchdog", "ctrl", ev.node, 0, ns, &args);
            }
            // Request, queue, release and message markers are covered
            // by the derived slices above; keep the file lean.
            _ => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One curve point's timeline, labelled for the per-figure CSV.
#[derive(Debug, Clone, Copy)]
pub struct TimelineRows<'a> {
    /// Curve label as in the figure legend.
    pub curve: &'a str,
    /// Node count of the run (the x-axis value).
    pub nodes: u16,
    /// The run's timeline windows, in order.
    pub windows: &'a [TimelineWindow],
}

/// CSV header for [`timeline_csv`], one column per exported field.
pub const TIMELINE_HEADER: &str = "curve,nodes,window,start_s,width_s,committed,throughput_tps,\
mean_resp_ms,input_ms,lock_ms,io_ms,cpu_wait_ms,cpu_service_ms,\
lock_requests,lock_waits,storage_reads,commit_writes,log_writes,evict_writes,\
page_transfers,aborts,buffer_hit_rate,mpl_in_use,mpl_queue,lock_wait_depth,\
cpu_util_mean,cpu_util_per_node,gem_util,disk_util,net_util,log_util";

/// Renders a figure's timelines as one CSV: every window of every
/// curve point, labelled by curve and node count. Per-commit response
/// components are window means in milliseconds; `cpu_util_per_node`
/// joins the per-node utilizations with `;` so the column count stays
/// fixed across node counts.
pub fn timeline_csv(rows: &[TimelineRows<'_>]) -> String {
    let mut out = String::new();
    out.push_str(TIMELINE_HEADER);
    out.push('\n');
    for tl in rows {
        for (i, w) in tl.windows.iter().enumerate() {
            let span = w.width.as_secs_f64();
            let tps = if span > 0.0 {
                w.committed as f64 / span
            } else {
                0.0
            };
            let per_commit_ms = |ns: u64| {
                if w.committed > 0 {
                    ns as f64 / w.committed as f64 / 1e6
                } else {
                    0.0
                }
            };
            let accesses = w.buffer_hits + w.buffer_misses;
            let hit_rate = if accesses > 0 {
                w.buffer_hits as f64 / accesses as f64
            } else {
                0.0
            };
            let cpu_mean = if w.cpu_util.is_empty() {
                0.0
            } else {
                w.cpu_util.iter().sum::<f64>() / w.cpu_util.len() as f64
            };
            let cpu_each = w
                .cpu_util
                .iter()
                .map(|u| format!("{u:.6}"))
                .collect::<Vec<_>>()
                .join(";");
            out.push_str(&format!(
                "{curve},{nodes},{i},{start:.6},{width:.6},{committed},{tps:.6},\
                 {resp:.6},{input:.6},{lock:.6},{io:.6},{cpu_wait:.6},{cpu_service:.6},\
                 {lock_requests},{lock_waits},{storage_reads},{commit_writes},{log_writes},\
                 {evict_writes},{page_transfers},{aborts},{hit_rate:.6},{mpl_in_use},\
                 {mpl_queue},{lock_wait_depth},{cpu_mean:.6},{cpu_each},{gem:.6},{disk:.6},\
                 {net:.6},{log:.6}\n",
                curve = tl.curve,
                nodes = tl.nodes,
                start = w.start.as_secs_f64(),
                width = span,
                committed = w.committed,
                resp = per_commit_ms(w.resp_ns),
                input = per_commit_ms(w.input_ns),
                lock = per_commit_ms(w.lock_ns),
                io = per_commit_ms(w.io_ns),
                cpu_wait = per_commit_ms(w.cpu_wait_ns),
                cpu_service = per_commit_ms(w.cpu_service_ns),
                lock_requests = w.lock_requests,
                lock_waits = w.lock_waits,
                storage_reads = w.storage_reads,
                commit_writes = w.commit_writes,
                log_writes = w.log_writes,
                evict_writes = w.evict_writes,
                page_transfers = w.page_transfers,
                aborts = w.aborts,
                mpl_in_use = w.mpl_in_use,
                mpl_queue = w.mpl_queue,
                lock_wait_depth = w.lock_wait_depth,
                gem = w.gem_util,
                disk = w.disk_util,
                net = w.net_util,
                log = w.log_util,
            ));
        }
    }
    out
}

/// Index of the first differing trace event between two runs that
/// should be identical, or `None` when the streams match. The returned
/// index localizes a determinism divergence to a single record —
/// far more useful than "the files differ".
pub fn first_divergence(a: &Observations, b: &Observations) -> Option<usize> {
    let n = a.trace.len().min(b.trace.len());
    (0..n)
        .find(|&i| a.trace[i] != b.trace[i])
        .or((a.trace.len() != b.trace.len()).then_some(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::trace::{pack_page, NO_PAGE};
    use desim::SimTime;

    fn ev(at_us: u64, kind: TraceEventKind, txn: u64, page: u64, arg: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(at_us),
            kind,
            node: 1,
            txn,
            page,
            arg,
        }
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_rerender_identical() {
        let events = vec![
            ev(100, TraceEventKind::TxnAdmit, 7, NO_PAGE, 5_000),
            ev(150, TraceEventKind::LockGrant, 7, pack_page(0, 42), 20_000),
            ev(
                300,
                TraceEventKind::PageReadDone,
                7,
                pack_page(0, 42),
                80_000,
            ),
            ev(400, TraceEventKind::TxnCommit, 7, NO_PAGE, 300_000),
            ev(450, TraceEventKind::TxnAbort, 8, NO_PAGE, 0),
            ev(500, TraceEventKind::PageTransfer, 9, pack_page(1, 3), 2),
            ev(600, TraceEventKind::Watchdog, NO_TXN, NO_PAGE, 4),
        ];
        let a = chrome_trace(&events, 2);
        let b = chrome_trace(&events, 2);
        assert_eq!(a, b, "re-render must be byte-identical");
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.trim_end().ends_with("]}"));
        assert!(a.contains("\"name\":\"txn\""));
        assert!(a.contains("\"name\":\"lock wait\""));
        assert!(a.contains("\"page\":\"p0:42\""));
        assert!(a.contains("\"reason\":\"deadlock\""));
        assert!(a.contains("\"name\":\"node 1\""));
        // The txn slice ends at 400us having lasted 300us.
        assert!(a.contains("\"ts\":100.000,\"dur\":300.000"));
    }

    #[test]
    fn request_markers_are_skipped() {
        let events = vec![
            ev(10, TraceEventKind::LockRequest, 1, pack_page(0, 1), 0),
            ev(11, TraceEventKind::MsgSend, 1, NO_PAGE, 2),
        ];
        let out = chrome_trace(&events, 1);
        assert!(!out.contains("LockRequest"));
        assert!(!out.contains("MsgSend"));
    }

    #[test]
    fn us3_formats_with_integer_arithmetic() {
        assert_eq!(us3(0), "0.000");
        assert_eq!(us3(1_234_567), "1234.567");
        assert_eq!(us3(999), "0.999");
    }

    #[test]
    fn timeline_csv_has_header_and_one_row_per_window() {
        let w = TimelineWindow {
            committed: 4,
            resp_ns: 8_000_000,
            buffer_hits: 3,
            buffer_misses: 1,
            cpu_util: vec![0.5, 0.25],
            ..TimelineWindow::default()
        };
        let rows = [TimelineRows {
            curve: "2 CPUs",
            nodes: 4,
            windows: std::slice::from_ref(&w),
        }];
        let csv = timeline_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(TIMELINE_HEADER));
        let row = lines.next().expect("data row");
        assert!(row.starts_with("2 CPUs,4,0,"));
        assert!(row.contains("0.750000")); // buffer hit rate
        assert!(row.contains("0.500000;0.250000")); // per-node cpu util
        assert_eq!(
            row.split(',').count(),
            TIMELINE_HEADER.split(',').count(),
            "column count matches header"
        );
        assert_eq!(timeline_csv(&rows), csv, "re-render must be byte-identical");
    }

    #[test]
    fn first_divergence_localizes_mismatch() {
        let mk = |arg| Observations {
            timeline: Vec::new(),
            trace: vec![
                ev(1, TraceEventKind::TxnAdmit, 1, NO_PAGE, 0),
                ev(2, TraceEventKind::TxnCommit, 1, NO_PAGE, arg),
            ],
        };
        assert_eq!(first_divergence(&mk(5), &mk(5)), None);
        assert_eq!(first_divergence(&mk(5), &mk(6)), Some(1));
        let mut longer = mk(5);
        longer
            .trace
            .push(ev(3, TraceEventKind::TxnAbort, 1, NO_PAGE, 0));
        assert_eq!(first_divergence(&mk(5), &longer), Some(2));
    }
}
