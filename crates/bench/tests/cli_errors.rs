//! CLI error paths of the `repro` binary: unusable export
//! destinations must exit 2 with a clear message *before* any
//! simulation runs — not an hour into a sweep.

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// A scratch path under the temp dir, removed on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> TempPath {
        let mut path = std::env::temp_dir();
        path.push(format!("dbshare-cli-errors-{}-{name}", std::process::id()));
        let _ = fs::remove_file(&path);
        TempPath(path)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

/// `--trace`/`--timeline` destinations that cannot become writable
/// directories (here: a child of a plain file) fail fast with exit 2,
/// before the run starts.
#[test]
fn unwritable_export_dir_exits_2_before_running() {
    let blocker = TempPath::new("blocker");
    fs::write(&blocker.0, b"plain file, not a directory").expect("scratch file");
    for flag in ["--trace", "--timeline"] {
        let bad_dir = blocker.0.join("sub");
        let started = Instant::now();
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args([flag, bad_dir.to_str().expect("utf-8 path")])
            .output()
            .expect("spawn repro");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{flag}: expected exit 2, got {:?}",
            output.status
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("cannot create directory"),
            "{flag}: stderr must name the flag and the failure, got: {stderr}"
        );
        // Fail-fast means validation, not a completed sweep: the
        // default figure set takes minutes, this must abort in
        // moments.
        assert!(
            started.elapsed().as_secs() < 30,
            "{flag}: validation did not fail fast"
        );
    }
}
