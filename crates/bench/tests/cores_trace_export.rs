//! Exported observation *bytes* are cores-invariant: the Chrome trace
//! JSON and timeline CSV rendered from a pipeline-engine run
//! (`RunControl::cores > 1`) must equal the serial engine's output
//! byte for byte — the files a user diffs after `repro --trace
//! --cores N` are the same files.

use dbshare_bench::trace_export::{chrome_trace, timeline_csv, TimelineRows};
use dbshare_model::{CouplingMode, RoutingStrategy, UpdateStrategy};
use dbshare_sim::experiments::{DebitCreditRun, RunLength, RunSpec};
use dbshare_sim::Observe;

fn spec() -> RunSpec {
    RunSpec::DebitCredit(DebitCreditRun {
        nodes: 2,
        coupling: CouplingMode::GemLocking,
        update: UpdateStrategy::NoForce,
        routing: RoutingStrategy::Random,
        ..DebitCreditRun::baseline(2, RunLength::quick())
    })
}

#[test]
fn trace_and_timeline_exports_are_byte_identical_across_cores() {
    let (_, base) = spec().execute_with(1, Observe::full());
    let base_trace = chrome_trace(&base.trace, 2);
    let base_csv = timeline_csv(&[TimelineRows {
        curve: "GEM, NOFORCE",
        nodes: 2,
        windows: &base.timeline,
    }]);
    assert!(!base.trace.is_empty(), "trace must capture events");
    assert!(!base.timeline.is_empty(), "timeline must capture windows");

    for cores in [2, 4] {
        let (_, obs) = spec().execute_with(cores, Observe::full());
        assert_eq!(
            chrome_trace(&obs.trace, 2),
            base_trace,
            "chrome trace bytes drifted at cores={cores}"
        );
        assert_eq!(
            timeline_csv(&[TimelineRows {
                curve: "GEM, NOFORCE",
                nodes: 2,
                windows: &obs.timeline,
            }]),
            base_csv,
            "timeline CSV bytes drifted at cores={cores}"
        );
    }
}
