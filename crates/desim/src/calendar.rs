//! The future event list.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the calendar: ordered by `(time, seq)` so that events
/// scheduled earlier (in wall-clock order of `schedule` calls) at the
/// same instant fire first. This FIFO tie-breaking is what makes runs
/// deterministic regardless of heap internals.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future event list of a simulation run.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped
/// in non-decreasing time order. Ties are broken by insertion order.
///
/// ```rust
/// use desim::{Calendar, SimTime};
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_millis(2), "second");
/// cal.schedule(SimTime::from_millis(1), "first");
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(1), "first")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(2), "second")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar positioned at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past of the last popped event — a
    /// causality violation that would silently corrupt results.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The time of the most recently popped event (the current clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

impl<E> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("total_scheduled", &self.scheduled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(5), 5);
        cal.schedule(SimTime::from_millis(1), 1);
        cal.schedule(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(10), ());
        cal.pop();
        cal.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), "a");
        let (t, _) = cal.pop().unwrap();
        cal.schedule(t + crate::SimDuration::from_millis(1), "b");
        cal.schedule(t, "same-time"); // same instant as current clock: allowed
        assert_eq!(cal.pop().unwrap().1, "same-time");
        assert_eq!(cal.pop().unwrap().1, "b");
        assert!(cal.is_empty());
        assert_eq!(cal.total_scheduled(), 3);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.schedule(SimTime::from_micros(9), ());
        cal.schedule(SimTime::from_micros(4), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_micros(4)));
        assert_eq!(cal.len(), 2);
    }
}
