//! The future event list.

use crate::SimTime;
use std::collections::VecDeque;

/// A far-lane entry. The ordering key packs `(time, seq)` into one
/// `u128` — time in the high 64 bits, insertion sequence in the low
/// 64 — so ordering decisions perform a single integer comparison
/// instead of two chained ones. The event payload itself lives in a
/// side slab and only its slot index rides in the entry: bucket scans
/// then walk 32-byte entries instead of the (much larger) event
/// values, which is where an event-loop-bound simulation spends most
/// of its memory traffic. Events scheduled earlier (in wall-clock
/// order of `schedule` calls) at the same instant fire first; this
/// FIFO tie-breaking is what makes runs deterministic regardless of
/// scheduler internals.
#[derive(Clone, Copy)]
struct Entry {
    /// `(time.as_nanos() << 64) | seq`.
    key: u128,
    /// Index of the event in the calendar's slab.
    slot: u32,
}

impl Entry {
    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

/// Smallest / largest bucket-ring sizes (powers of two). The floor
/// keeps tiny calendars cheap; the ceiling bounds ring memory for
/// scale runs (65536 `Vec` headers ≈ 1.5 MB).
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 16;
/// Bucket width is `1 << shift` nanoseconds; the cap keeps day
/// arithmetic well inside u64 (2^40 ns ≈ 18 min per bucket).
const MAX_SHIFT: u32 = 40;

/// The far lane of the calendar: a classic bucketed *calendar queue*
/// (R. Brown, CACM 1988). Pending entries hash by "day" — their
/// timestamp divided by a power-of-two bucket width — into a ring of
/// buckets covering the horizon `[base_day, base_day + nbuckets)`;
/// entries beyond the horizon wait in an overflow list. Insertion is
/// O(1) (a shift, a mask, a `Vec::push`); popping scans the current
/// day's bucket for its minimum key, which is the *global* minimum
/// because every other bucket holds a strictly later day and the
/// overflow lies beyond the horizon entirely.
///
/// The bucket width and ring size adapt to the observed event
/// population on rebuild: width ≈ pending-time span / pending count
/// (the mean inter-event gap), ring size ≈ pending count — so in
/// steady state a bucket holds O(1) entries and both ends of the
/// queue run in amortized constant time, replacing the binary heap's
/// O(log n) sifts. All decisions are pure functions of the schedule /
/// pop sequence, so the pop order is bit-identical to the heap's:
/// keys are unique and both structures always yield the minimum.
struct FarLane {
    /// `buckets.len()` is a power of two; `mask = len - 1`. A day `d`
    /// within the horizon lives at `buckets[d & mask]`.
    buckets: Vec<Vec<Entry>>,
    mask: u64,
    /// Bucket width exponent: `day = time_nanos >> shift`.
    shift: u32,
    /// Day of the earliest possibly-nonempty bucket. Advances lazily
    /// as pops drain days; never decreases.
    base_day: u64,
    /// Entries currently in the ring.
    count: usize,
    /// Entries with `day >= base_day + nbuckets`, unordered.
    overflow: Vec<Entry>,
    /// Minimum key in `overflow` (`u128::MAX` when empty), so the
    /// per-advance migration check is O(1).
    overflow_min: u128,
    /// Whether the bucket at `base_day` is sorted descending by key
    /// (minimum at the back). Buckets are unsorted until the day they
    /// cover becomes current: sorting is paid once per day, pops are
    /// then O(1) from the back, and same-day inserts keep the order by
    /// binary insertion. Future-day buckets never pay for ordering
    /// they may not need (a rebuild can redistribute them wholesale).
    cur_sorted: bool,
}

impl FarLane {
    fn new() -> Self {
        FarLane {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            shift: 20, // 1 ms buckets until the first rebuild adapts
            base_day: 0,
            count: 0,
            overflow: Vec::new(),
            overflow_min: u128::MAX,
            cur_sorted: false,
        }
    }

    #[inline]
    fn day_of(&self, key: u128) -> u64 {
        ((key >> 64) as u64) >> self.shift
    }

    fn len(&self) -> usize {
        self.count + self.overflow.len()
    }

    /// Inserts an entry. `now_ns` is the calendar clock — the anchor a
    /// grow-rebuild must not advance past, since any *future* insert
    /// can still arrive at any time ≥ now.
    #[inline]
    fn insert(&mut self, e: Entry, now_ns: u64) {
        let day = self.day_of(e.key);
        debug_assert!(day >= self.base_day);
        if day - self.base_day < self.buckets.len() as u64 {
            self.place(e, day);
            self.count += 1;
            if self.count > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
                self.rebuild(now_ns);
            }
        } else {
            self.overflow_min = self.overflow_min.min(e.key);
            self.overflow.push(e);
        }
    }

    /// Places an in-horizon entry into its day's bucket, preserving the
    /// current bucket's descending sort when it has one.
    #[inline]
    fn place(&mut self, e: Entry, day: u64) {
        let b = &mut self.buckets[(day & self.mask) as usize];
        if day == self.base_day && self.cur_sorted {
            // Keys are unique, so `partition_point` lands on the exact
            // slot that keeps the bucket strictly descending. Near-now
            // continuations (the common case) sit close to the back:
            // the memmove is a handful of 16-byte entries.
            let pos = b.partition_point(|x| x.key > e.key);
            b.insert(pos, e);
        } else {
            b.push(e);
        }
    }

    /// Removes and returns the minimum-key entry, plus the number of
    /// remaining far entries sharing its *time* (the caller tracks
    /// same-instant stragglers to interleave with the near lane).
    fn pop(&mut self) -> Option<(Entry, usize)> {
        if self.count == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            // Pull the overflow into a fresh horizon anchored at its
            // minimum — that entry is popped right away and becomes the
            // new `now`, so the anchor never outruns the clock. With
            // the anchor *on* the minimum, the first bucket is
            // guaranteed nonempty: no rebase can loop.
            self.rebuild((self.overflow_min >> 64) as u64);
            debug_assert!(self.count > 0);
        }
        loop {
            let idx = (self.base_day & self.mask) as usize;
            if self.buckets[idx].is_empty() {
                self.base_day += 1;
                self.cur_sorted = false;
                self.migrate_due_overflow();
                continue;
            }
            let b = &mut self.buckets[idx];
            if !self.cur_sorted {
                // First pop from this day: order it once (descending,
                // minimum at the back), then every further pop is O(1)
                // and same-day inserts binary-insert into place.
                b.sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
                self.cur_sorted = true;
            }
            let e = b.pop().expect("bucket checked nonempty");
            // All far entries at the minimum's *time* live in this same
            // bucket (same day ⇒ same bucket), contiguous at the back
            // of the descending sort.
            let min_t = e.key >> 64;
            let same = b
                .iter()
                .rev()
                .take_while(|x| (x.key >> 64) == min_t)
                .count();
            self.count -= 1;
            if self.count * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
                // Anchor at the entry being popped: it becomes `now`
                // before the caller can schedule anything else.
                self.rebuild((e.key >> 64) as u64);
            }
            return Some((e, same));
        }
    }

    /// Time of the minimum-key entry without removing it.
    fn peek_time(&self) -> Option<SimTime> {
        if self.count > 0 {
            for d in 0..self.buckets.len() as u64 {
                let b = &self.buckets[((self.base_day + d) & self.mask) as usize];
                if let Some(min) = b.iter().map(|e| e.key).min() {
                    return Some(SimTime::from_nanos((min >> 64) as u64));
                }
            }
            unreachable!("count > 0 but all buckets empty");
        }
        if self.overflow.is_empty() {
            None
        } else {
            Some(SimTime::from_nanos((self.overflow_min >> 64) as u64))
        }
    }

    /// Moves overflow entries whose day has entered the horizon into
    /// the ring. O(1) unless entries actually became due.
    fn migrate_due_overflow(&mut self) {
        let horizon = self.base_day + self.buckets.len() as u64;
        if self.overflow.is_empty() || self.day_of(self.overflow_min) >= horizon {
            return;
        }
        let mut new_min = u128::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let e = self.overflow[i];
            let day = self.day_of(e.key);
            if day < horizon {
                self.overflow.swap_remove(i);
                self.place(e, day);
                self.count += 1;
            } else {
                new_min = new_min.min(e.key);
                i += 1;
            }
        }
        self.overflow_min = new_min;
    }

    /// Re-derives the ring size and bucket width from the pending
    /// population and redistributes every entry. Ring size tracks the
    /// entry count; width tracks the mean gap between `anchor_ns` and
    /// the latest pending entry — together they put O(1) entries in
    /// each occupied day while guaranteeing the horizon reaches the
    /// whole population (width is rounded *up* to a power of two).
    /// Deterministic: a pure function of the pending entries and the
    /// anchor, which itself comes from the schedule/pop sequence.
    ///
    /// `anchor_ns` must not exceed the time of any pending entry or of
    /// any entry the caller may insert before the next rebuild; the
    /// new `base_day` sits on it.
    fn rebuild(&mut self, anchor_ns: u64) {
        self.cur_sorted = false;
        let mut all: Vec<Entry> = Vec::with_capacity(self.len());
        for b in &mut self.buckets {
            all.append(b);
        }
        all.append(&mut self.overflow);
        self.overflow_min = u128::MAX;
        self.count = 0;

        let nbuckets = all
            .len()
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
            .next_power_of_two();
        if nbuckets != self.buckets.len() {
            // Every bucket is empty here (drained into `all`), so a
            // resize in either direction only moves empty Vecs.
            self.buckets.resize_with(nbuckets, Vec::new);
            self.mask = (nbuckets - 1) as u64;
        }

        if all.is_empty() {
            // Keep shift/base_day: the next insert lands relative to
            // the current clock, wherever that is.
            return;
        }
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for e in &all {
            let t = (e.key >> 64) as u64;
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        let anchor = anchor_ns.min(min_t);
        // Round the width up (ceil log2) so `span / width <= count <=
        // nbuckets`: every entry fits in the horizon unless the shift
        // cap truncates truly enormous spans into the overflow.
        let ideal = ((max_t - anchor) / all.len() as u64).max(1);
        let shift = if ideal <= 1 {
            0
        } else {
            64 - (ideal - 1).leading_zeros()
        };
        self.shift = shift.min(MAX_SHIFT);
        self.base_day = anchor >> self.shift;
        for e in all {
            let day = self.day_of(e.key);
            if day - self.base_day < self.buckets.len() as u64 {
                self.buckets[(day & self.mask) as usize].push(e);
                self.count += 1;
            } else {
                self.overflow_min = self.overflow_min.min(e.key);
                self.overflow.push(e);
            }
        }
    }
}

/// The future event list of a simulation run.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped
/// in non-decreasing time order. Ties are broken by insertion order.
///
/// Internally the calendar is two-tier: events scheduled *at the
/// current instant* — the dominant pattern on the engine's CPU-dispatch
/// and protocol paths, where a handler schedules its continuation at
/// `now` — go to a FIFO "near lane" (`VecDeque`, O(1) push/pop) and
/// never touch the far lane. Events with a genuinely future timestamp
/// go to a bucketed calendar queue ([`FarLane`]) with O(1) amortized
/// insertion and extraction.
///
/// The FIFO tie-break contract is preserved exactly: a far entry at
/// time `t` was necessarily scheduled before the clock reached `t`,
/// hence before any lane entry (which is created at `now == t`), and
/// sequence numbers are globally monotonic — so draining the far
/// lane's `t`-entries before the near lane reproduces insertion order.
///
/// ```rust
/// use desim::{Calendar, SimTime};
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_millis(2), "second");
/// cal.schedule(SimTime::from_millis(1), "first");
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(1), "first")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(2), "second")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    far: FarLane,
    /// Event payloads of far entries; `Entry::slot` indexes here.
    /// Slots are recycled through `free`, so the slab's size tracks the
    /// peak number of pending events, not the total ever scheduled.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    /// Events at `time == now`, in insertion order. Invariant: every
    /// lane entry's timestamp equals `now`, and its seq is greater than
    /// any far entry's seq at that same timestamp.
    lane: VecDeque<E>,
    /// Far entries whose time equals `now` (they predate — and must
    /// fire before — every near-lane entry). Maintained by far pops;
    /// while the near lane is nonempty, `schedule(now, ..)` goes to
    /// the near lane, so inserts can never raise this count.
    far_at_now: usize,
    next_seq: u64,
    now: SimTime,
    scheduled: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar positioned at time zero.
    pub fn new() -> Self {
        Calendar {
            far: FarLane::new(),
            slab: Vec::new(),
            free: Vec::new(),
            lane: VecDeque::new(),
            far_at_now: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past of the last popped event — a
    /// causality violation that would silently corrupt results.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        if at == self.now && self.now != SimTime::ZERO {
            // Same-instant continuation: O(1), bypasses the far lane.
            // Time zero is excluded so that pre-run setup (scheduled
            // before the first pop, while `now` is still zero) orders
            // through the far lane like any other future event.
            self.lane.push_back(event);
        } else {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slab[s as usize] = Some(event);
                    s
                }
                None => {
                    self.slab.push(Some(event));
                    (self.slab.len() - 1) as u32
                }
            };
            self.far.insert(
                Entry {
                    key: pack(at, seq),
                    slot,
                },
                self.now.as_nanos(),
            );
        }
    }

    /// Removes and returns the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Far entries at `now` predate every lane entry (smaller seq),
        // so drain them first; the lane only fires once the far lane's
        // next event lies strictly in the future.
        if self.lane.is_empty() || self.far_at_now > 0 {
            if let Some((entry, same_time_left)) = self.far.pop() {
                let t = entry.time();
                debug_assert!(t >= self.now);
                self.now = t;
                self.far_at_now = same_time_left;
                let event = self.slab[entry.slot as usize]
                    .take()
                    .expect("far entry has a slab payload");
                self.free.push(entry.slot);
                return Some((t, event));
            }
        }
        self.lane.pop_front().map(|e| (self.now, e))
    }

    /// The time of the most recently popped event (the current clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.lane.is_empty() {
            // Lane entries are at `now`; nothing in the far lane can be
            // earlier.
            return Some(self.now);
        }
        self.far.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.far.len() + self.lane.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.far.len() == 0 && self.lane.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

impl<E> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("near_lane", &self.lane.len())
            .field("total_scheduled", &self.scheduled)
            .field("far_buckets", &self.far.buckets.len())
            .field("far_shift", &self.far.shift)
            .field("far_overflow", &self.far.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(5), 5);
        cal.schedule(SimTime::from_millis(1), 1);
        cal.schedule(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(10), ());
        cal.pop();
        cal.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), "a");
        let (t, _) = cal.pop().unwrap();
        cal.schedule(t + crate::SimDuration::from_millis(1), "b");
        cal.schedule(t, "same-time"); // same instant as current clock: allowed
        assert_eq!(cal.pop().unwrap().1, "same-time");
        assert_eq!(cal.pop().unwrap().1, "b");
        assert!(cal.is_empty());
        assert_eq!(cal.total_scheduled(), 3);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.schedule(SimTime::from_micros(9), ());
        cal.schedule(SimTime::from_micros(4), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_micros(4)));
        assert_eq!(cal.len(), 2);
    }

    /// The lane optimization must not reorder far entries and lane
    /// entries that share a timestamp: far-resident events scheduled
    /// *before* the clock reached `t` fire before same-time events
    /// scheduled *at* `t`.
    #[test]
    fn lane_respects_fifo_against_far() {
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(3);
        cal.schedule(SimTime::from_millis(1), "start");
        cal.schedule(t, "far-1"); // scheduled while now < t
        cal.schedule(t, "far-2");
        assert_eq!(cal.pop().unwrap().1, "start");
        assert_eq!(cal.pop().unwrap().1, "far-1"); // clock is now t
        cal.schedule(t, "lane-1"); // same-instant: near lane
        cal.schedule(t, "lane-2");
        assert_eq!(cal.peek_time(), Some(t));
        // far-2 (seq 2) precedes lane-1 (seq 3): insertion order holds.
        assert_eq!(cal.pop().unwrap().1, "far-2");
        assert_eq!(cal.pop().unwrap().1, "lane-1");
        assert_eq!(cal.pop().unwrap().1, "lane-2");
        assert!(cal.pop().is_none());
    }

    /// Lane entries fire before any strictly-later far entry.
    #[test]
    fn lane_fires_before_future_far_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), "a");
        cal.pop();
        cal.schedule(SimTime::from_millis(9), "future");
        cal.schedule(SimTime::from_millis(1), "lane");
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(cal.pop().unwrap(), (SimTime::from_millis(1), "lane"));
        assert_eq!(cal.pop().unwrap(), (SimTime::from_millis(9), "future"));
    }

    /// A dense burst of same-instant events mixed with future ones —
    /// the CPU-server churn pattern — keeps global FIFO order.
    #[test]
    fn same_time_churn_keeps_global_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), 0u32);
        let mut popped = Vec::new();
        let mut next = 1u32;
        while let Some((t, e)) = cal.pop() {
            popped.push(e);
            if next < 40 {
                // alternate same-instant and +1ms continuations
                cal.schedule(t, next);
                next += 1;
                cal.schedule(t + crate::SimDuration::from_millis(1), next);
                next += 1;
            }
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped.len(), 41);
        assert_eq!(sorted, (0..41).collect::<Vec<_>>());
    }

    /// Far-future events land in the overflow list and still pop in
    /// exact order once the horizon reaches them.
    #[test]
    fn overflow_events_pop_in_order() {
        let mut cal = Calendar::new();
        // Widely spread timestamps force overflow at the default width.
        for i in (0..200u64).rev() {
            cal.schedule(SimTime::from_millis(1 + i * 3_600_000), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
    }

    // -- property tests vs a BinaryHeap reference model ----------------

    /// The reference model: the exact pre-calendar-queue scheduler — a
    /// BinaryHeap of (time, seq) with FIFO tie-break and the same
    /// near-lane rule.
    struct HeapModel {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
        vals: std::collections::HashMap<u64, u64>,
        lane: VecDeque<(u64, u64)>,
        next_seq: u64,
        now: u64,
    }

    impl HeapModel {
        fn new() -> Self {
            HeapModel {
                heap: Default::default(),
                vals: Default::default(),
                lane: Default::default(),
                next_seq: 0,
                now: 0,
            }
        }

        fn schedule(&mut self, at: u64, v: u64) {
            let seq = self.next_seq;
            self.next_seq += 1;
            if at == self.now && self.now != 0 {
                self.lane.push_back((seq, v));
            } else {
                self.heap.push(std::cmp::Reverse((at, seq)));
                self.vals.insert(seq, v);
            }
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            if let Some(std::cmp::Reverse((t, _))) = self.heap.peek() {
                if self.lane.is_empty() || *t == self.now {
                    let std::cmp::Reverse((t, seq)) = self.heap.pop().unwrap();
                    self.now = t;
                    return Some((t, self.vals.remove(&seq).unwrap()));
                }
            }
            self.lane.pop_front().map(|(_, v)| (self.now, v))
        }
    }

    /// Deterministic xorshift so the property tests need no external
    /// RNG crate.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Random interleavings of schedule/pop with clustered, uniform,
    /// and far-future timestamps: the calendar queue must agree with
    /// the heap model on every popped (time, value) pair — this pins
    /// the global insertion-sequence tie-break across bucket sizing,
    /// overflow migration, and rebuilds.
    #[test]
    fn matches_heap_reference_on_random_interleavings() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        for case in 0..30 {
            let mut cal = Calendar::new();
            let mut model = HeapModel::new();
            let mut val = 0u64;
            let ops = 500 + (xorshift(&mut seed) % 1500) as usize;
            for _ in 0..ops {
                let r = xorshift(&mut seed);
                if r % 100 < 60 {
                    // Schedule: mix of near-now, uniform, and far-future
                    // offsets to exercise every lane of the structure.
                    let offset_ns = match r % 7 {
                        0 => 0,                                       // at `now`
                        1..=3 => xorshift(&mut seed) % 1_000_000,     // < 1 ms
                        4 | 5 => xorshift(&mut seed) % 1_000_000_000, // < 1 s
                        _ => xorshift(&mut seed) % 3_600_000_000_000, // < 1 h
                    };
                    let now = cal.now().as_nanos();
                    let at = now + offset_ns;
                    cal.schedule(SimTime::from_nanos(at), val);
                    model.schedule(at, val);
                    val += 1;
                } else {
                    let got = cal.pop().map(|(t, v)| (t.as_nanos(), v));
                    let want = model.pop();
                    assert_eq!(got, want, "case {case}: pop diverged");
                }
            }
            // Drain both completely; the tails must agree too.
            loop {
                let got = cal.pop().map(|(t, v)| (t.as_nanos(), v));
                let want = model.pop();
                assert_eq!(got, want, "case {case}: drain diverged");
                if got.is_none() {
                    break;
                }
            }
            assert!(cal.is_empty());
        }
    }

    /// Same property, burst-shaped: long stretches of identical
    /// timestamps (worst case for bucket clustering) interleaved with
    /// jumps, so rebuilds see zero-span populations.
    #[test]
    fn matches_heap_reference_on_bursty_timestamps() {
        let mut seed = 0xfeed_face_cafe_beefu64;
        for case in 0..10 {
            let mut cal = Calendar::new();
            let mut model = HeapModel::new();
            let mut val = 0u64;
            let mut t = 1u64;
            for _ in 0..80 {
                let burst = 1 + (xorshift(&mut seed) % 50) as usize;
                for _ in 0..burst {
                    cal.schedule(SimTime::from_nanos(t), val);
                    model.schedule(t, val);
                    val += 1;
                }
                let pops = (xorshift(&mut seed) % 40) as usize;
                for _ in 0..pops {
                    let got = cal.pop().map(|(time, v)| (time.as_nanos(), v));
                    assert_eq!(got, model.pop(), "case {case}: pop diverged");
                    if got.is_none() {
                        break;
                    }
                }
                t = cal.now().as_nanos().max(t) + 1 + xorshift(&mut seed) % 10_000_000_000;
            }
            loop {
                let got = cal.pop().map(|(time, v)| (time.as_nanos(), v));
                assert_eq!(got, model.pop(), "case {case}: drain diverged");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    /// peek_time always matches the next pop, across ring, overflow,
    /// and near-lane states.
    #[test]
    fn peek_agrees_with_pop_under_churn() {
        let mut seed = 0x0dd0_ba11_5eed_2026u64;
        let mut cal = Calendar::new();
        let mut val = 0u64;
        for _ in 0..2000 {
            let r = xorshift(&mut seed);
            if r % 10 < 6 {
                let at = cal.now().as_nanos() + xorshift(&mut seed) % 100_000_000_000;
                cal.schedule(SimTime::from_nanos(at), val);
                val += 1;
            } else {
                let peeked = cal.peek_time();
                let popped = cal.pop();
                assert_eq!(peeked, popped.map(|(t, _)| t));
            }
        }
    }
}
