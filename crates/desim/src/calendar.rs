//! The future event list.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A heap entry of the calendar. The ordering key packs `(time, seq)`
/// into one `u128` — time in the high 64 bits, insertion sequence in
/// the low 64 — so the heap's sift operations perform a single integer
/// comparison instead of two chained ones. The event payload itself
/// lives in a side slab and only its slot index rides in the heap:
/// sift operations then move 32-byte entries instead of the (much
/// larger) event values, which is where an event-loop-bound simulation
/// spends most of its memory traffic. Events scheduled earlier (in
/// wall-clock order of `schedule` calls) at the same instant fire
/// first; this FIFO tie-breaking is what makes runs deterministic
/// regardless of heap internals.
struct Entry {
    /// `(time.as_nanos() << 64) | seq`.
    key: u128,
    /// Index of the event in the calendar's slab.
    slot: u32,
}

impl Entry {
    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.key.cmp(&self.key)
    }
}

/// The future event list of a simulation run.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped
/// in non-decreasing time order. Ties are broken by insertion order.
///
/// Internally the calendar is two-tier: events scheduled *at the
/// current instant* — the dominant pattern on the engine's CPU-dispatch
/// and protocol paths, where a handler schedules its continuation at
/// `now` — go to a FIFO "near lane" (`VecDeque`, O(1) push/pop) and
/// never touch the binary heap. Only events with a genuinely future
/// timestamp pay the O(log n) heap insertion.
///
/// The FIFO tie-break contract is preserved exactly: a heap entry at
/// time `t` was necessarily scheduled before the clock reached `t`,
/// hence before any lane entry (which is created at `now == t`), and
/// sequence numbers are globally monotonic — so draining the heap's
/// `t`-entries before the lane reproduces insertion order.
///
/// ```rust
/// use desim::{Calendar, SimTime};
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_millis(2), "second");
/// cal.schedule(SimTime::from_millis(1), "first");
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(1), "first")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(2), "second")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry>,
    /// Event payloads of heap entries; `Entry::slot` indexes here.
    /// Slots are recycled through `free`, so the slab's size tracks the
    /// peak number of pending events, not the total ever scheduled.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    /// Events at `time == now`, in insertion order. Invariant: every
    /// lane entry's timestamp equals `now`, and its seq is greater than
    /// any heap entry's seq at that same timestamp.
    lane: VecDeque<E>,
    next_seq: u64,
    now: SimTime,
    scheduled: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar positioned at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            lane: VecDeque::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past of the last popped event — a
    /// causality violation that would silently corrupt results.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        if at == self.now && self.now != SimTime::ZERO {
            // Same-instant continuation: O(1), bypasses the heap. Time
            // zero is excluded so that pre-run setup (scheduled before
            // the first pop, while `now` is still zero) orders through
            // the heap like any other future event.
            self.lane.push_back(event);
        } else {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slab[s as usize] = Some(event);
                    s
                }
                None => {
                    self.slab.push(Some(event));
                    (self.slab.len() - 1) as u32
                }
            };
            self.heap.push(Entry {
                key: pack(at, seq),
                slot,
            });
        }
    }

    /// Removes and returns the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Heap entries at `now` predate every lane entry (smaller seq),
        // so drain them first; the lane only fires once the heap's next
        // event lies strictly in the future.
        if let Some(top) = self.heap.peek() {
            if self.lane.is_empty() || top.time() == self.now {
                let entry = self.heap.pop()?;
                let t = entry.time();
                debug_assert!(t >= self.now);
                self.now = t;
                let event = self.slab[entry.slot as usize]
                    .take()
                    .expect("heap entry has a slab payload");
                self.free.push(entry.slot);
                return Some((t, event));
            }
        }
        self.lane.pop_front().map(|e| (self.now, e))
    }

    /// The time of the most recently popped event (the current clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.lane.is_empty() {
            // Lane entries are at `now`; nothing in the heap can be
            // earlier.
            return Some(self.now);
        }
        self.heap.peek().map(|e| e.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.lane.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.lane.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

impl<E> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("near_lane", &self.lane.len())
            .field("total_scheduled", &self.scheduled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(5), 5);
        cal.schedule(SimTime::from_millis(1), 1);
        cal.schedule(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(10), ());
        cal.pop();
        cal.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), "a");
        let (t, _) = cal.pop().unwrap();
        cal.schedule(t + crate::SimDuration::from_millis(1), "b");
        cal.schedule(t, "same-time"); // same instant as current clock: allowed
        assert_eq!(cal.pop().unwrap().1, "same-time");
        assert_eq!(cal.pop().unwrap().1, "b");
        assert!(cal.is_empty());
        assert_eq!(cal.total_scheduled(), 3);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.schedule(SimTime::from_micros(9), ());
        cal.schedule(SimTime::from_micros(4), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_micros(4)));
        assert_eq!(cal.len(), 2);
    }

    /// The lane optimization must not reorder heap entries and lane
    /// entries that share a timestamp: heap-resident events scheduled
    /// *before* the clock reached `t` fire before same-time events
    /// scheduled *at* `t`.
    #[test]
    fn lane_respects_fifo_against_heap() {
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(3);
        cal.schedule(SimTime::from_millis(1), "start");
        cal.schedule(t, "heap-1"); // scheduled while now < t
        cal.schedule(t, "heap-2");
        assert_eq!(cal.pop().unwrap().1, "start");
        assert_eq!(cal.pop().unwrap().1, "heap-1"); // clock is now t
        cal.schedule(t, "lane-1"); // same-instant: near lane
        cal.schedule(t, "lane-2");
        assert_eq!(cal.peek_time(), Some(t));
        // heap-2 (seq 2) precedes lane-1 (seq 3): insertion order holds.
        assert_eq!(cal.pop().unwrap().1, "heap-2");
        assert_eq!(cal.pop().unwrap().1, "lane-1");
        assert_eq!(cal.pop().unwrap().1, "lane-2");
        assert!(cal.pop().is_none());
    }

    /// Lane entries fire before any strictly-later heap entry.
    #[test]
    fn lane_fires_before_future_heap_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), "a");
        cal.pop();
        cal.schedule(SimTime::from_millis(9), "future");
        cal.schedule(SimTime::from_millis(1), "lane");
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(cal.pop().unwrap(), (SimTime::from_millis(1), "lane"));
        assert_eq!(cal.pop().unwrap(), (SimTime::from_millis(9), "future"));
    }

    /// A dense burst of same-instant events mixed with future ones —
    /// the CPU-server churn pattern — keeps global FIFO order.
    #[test]
    fn same_time_churn_keeps_global_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), 0u32);
        let mut popped = Vec::new();
        let mut next = 1u32;
        while let Some((t, e)) = cal.pop() {
            popped.push(e);
            if next < 40 {
                // alternate same-instant and +1ms continuations
                cal.schedule(t, next);
                next += 1;
                cal.schedule(t + crate::SimDuration::from_millis(1), next);
                next += 1;
            }
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped.len(), 41);
        assert_eq!(sorted, (0..41).collect::<Vec<_>>());
    }
}
