//! Heavier-weight random distributions: Zipf sampling and alias tables.

use crate::Rng;

/// A Zipf(α) sampler over `{1, ..., n}` using Hörmann & Derflinger's
/// rejection-inversion method (O(1) per sample, exact distribution).
///
/// Used by the synthetic trace generator to produce the "highly
/// non-uniform" reference distribution the paper reports for its
/// real-life workload (§4.6).
///
/// ```rust
/// use desim::{Rng, dist::Zipf};
/// let z = Zipf::new(1_000, 0.8);
/// let mut rng = Rng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!((1..=1_000).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    /// 1 - alpha (the `q` exponent); 0 means alpha == 1 (log case).
    q: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `{1..=n}` with skew `alpha > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha <= 0` or `alpha` is not finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty range");
        assert!(alpha > 0.0 && alpha.is_finite(), "bad alpha {alpha}");
        let q = 1.0 - alpha;
        let h_integral = |x: f64| -> f64 {
            if q.abs() < 1e-12 {
                x.ln()
            } else {
                ((q * x.ln()).exp() - 1.0) / q
            }
        };
        let h_integral_inv = |x: f64| -> f64 {
            if q.abs() < 1e-12 {
                x.exp()
            } else {
                let t = (x * q).max(-1.0);
                ((1.0 + t).ln() / q).exp()
            }
        };
        let h = |x: f64| -> f64 { (-alpha * x.ln()).exp() };
        let h_x1 = h_integral(1.5) - 1.0;
        let h_n = h_integral(n as f64 + 0.5);
        let s = 2.0 - h_integral_inv(h_integral(2.5) - h(2.0));
        Zipf {
            n,
            alpha,
            q,
            h_x1,
            h_n,
            s,
        }
    }

    fn h_integral(&self, x: f64) -> f64 {
        if self.q.abs() < 1e-12 {
            x.ln()
        } else {
            ((self.q * x.ln()).exp() - 1.0) / self.q
        }
    }

    fn h_integral_inv(&self, x: f64) -> f64 {
        if self.q.abs() < 1e-12 {
            x.exp()
        } else {
            let t = (x * self.q).max(-1.0);
            ((1.0 + t).ln() / self.q).exp()
        }
    }

    fn h(&self, x: f64) -> f64 {
        (-self.alpha * x.ln()).exp()
    }

    /// Number of categories.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws a rank in `[1, n]`; rank 1 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let v = rng.next_f64();
            let u = self.h_n + v * (self.h_x1 - self.h_n);
            let x = self.h_integral_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64;
            }
        }
    }
}

/// An alias table for O(1) sampling from a fixed discrete distribution
/// with many categories (e.g., per-page reference probabilities).
///
/// ```rust
/// use desim::{Rng, dist::Alias};
/// let a = Alias::new(&[0.5, 0.25, 0.25]);
/// let mut rng = Rng::seed_from_u64(2);
/// assert!(a.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone)]
pub struct Alias {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl Alias {
    /// Builds the table from non-negative weights (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty distribution");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0 && total.is_finite(), "bad weight sum {total}");
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
        }
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Alias { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructible; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_in_range_and_skewed() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = Rng::seed_from_u64(3);
        let mut first_decile = 0u32;
        let n = 100_000;
        for _ in 0..n {
            let x = z.sample(&mut rng);
            assert!((1..=10_000).contains(&x));
            if x <= 1_000 {
                first_decile += 1;
            }
        }
        // Under Zipf(1.0) the first 10% of ranks receive far more than 10%
        // of the mass (~75% for n=10^4).
        assert!(first_decile > n * 6 / 10, "first decile {first_decile}");
    }

    #[test]
    fn zipf_rank_one_most_frequent() {
        let z = Zipf::new(100, 0.9);
        let mut rng = Rng::seed_from_u64(4);
        let mut counts = [0u32; 101];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max_idx = (1..=100).max_by_key(|&i| counts[i]).unwrap();
        assert_eq!(
            max_idx, 1,
            "rank 1 should dominate, counts[1]={}",
            counts[1]
        );
        assert!(counts[1] > counts[10] && counts[10] > counts[100]);
    }

    #[test]
    fn zipf_matches_exact_pmf_small_n() {
        // Compare empirical frequencies against the exact normalized
        // Zipf pmf for a small n.
        let n = 10u64;
        let alpha = 1.2;
        let z = Zipf::new(n, alpha);
        let mut rng = Rng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize + 1];
        let samples = 500_000;
        for _ in 0..samples {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-alpha)).sum();
        for k in 1..=n {
            let expect = (k as f64).powf(-alpha) / norm * samples as f64;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expect).abs() < expect * 0.05 + 50.0,
                "k={k}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn zipf_n1_always_one() {
        let z = Zipf::new(1, 0.5);
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_matches_weights() {
        let a = Alias::new(&[0.1, 0.2, 0.3, 0.4]);
        let mut rng = Rng::seed_from_u64(6);
        let mut counts = [0u32; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[a.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 * 0.1 * n as f64;
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn alias_single_category() {
        let a = Alias::new(&[42.0]);
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_handles_zero_weights() {
        let a = Alias::new(&[0.0, 1.0, 0.0]);
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..1_000 {
            assert_eq!(a.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn alias_rejects_empty() {
        let _ = Alias::new(&[]);
    }
}
