//! A fast, deterministic hasher for the simulation hot path.
//!
//! Every per-event lookup in the engine (transaction state, lock
//! tables, buffer indexes) goes through a hash map. `std`'s default
//! SipHash is DoS-resistant but costs ~10x more than needed for the
//! small `Copy` keys used here (`PageId`, `TxnId`, `NodeId`). This
//! module provides an FxHash-style multiply-xor hasher — the scheme
//! used by the Rust compiler's internal tables — with zero
//! dependencies.
//!
//! Two properties matter for the simulation:
//!
//! * **Speed**: one rotate + xor + multiply per 8-byte word.
//! * **Determinism**: no per-process random seed (unlike
//!   `RandomState`), so map *iteration order* is identical across
//!   runs and platforms. The engine still never lets iteration order
//!   reach output without sorting, but a deterministic hasher removes
//!   an entire class of heisenbugs from diagnostics.
//!
//! ```rust
//! use desim::fxhash::FxHashMap;
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / phi, the same odd constant rustc's
/// FxHash uses. Multiplication by it diffuses low-entropy integer keys
/// across the high bits, which the hash map's mask then folds back in.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A 64-bit multiply-xor hasher (FxHash). Not cryptographic, not
/// DoS-resistant — strictly for trusted, internal keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail-padded byte stream. Small Copy
        // keys hit the fixed-size `write_*` fast paths below instead.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s (no random
/// state; `Default` is the only construction needed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Creates an [`FxHashMap`] pre-sized for `capacity` entries — the
/// engine sizes its per-run maps from the configuration (MPL, buffer
/// frames, partition counts) so the hot path never rehashes.
pub fn map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Creates an [`FxHashSet`] pre-sized for `capacity` entries.
pub fn set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Hashes one value with [`FxHasher`] (used by index structures that
/// manage their own buckets, e.g. the LRU cache).
#[inline]
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = hash_one(&0xDEAD_BEEFu64);
        let b = hash_one(&0xDEAD_BEEFu64);
        assert_eq!(a, b);
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn map_and_set_work() {
        let mut m = map_with_capacity::<u32, u32>(16);
        for i in 0..100u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&40), Some(&80));
        let mut s = set_with_capacity::<(u16, u64)>(4);
        assert!(s.insert((3, 9)));
        assert!(!s.insert((3, 9)));
        assert!(s.contains(&(3, 9)));
    }

    #[test]
    fn byte_stream_matches_itself_regardless_of_split() {
        // Hashing is per-write, so one 16-byte write is *not* required
        // to equal two 8-byte writes; what matters is that equal values
        // hash equal. Verify via a composite key's Hash impl.
        #[derive(Hash)]
        struct K(u64, u16, [u8; 3]);
        assert_eq!(hash_one(&K(1, 2, *b"abc")), hash_one(&K(1, 2, *b"abc")));
        assert_ne!(hash_one(&K(1, 2, *b"abc")), hash_one(&K(1, 2, *b"abd")));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Dense sequential ids (TxnId::raw) must not collide in the low
        // bits the map actually uses.
        let mut low7 = std::collections::HashSet::new();
        for i in 0..128u64 {
            low7.insert(hash_one(&i) & 127);
        }
        assert!(low7.len() > 96, "only {} distinct low-7 values", low7.len());
    }
}
