//! # desim — a deterministic discrete-event simulation engine
//!
//! `desim` provides the simulation substrate used by the `dbshare`
//! workspace to reproduce the simulation system of Rahm's ICDCS 1993
//! paper *"Evaluation of Closely Coupled Systems for High Performance
//! Database Processing"*. The paper's original model was written in the
//! DeNet simulation language; `desim` replaces DeNet with an equivalent
//! set of facilities:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer (nanosecond) simulated
//!   clock, immune to floating-point drift,
//! * [`Calendar`] — the future event list (a priority queue with FIFO
//!   tie-breaking, which makes runs fully deterministic),
//! * [`MultiServer`] — a FIFO multi-server *delay station* (disks, GEM,
//!   network) where the completion time of a request can be computed at
//!   request time,
//! * [`Resource`] — a counted resource with an explicit waiter queue
//!   (CPUs, multiprogramming-level slots) for jobs that need to *hold*
//!   a unit across other events,
//! * [`Rng`] and the distributions in [`dist`] — seeded, reproducible
//!   random streams (exponential, uniform, discrete, Zipf),
//! * [`stats`] — running statistics, time-weighted averages, histograms
//!   with percentiles, and batch means for confidence intervals,
//! * [`fxhash`] — a fast deterministic hasher ([`fxhash::FxHashMap`] /
//!   [`fxhash::FxHashSet`]) for the per-event state lookups,
//! * [`InlineVec`] — an inline small-vector for per-event element
//!   lists, so steady state never touches the global allocator,
//! * [`trace`] — structured, sim-time-stamped event records and sinks
//!   for deterministic (diffable) execution traces,
//! * [`pipe`] — bounded SPSC channels connecting the deterministic
//!   pipeline stages of the parallel (`cores > 1`) engine.
//!
//! # Example
//!
//! A tiny M/M/1 queue:
//!
//! ```rust
//! use desim::{Calendar, MultiServer, Rng, SimTime, SimDuration, stats::RunningStat};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! let mut cal = Calendar::new();
//! let mut server = MultiServer::new(1);
//! let mut rng = Rng::seed_from_u64(42);
//! let mut done_count = RunningStat::new();
//! cal.schedule(SimTime::ZERO, Ev::Arrival);
//! while let Some((now, ev)) = cal.pop() {
//!     if now > SimTime::from_secs(10) { break; }
//!     match ev {
//!         Ev::Arrival => {
//!             let svc = SimDuration::from_nanos(rng.exp(1.0e6) as u64);
//!             let done = server.offer(now, svc);
//!             cal.schedule(done, Ev::Departure);
//!             let next = now + SimDuration::from_nanos(rng.exp(2.0e6) as u64);
//!             cal.schedule(next, Ev::Arrival);
//!         }
//!         Ev::Departure => { done_count.record(1.0); }
//!     }
//! }
//! assert!(done_count.count() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod rng;
mod server;
mod time;

pub mod dist;
pub mod fxhash;
pub mod lru;
pub mod pipe;
pub mod smallvec;
pub mod stats;
pub mod trace;

pub use calendar::Calendar;
pub use rng::Rng;
pub use server::{MultiServer, Resource};
pub use smallvec::InlineVec;
pub use time::{SimDuration, SimTime};
