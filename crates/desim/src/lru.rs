//! A generic O(1) LRU cache used by the storage and buffer-manager
//! models (both the paper's disk caches and its database buffers are
//! managed LRU, §3.2/§3.3).

use crate::fxhash;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: Option<V>,
    prev: u32,
    next: u32,
}

/// A fixed-capacity least-recently-used cache with O(1) lookup, insert
/// and eviction.
///
/// Layout: an intrusive doubly-linked recency list over a slab of
/// slots, indexed by an open-addressed hash table (linear probing with
/// backward-shift deletion, [`fxhash`]-hashed). Each key is stored
/// exactly once — in its slab slot; the index holds only `u32` slot
/// numbers and borrows the key through them for comparisons. Keys are
/// cloned solely when an eviction returns the owned `(K, V)` pair.
///
/// ```rust
/// use desim::lru::LruCache;
/// let mut c = LruCache::new(2);
/// assert_eq!(c.insert(1, "a"), None);
/// assert_eq!(c.insert(2, "b"), None);
/// c.get(&1);                                  // 1 becomes most recent
/// let evicted = c.insert(3, "c");             // 2 is evicted
/// assert_eq!(evicted, Some((2, "b")));
/// assert!(c.contains(&1) && c.contains(&3));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    /// Open-addressed buckets holding slot numbers (`NIL` = empty).
    /// Power-of-two sized, load factor kept at or below 1/2.
    index: Vec<u32>,
    len: usize,
    slots: Vec<Slot<K, V>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache needs capacity >= 1");
        // Pre-size the bucket array for the full capacity (bounded, so
        // huge nominal capacities don't allocate up front; the table
        // grows on demand past the bound).
        let buckets = (capacity.min(1 << 20) * 2).next_power_of_two().max(8);
        LruCache {
            index: vec![NIL; buckets],
            len: 0,
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `key` is cached (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.find_bucket(key).is_some()
    }

    // ------------------------------------------------------------------
    // Hash index (open addressing, linear probing)
    // ------------------------------------------------------------------

    #[inline]
    fn mask(&self) -> usize {
        self.index.len() - 1
    }

    #[inline]
    fn home_bucket(&self, key: &K) -> usize {
        fxhash::hash_one(key) as usize & self.mask()
    }

    /// The bucket currently holding `key`, if cached.
    #[inline]
    fn find_bucket(&self, key: &K) -> Option<usize> {
        let mask = self.mask();
        let mut b = self.home_bucket(key);
        loop {
            let slot = self.index[b];
            if slot == NIL {
                return None;
            }
            if self.slots[slot as usize].key == *key {
                return Some(b);
            }
            b = (b + 1) & mask;
        }
    }

    /// Records `slot` (whose key is already stored in the slab) in the
    /// index, growing the table if the load factor would exceed 1/2.
    fn index_insert(&mut self, slot: u32) {
        if (self.len + 1) * 2 > self.index.len() {
            self.grow();
        }
        let mask = self.mask();
        let mut b = self.home_bucket(&self.slots[slot as usize].key);
        while self.index[b] != NIL {
            b = (b + 1) & mask;
        }
        self.index[b] = slot;
    }

    /// Empties `bucket`, restoring the probe invariant by backward
    /// shifting: any displaced entry whose home lies at or before the
    /// freed hole moves into it.
    fn index_remove_bucket(&mut self, bucket: usize) {
        let mask = self.mask();
        let mut hole = bucket;
        let mut b = (bucket + 1) & mask;
        loop {
            let slot = self.index[b];
            if slot == NIL {
                break;
            }
            let home = self.home_bucket(&self.slots[slot as usize].key);
            // Distance from home to candidate vs. from hole to candidate
            // (circular): if the hole lies within the entry's probe
            // path, the entry can — and must — move back into it.
            if (b.wrapping_sub(home) & mask) >= (b.wrapping_sub(hole) & mask) {
                self.index[hole] = slot;
                hole = b;
            }
            b = (b + 1) & mask;
        }
        self.index[hole] = NIL;
    }

    /// Doubles the bucket array and reinserts every live slot.
    fn grow(&mut self) {
        let new_len = self.index.len() * 2;
        self.index.clear();
        self.index.resize(new_len, NIL);
        let mask = new_len - 1;
        let mut cur = self.head;
        while cur != NIL {
            let mut b = fxhash::hash_one(&self.slots[cur as usize].key) as usize & mask;
            while self.index[b] != NIL {
                b = (b + 1) & mask;
            }
            self.index[b] = cur;
            cur = self.slots[cur as usize].next;
        }
    }

    // ------------------------------------------------------------------
    // Recency list
    // ------------------------------------------------------------------

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: u32) {
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = self.index[self.find_bucket(key)?];
        self.touch(idx);
        self.slots[idx as usize].value.as_ref()
    }

    /// Looks up `key` mutably, marking it most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.index[self.find_bucket(key)?];
        self.touch(idx);
        self.slots[idx as usize].value.as_mut()
    }

    /// Looks up `key` *without* touching recency (for inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = self.index[self.find_bucket(key)?];
        self.slots[idx as usize].value.as_ref()
    }

    /// Looks up `key` mutably *without* touching recency.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.index[self.find_bucket(key)?];
        self.slots[idx as usize].value.as_mut()
    }

    /// Inserts or updates `key`, marking it most recently used. If the
    /// cache was full and a *different* key had to make room, the
    /// evicted `(key, value)` pair is returned.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(b) = self.find_bucket(&key) {
            let idx = self.index[b];
            self.slots[idx as usize].value = Some(value);
            self.touch(idx);
            return None;
        }
        let evicted = if self.len == self.capacity {
            self.pop_lru_inner()
        } else {
            None
        };
        let idx = if let Some(i) = self.free.pop() {
            let slot = &mut self.slots[i as usize];
            slot.key = key;
            slot.value = Some(value);
            i
        } else {
            self.slots.push(Slot {
                key,
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        self.push_front(idx);
        self.index_insert(idx);
        self.len += 1;
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let b = self.find_bucket(key)?;
        let idx = self.index[b];
        self.index_remove_bucket(b);
        self.unlink(idx);
        self.free.push(idx);
        self.len -= 1;
        self.slots[idx as usize].value.take()
    }

    fn pop_lru_inner(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let b = self
            .find_bucket(&self.slots[idx as usize].key)
            .expect("tail slot must be indexed");
        self.index_remove_bucket(b);
        let key = self.slots[idx as usize].key.clone();
        let value = self.slots[idx as usize].value.take();
        self.unlink(idx);
        self.free.push(idx);
        self.len -= 1;
        value.map(|v| (key, v))
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        self.pop_lru_inner()
    }

    /// Iterates from most to least recently used (O(n), for tests and
    /// statistics).
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            while cur != NIL {
                let s = &self.slots[cur as usize];
                cur = s.next;
                if let Some(v) = s.value.as_ref() {
                    return Some((&s.key, v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_basics() {
        let mut c = LruCache::new(3);
        assert!(c.is_empty());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
        assert!(c.contains(&"b"));
        assert_eq!(c.capacity(), 3);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.get(&1);
        let ev = c.insert(3, 'c');
        assert_eq!(ev, Some((2, 'b')));
        assert!(c.contains(&1) && c.contains(&3) && !c.contains(&2));
    }

    #[test]
    fn update_existing_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        let ev = c.insert(1, 'x');
        assert_eq!(ev, None);
        assert_eq!(c.get(&1), Some(&'x'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_mut_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        *c.get_mut(&1).unwrap() += 5;
        c.insert(3, 30); // evicts 2, not 1
        assert_eq!(c.peek(&1), Some(&15));
        assert!(!c.contains(&2));
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.peek(&1);
        c.peek_mut(&1);
        let ev = c.insert(3, 'c');
        assert_eq!(ev, Some((1, 'a'))); // 1 stayed LRU despite peeks
    }

    #[test]
    fn remove_frees_capacity() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        assert_eq!(c.remove(&1), Some('a'));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        let ev = c.insert(3, 'c');
        assert_eq!(ev, None); // room was available
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pop_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.insert(3, 'c');
        c.get(&1);
        assert_eq!(c.pop_lru(), Some((2, 'b')));
        assert_eq!(c.pop_lru(), Some((3, 'c')));
        assert_eq!(c.pop_lru(), Some((1, 'a')));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_mru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&2);
        let order: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for i in 0..100 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&99), Some(&990));
        assert_eq!(c.peek(&98), Some(&980));
        // slab did not grow beyond capacity (+1 transient)
        assert!(c.slots.len() <= 3, "{}", c.slots.len());
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1, 'a'), None);
        assert_eq!(c.insert(2, 'b'), Some((1, 'a')));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn interleaved_remove_insert_consistency() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        c.remove(&2);
        c.insert(10, 10);
        c.insert(11, 11); // evicts 0 (LRU)
        assert!(!c.contains(&0));
        let keys: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![11, 10, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8, u8>::new(0);
    }

    /// Churn far past the initial bucket-array bound to exercise probe
    /// wraparound, backward-shift deletion, and table growth together,
    /// cross-checked against a naive model.
    #[test]
    fn index_matches_model_under_churn() {
        let mut c: LruCache<u64, u64> = LruCache::new(64);
        let mut model: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut order: std::collections::VecDeque<u64> = Default::default(); // LRU..MRU
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 257; // collide-heavy key space
            match x % 10 {
                0..=6 => {
                    let ev = c.insert(key, step);
                    if model.insert(key, step).is_some() {
                        order.retain(|&k| k != key);
                        assert_eq!(ev, None);
                    } else if model.len() > 64 {
                        let lru = order.pop_front().unwrap();
                        let gone = model.remove(&lru).unwrap();
                        assert_eq!(ev, Some((lru, gone)));
                    } else {
                        assert_eq!(ev, None);
                    }
                    order.push_back(key);
                }
                7 | 8 => {
                    let got = c.get(&key).copied();
                    assert_eq!(got, model.get(&key).copied());
                    if got.is_some() {
                        order.retain(|&k| k != key);
                        order.push_back(key);
                    }
                }
                _ => {
                    let got = c.remove(&key);
                    assert_eq!(got, model.remove(&key));
                    order.retain(|&k| k != key);
                }
            }
            assert_eq!(c.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(c.peek(k), Some(v), "key {k} lost");
        }
    }
}
