//! A generic O(1) LRU cache used by the storage and buffer-manager
//! models (both the paper's disk caches and its database buffers are
//! managed LRU, §3.2/§3.3).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: Option<V>,
    prev: u32,
    next: u32,
}

/// A fixed-capacity least-recently-used cache with O(1) lookup, insert
/// and eviction (hash map + intrusive doubly-linked list over a slab).
///
/// ```rust
/// use desim::lru::LruCache;
/// let mut c = LruCache::new(2);
/// assert_eq!(c.insert(1, "a"), None);
/// assert_eq!(c.insert(2, "b"), None);
/// c.get(&1);                                  // 1 becomes most recent
/// let evicted = c.insert(3, "c");             // 2 is evicted
/// assert_eq!(evicted, Some((2, "b")));
/// assert!(c.contains(&1) && c.contains(&3));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache needs capacity >= 1");
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `key` is cached (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: u32) {
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        self.slots[idx as usize].value.as_ref()
    }

    /// Looks up `key` mutably, marking it most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        self.slots[idx as usize].value.as_mut()
    }

    /// Looks up `key` *without* touching recency (for inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.slots[idx as usize].value.as_ref()
    }

    /// Looks up `key` mutably *without* touching recency.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.slots[idx as usize].value.as_mut()
    }

    /// Inserts or updates `key`, marking it most recently used. If the
    /// cache was full and a *different* key had to make room, the
    /// evicted `(key, value)` pair is returned.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx as usize].value = Some(value);
            self.touch(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            self.pop_lru_inner()
        } else {
            None
        };
        let idx = if let Some(i) = self.free.pop() {
            let slot = &mut self.slots[i as usize];
            slot.key = key.clone();
            slot.value = Some(value);
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slots[idx as usize].value.take()
    }

    fn pop_lru_inner(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slots[idx as usize].key.clone();
        let value = self.slots[idx as usize].value.take();
        self.map.remove(&key);
        self.unlink(idx);
        self.free.push(idx);
        value.map(|v| (key, v))
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        self.pop_lru_inner()
    }

    /// Iterates from most to least recently used (O(n), for tests and
    /// statistics).
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            while cur != NIL {
                let s = &self.slots[cur as usize];
                cur = s.next;
                if let Some(v) = s.value.as_ref() {
                    return Some((&s.key, v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_basics() {
        let mut c = LruCache::new(3);
        assert!(c.is_empty());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
        assert!(c.contains(&"b"));
        assert_eq!(c.capacity(), 3);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.get(&1);
        let ev = c.insert(3, 'c');
        assert_eq!(ev, Some((2, 'b')));
        assert!(c.contains(&1) && c.contains(&3) && !c.contains(&2));
    }

    #[test]
    fn update_existing_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        let ev = c.insert(1, 'x');
        assert_eq!(ev, None);
        assert_eq!(c.get(&1), Some(&'x'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_mut_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        *c.get_mut(&1).unwrap() += 5;
        c.insert(3, 30); // evicts 2, not 1
        assert_eq!(c.peek(&1), Some(&15));
        assert!(!c.contains(&2));
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.peek(&1);
        c.peek_mut(&1);
        let ev = c.insert(3, 'c');
        assert_eq!(ev, Some((1, 'a'))); // 1 stayed LRU despite peeks
    }

    #[test]
    fn remove_frees_capacity() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        assert_eq!(c.remove(&1), Some('a'));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        let ev = c.insert(3, 'c');
        assert_eq!(ev, None); // room was available
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pop_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.insert(3, 'c');
        c.get(&1);
        assert_eq!(c.pop_lru(), Some((2, 'b')));
        assert_eq!(c.pop_lru(), Some((3, 'c')));
        assert_eq!(c.pop_lru(), Some((1, 'a')));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_mru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&2);
        let order: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for i in 0..100 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&99), Some(&990));
        assert_eq!(c.peek(&98), Some(&980));
        // slab did not grow beyond capacity (+1 transient)
        assert!(c.slots.len() <= 3, "{}", c.slots.len());
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1, 'a'), None);
        assert_eq!(c.insert(2, 'b'), Some((1, 'a')));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn interleaved_remove_insert_consistency() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        c.remove(&2);
        c.insert(10, 10);
        c.insert(11, 11); // evicts 0 (LRU)
        assert!(!c.contains(&0));
        let keys: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![11, 10, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8, u8>::new(0);
    }
}
