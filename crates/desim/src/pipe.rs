//! Bounded single-producer/single-consumer channels for pipeline
//! stages.
//!
//! The parallel engine (`RunControl::cores` in the `sim` crate) splits
//! a run into deterministic pipeline stages — arrival pre-generation,
//! statistics folding, trace sinking — connected by these channels.
//! They are deliberately minimal: `Mutex` + `Condvar`, no unsafe code,
//! no external dependencies, FIFO by construction (which is what makes
//! a downstream stage's fold order bit-identical to the serial
//! engine's).
//!
//! Semantics:
//!
//! * [`Sender::send`] blocks while the channel is full and fails (the
//!   value is handed back) once the receiver is gone — so a producer
//!   that has run ahead of a finished consumer unblocks and can exit.
//! * [`Receiver::recv`] blocks while the channel is empty and returns
//!   `None` once every sender is gone and the buffer is drained — the
//!   natural shutdown signal for a sink stage.
//! * [`Sender::try_send`] / [`Receiver::try_recv`] never block; they
//!   serve opportunistic paths (e.g. recycling spare buffers upstream)
//!   where dropping on a full channel is acceptable.
//!
//! The channel is used single-producer/single-consumer in this
//! workspace; nothing in the implementation would break with clones,
//! so the handles simply aren't `Clone` — one owner per end keeps the
//! shutdown protocol obvious.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    tx_alive: bool,
    rx_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a bounded channel. Dropping it closes the
/// channel: the receiver drains what is buffered and then sees `None`.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel. Dropping it causes every
/// subsequent (or blocked) `send` to fail, handing the value back.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded FIFO channel holding at most `cap` values.
///
/// # Panics
///
/// Panics if `cap` is zero (a rendezvous channel is not supported).
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "pipe::channel: capacity must be at least 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            cap,
            tx_alive: true,
            rx_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full.
    ///
    /// Returns `Err(value)` if the receiver has been dropped (including
    /// while this call was blocked waiting for space).
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        loop {
            if !st.rx_alive {
                return Err(value);
            }
            if st.buf.len() < st.cap {
                st.buf.push_back(value);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).expect("pipe poisoned");
        }
    }

    /// Enqueues `value` without blocking. Returns `Err(value)` if the
    /// channel is full or the receiver has been dropped.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        if !st.rx_alive || st.buf.len() >= st.cap {
            return Err(value);
        }
        st.buf.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the channel is empty.
    ///
    /// Returns `None` once the sender has been dropped and the buffer
    /// is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if !st.tx_alive {
                return None;
            }
            st = self.shared.not_empty.wait(st).expect("pipe poisoned");
        }
    }

    /// Dequeues the next value without blocking; `None` if the channel
    /// is currently empty (whether or not the sender is still alive).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        let v = st.buf.pop_front()?;
        drop(st);
        self.shared.not_full.notify_one();
        Some(v)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        st.tx_alive = false;
        drop(st);
        // Wake a receiver blocked on an empty channel so it can see EOF.
        self.shared.not_empty.notify_all();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        st.rx_alive = false;
        drop(st);
        // Wake a sender blocked on a full channel so it can bail out.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_arrive_in_fifo_order() {
        let (tx, rx) = channel(4);
        let producer = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..1000u32 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None); // sender dropped at thread end
        producer.join().unwrap();
    }

    #[test]
    fn recv_sees_eof_after_sender_drop() {
        let (tx, rx) = channel::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn blocked_send_fails_when_receiver_drops() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(1).unwrap(); // fill the channel
        let sender = thread::spawn(move || tx.send(2)); // blocks
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(2));
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, rx) = channel::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(2)); // full
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), None); // empty
        drop(rx);
        assert_eq!(tx.try_send(3), Err(3)); // closed
    }

    #[test]
    fn bounded_capacity_backpressures_the_producer() {
        let (tx, rx) = channel::<u64>(8);
        let producer = thread::spawn(move || {
            let mut sum = 0u64;
            for i in 0..10_000u64 {
                if tx.send(i).is_err() {
                    break;
                }
                sum += i;
            }
            sum
        });
        let mut got = 0u64;
        for _ in 0..10_000 {
            match rx.recv() {
                Some(v) => got += v,
                None => break,
            }
        }
        assert_eq!(rx.recv(), None);
        assert_eq!(producer.join().unwrap(), got);
    }
}
