//! Bounded single-producer/single-consumer channels and batched lanes
//! for pipeline stages.
//!
//! The parallel engine (`RunControl::cores` in the `sim` crate) splits
//! a run into deterministic pipeline stages — arrival pre-generation,
//! statistics folding, trace sinking — connected by these channels.
//! They are deliberately minimal: `Mutex` + `Condvar`, no unsafe code,
//! no external dependencies, FIFO by construction (which is what makes
//! a downstream stage's fold order bit-identical to the serial
//! engine's).
//!
//! Two tiers are provided:
//!
//! * [`channel`] — a plain bounded channel moving one value per lock
//!   acquisition. Good for coarse hand-offs (a pre-filled buffer, a
//!   recycled allocation) where the value itself already amortizes the
//!   synchronization.
//! * [`lane`] — a *batched* channel: the producer accumulates values in
//!   a thread-local buffer and takes the lock once per `batch` values
//!   (or on an explicit [`LaneSender::flush`], e.g. at stage drain).
//!   Emptied buffers are recycled through a free list living under the
//!   same mutex, so steady-state operation acquires exactly one lock
//!   and performs zero allocations per batch. The sender counts
//!   batches, items, lock acquisitions, and stalls so callers can
//!   surface batch occupancy in run profiles.
//!
//! Robustness semantics (shared by both tiers):
//!
//! * Sends block while the channel is full and fail with a typed error
//!   (never a panic) once the receiver is gone — so a producer that has
//!   run ahead of a finished consumer unblocks and can exit.
//! * Receives block while the channel is empty and return `None` once
//!   every sender is gone and the buffer is drained — the natural
//!   shutdown signal for a sink stage.
//! * All waits run in re-checked loops, so spurious `Condvar` wakeups
//!   are harmless, and a poisoned mutex (a panic on the peer thread) is
//!   absorbed with `into_inner` instead of cascading a second panic:
//!   every queue mutation is completed before the lock is released, so
//!   the state a poisoned lock hands back is always consistent.
//! * Condvar notifications are gated on a "peer is waiting" flag kept
//!   under the mutex: the uncontended fast path (queue neither empty
//!   nor full) performs no syscalls at all.
//!
//! The channels are used single-producer/single-consumer in this
//! workspace; nothing in the implementation would break with clones,
//! so the handles simply aren't `Clone` — one owner per end keeps the
//! shutdown protocol obvious.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The receiving half of the channel was dropped; the value could not
/// be delivered and is handed back to the caller.
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Consumes the error, returning the undelivered value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed pipe")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl<T> PartialEq for SendError<T>
where
    T: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

/// A non-blocking send could not deliver the value.
pub enum TrySendError<T> {
    /// The channel is at capacity; the value is handed back.
    Full(T),
    /// The receiver is gone; the value is handed back.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// Consumes the error, returning the undelivered value.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Closed(_) => f.write_str("TrySendError::Closed(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("pipe is full"),
            TrySendError::Closed(_) => f.write_str("sending on a closed pipe"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// The receiving half of a lane was dropped mid-stream. Unsent items
/// remain in the sender's local buffer (see [`LaneSender::pending`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl fmt::Display for Closed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("lane receiver is gone")
    }
}

impl std::error::Error for Closed {}

/// Locks a pipe mutex, absorbing poison: every mutation under these
/// locks completes before release, so the guarded state is consistent
/// even if the peer thread panicked while holding the guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    tx_alive: bool,
    rx_alive: bool,
    /// Receiver is blocked in `recv` — a send must notify `not_empty`.
    rx_waiting: bool,
    /// Sender is blocked in `send` — a recv must notify `not_full`.
    tx_waiting: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a bounded channel. Dropping it closes the
/// channel: the receiver drains what is buffered and then sees `None`.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel. Dropping it causes every
/// subsequent (or blocked) `send` to fail, handing the value back.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded FIFO channel holding at most `cap` values.
///
/// # Panics
///
/// Panics if `cap` is zero (a rendezvous channel is not supported).
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "pipe::channel: capacity must be at least 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            cap,
            tx_alive: true,
            rx_alive: true,
            rx_waiting: false,
            tx_waiting: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full.
    ///
    /// Returns `Err(SendError(value))` if the receiver has been dropped
    /// (including while this call was blocked waiting for space).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.shared.state);
        loop {
            if !st.rx_alive {
                return Err(SendError(value));
            }
            if st.buf.len() < st.cap {
                st.buf.push_back(value);
                let wake = st.rx_waiting;
                st.rx_waiting = false;
                drop(st);
                if wake {
                    self.shared.not_empty.notify_one();
                }
                return Ok(());
            }
            st.tx_waiting = true;
            st = wait(&self.shared.not_full, st);
        }
    }

    /// Enqueues `value` without blocking; fails typed on a full or
    /// closed channel.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = lock(&self.shared.state);
        if !st.rx_alive {
            return Err(TrySendError::Closed(value));
        }
        if st.buf.len() >= st.cap {
            return Err(TrySendError::Full(value));
        }
        st.buf.push_back(value);
        let wake = st.rx_waiting;
        st.rx_waiting = false;
        drop(st);
        if wake {
            self.shared.not_empty.notify_one();
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the channel is empty.
    ///
    /// Returns `None` once the sender has been dropped and the buffer
    /// is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = lock(&self.shared.state);
        loop {
            if let Some(v) = st.buf.pop_front() {
                let wake = st.tx_waiting;
                st.tx_waiting = false;
                drop(st);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Some(v);
            }
            if !st.tx_alive {
                return None;
            }
            st.rx_waiting = true;
            st = wait(&self.shared.not_empty, st);
        }
    }

    /// Dequeues the next value without blocking; `None` if the channel
    /// is currently empty (whether or not the sender is still alive).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = lock(&self.shared.state);
        let v = st.buf.pop_front()?;
        let wake = st.tx_waiting;
        st.tx_waiting = false;
        drop(st);
        if wake {
            self.shared.not_full.notify_one();
        }
        Some(v)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.tx_alive = false;
        drop(st);
        // Wake a receiver blocked on an empty channel so it can see EOF.
        // Unconditional: the liveness change must never be missed.
        self.shared.not_empty.notify_all();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.rx_alive = false;
        drop(st);
        // Wake a sender blocked on a full channel so it can bail out.
        self.shared.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------
// Batched lanes
// ---------------------------------------------------------------------

/// Producer-side counters of a [`LaneSender`], cheap enough to keep
/// always-on. `items / batches` is the mean batch occupancy; `locks`
/// counts actual mutex acquisitions by the producer (compare with
/// `items`, which is what a per-value channel would have paid).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LaneStats {
    /// Batches handed to the receiver (full and partial).
    pub batches: u64,
    /// Total items delivered across all batches.
    pub items: u64,
    /// Flushes that delivered less than a full batch (explicit flushes
    /// at stage drain, typically).
    pub partial: u64,
    /// Lock acquisitions performed by the producer (one per flush
    /// attempt; the thread-local `push` fast path acquires none).
    pub locks: u64,
    /// Times a flush found the lane full and had to block.
    pub stalls: u64,
}

impl LaneStats {
    /// Mean items per delivered batch (0.0 before the first batch).
    pub fn occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }

    /// Field-wise sum, for aggregating several lanes into one profile.
    pub fn merge(&mut self, other: &LaneStats) {
        self.batches += other.batches;
        self.items += other.items;
        self.partial += other.partial;
        self.locks += other.locks;
        self.stalls += other.stalls;
    }
}

/// The atomic mirror behind a [`LaneWatch`]: one counter per
/// [`LaneStats`] field, published by the producer once per flush.
#[derive(Default)]
struct WatchCells {
    batches: AtomicU64,
    items: AtomicU64,
    partial: AtomicU64,
    locks: AtomicU64,
    stalls: AtomicU64,
}

/// A shared, read-only view of a lane's producer counters, for
/// observer threads (progress tickers, watchdog dumps) that must not
/// touch the lane itself. Obtained from [`LaneSender::watch`]; reads
/// are relaxed atomic loads, so watching a lane never blocks either
/// endpoint. Values lag the producer by at most one batch.
#[derive(Clone)]
pub struct LaneWatch {
    cells: Arc<WatchCells>,
}

impl LaneWatch {
    /// The most recently published counters.
    pub fn stats(&self) -> LaneStats {
        LaneStats {
            batches: self.cells.batches.load(Ordering::Relaxed),
            items: self.cells.items.load(Ordering::Relaxed),
            partial: self.cells.partial.load(Ordering::Relaxed),
            locks: self.cells.locks.load(Ordering::Relaxed),
            stalls: self.cells.stalls.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for LaneWatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaneWatch")
            .field("stats", &self.stats())
            .finish()
    }
}

struct LaneState<T> {
    /// Batches in flight, oldest first.
    queue: VecDeque<Vec<T>>,
    /// Emptied batch buffers parked for reuse, so steady state runs
    /// allocation-free. Recycling rides the same lock as `recv`.
    free: Vec<Vec<T>>,
    /// Max batches in flight before the producer blocks.
    depth: usize,
    tx_alive: bool,
    rx_alive: bool,
    rx_waiting: bool,
    tx_waiting: bool,
}

struct LaneShared<T> {
    state: Mutex<LaneState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The producer half of a batched lane. Values accumulate in a local
/// buffer ([`LaneSender::push`], lock-free) and cross to the receiver
/// `batch` at a time, or on an explicit [`LaneSender::flush`].
pub struct LaneSender<T> {
    shared: Arc<LaneShared<T>>,
    buf: Vec<T>,
    batch: usize,
    stats: LaneStats,
    watch: Option<Arc<WatchCells>>,
}

/// The consumer half of a batched lane: yields whole batches and
/// recycles their buffers back to the producer.
pub struct LaneReceiver<T> {
    shared: Arc<LaneShared<T>>,
}

/// Creates a batched lane delivering `batch`-sized `Vec<T>`s with at
/// most `depth` batches in flight.
///
/// # Panics
///
/// Panics if `batch` or `depth` is zero.
pub fn lane<T>(batch: usize, depth: usize) -> (LaneSender<T>, LaneReceiver<T>) {
    assert!(batch > 0, "pipe::lane: batch must be at least 1");
    assert!(depth > 0, "pipe::lane: depth must be at least 1");
    let shared = Arc::new(LaneShared {
        state: Mutex::new(LaneState {
            queue: VecDeque::with_capacity(depth),
            free: Vec::with_capacity(depth + 1),
            depth,
            tx_alive: true,
            rx_alive: true,
            rx_waiting: false,
            tx_waiting: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        LaneSender {
            shared: Arc::clone(&shared),
            buf: Vec::with_capacity(batch),
            batch,
            stats: LaneStats::default(),
            watch: None,
        },
        LaneReceiver { shared },
    )
}

impl<T> LaneSender<T> {
    /// Appends `value` to the local buffer, handing off a full batch
    /// when the buffer reaches the batch size. The common case touches
    /// no lock at all.
    ///
    /// On `Err(Closed)` the value (and any previously buffered items)
    /// stays in the local buffer; see [`LaneSender::pending`].
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), Closed> {
        self.buf.push(value);
        if self.buf.len() >= self.batch {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Hands the local buffer to the receiver, blocking while `depth`
    /// batches are already in flight. No-op on an empty buffer.
    ///
    /// Call this when a stage drains (end of input, stage rotation) so
    /// a partial batch is not stranded; [`Drop`] also flushes as a
    /// backstop.
    pub fn flush(&mut self) -> Result<(), Closed> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let n = self.buf.len();
        let mut st = lock(&self.shared.state);
        self.stats.locks += 1;
        loop {
            if !st.rx_alive {
                return Err(Closed);
            }
            if st.queue.len() < st.depth {
                let fresh = st
                    .free
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(self.batch));
                st.queue.push_back(std::mem::replace(&mut self.buf, fresh));
                let wake = st.rx_waiting;
                st.rx_waiting = false;
                drop(st);
                if wake {
                    self.shared.not_empty.notify_one();
                }
                self.stats.batches += 1;
                self.stats.items += n as u64;
                if n < self.batch {
                    self.stats.partial += 1;
                }
                self.publish_watch();
                return Ok(());
            }
            self.stats.stalls += 1;
            // Publish before blocking so an observer of a stuck lane
            // sees the stall that is happening, not the last delivery.
            self.publish_watch();
            st.tx_waiting = true;
            st = wait(&self.shared.not_full, st);
        }
    }

    /// Number of values currently sitting in the local (unsent) buffer.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Producer-side delivery counters accumulated so far.
    pub fn stats(&self) -> LaneStats {
        self.stats
    }

    /// Returns a shared observer handle for this lane's counters. The
    /// producer mirrors its [`LaneStats`] into the handle once per
    /// flush (relaxed atomic stores — no extra locking on the hot
    /// path, and none at all until the first `watch` call).
    pub fn watch(&mut self) -> LaneWatch {
        let cells = self
            .watch
            .get_or_insert_with(|| Arc::new(WatchCells::default()))
            .clone();
        LaneWatch { cells }
    }

    fn publish_watch(&self) {
        if let Some(w) = &self.watch {
            w.batches.store(self.stats.batches, Ordering::Relaxed);
            w.items.store(self.stats.items, Ordering::Relaxed);
            w.partial.store(self.stats.partial, Ordering::Relaxed);
            w.locks.store(self.stats.locks, Ordering::Relaxed);
            w.stalls.store(self.stats.stalls, Ordering::Relaxed);
        }
    }
}

impl<T> LaneReceiver<T> {
    /// Dequeues the next batch, blocking while the lane is empty, and
    /// recycles the previous (consumed) batch buffer in the same lock
    /// acquisition. Returns `None` once the sender is gone and every
    /// in-flight batch has been drained.
    pub fn recv(&self, recycle: Option<Vec<T>>) -> Option<Vec<T>> {
        let mut st = lock(&self.shared.state);
        if let Some(mut spent) = recycle {
            spent.clear();
            // Bound the free list so a receiver that falls behind and
            // then catches up doesn't pin arbitrarily many buffers.
            if st.free.len() <= st.depth {
                st.free.push(spent);
            }
        }
        loop {
            if let Some(b) = st.queue.pop_front() {
                let wake = st.tx_waiting;
                st.tx_waiting = false;
                drop(st);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Some(b);
            }
            if !st.tx_alive {
                return None;
            }
            st.rx_waiting = true;
            st = wait(&self.shared.not_empty, st);
        }
    }
}

impl<T> Drop for LaneSender<T> {
    fn drop(&mut self) {
        // Backstop flush so a forgotten partial batch still reaches the
        // receiver — skipped during a panic unwind, where blocking on a
        // full lane could deadlock the teardown.
        if !std::thread::panicking() {
            let _ = self.flush();
        }
        let mut st = lock(&self.shared.state);
        st.tx_alive = false;
        drop(st);
        self.shared.not_empty.notify_all();
    }
}

impl<T> Drop for LaneReceiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.rx_alive = false;
        drop(st);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_arrive_in_fifo_order() {
        let (tx, rx) = channel(4);
        let producer = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..1000u32 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None); // sender dropped at thread end
        producer.join().unwrap();
    }

    #[test]
    fn recv_sees_eof_after_sender_drop() {
        let (tx, rx) = channel::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn blocked_send_fails_when_receiver_drops() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(1).unwrap(); // fill the channel
        let sender = thread::spawn(move || tx.send(2)); // blocks
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, rx) = channel::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), None); // empty
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Closed(3))));
    }

    #[test]
    fn bounded_capacity_backpressures_the_producer() {
        let (tx, rx) = channel::<u64>(8);
        let producer = thread::spawn(move || {
            let mut sum = 0u64;
            for i in 0..10_000u64 {
                if tx.send(i).is_err() {
                    break;
                }
                sum += i;
            }
            sum
        });
        let mut got = 0u64;
        for _ in 0..10_000 {
            match rx.recv() {
                Some(v) => got += v,
                None => break,
            }
        }
        assert_eq!(rx.recv(), None);
        assert_eq!(producer.join().unwrap(), got);
    }

    /// A capacity-1 channel degenerates to a rendezvous-like ping-pong
    /// and must still deliver everything in order.
    #[test]
    fn capacity_one_round_trips() {
        let (tx, rx) = channel::<u32>(1);
        let producer = thread::spawn(move || {
            for i in 0..500u32 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..500u32 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None);
        producer.join().unwrap();
    }

    /// The send error is typed and hands the exact value back.
    #[test]
    fn send_error_returns_the_value() {
        let (tx, rx) = channel::<String>(1);
        drop(rx);
        let err = tx.send("lost".to_string()).unwrap_err();
        assert_eq!(err.into_inner(), "lost");
        assert_eq!(format!("{}", SendError(())), "sending on a closed pipe");
    }

    // -- lanes ---------------------------------------------------------

    #[test]
    fn lane_delivers_batches_in_order() {
        let (mut tx, rx) = lane::<u32>(64, 4);
        let producer = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.push(i).expect("receiver alive");
            }
            tx.flush().expect("receiver alive");
            tx.stats()
        });
        let mut got = Vec::new();
        let mut spent = None;
        while let Some(b) = rx.recv(spent.take()) {
            got.extend_from_slice(&b);
            spent = Some(b);
        }
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        let stats = producer.join().unwrap();
        assert_eq!(stats.items, 1000);
        assert_eq!(stats.batches, 16); // 15 full + 1 partial (40)
        assert_eq!(stats.partial, 1);
        assert!(stats.locks >= stats.batches);
        assert!((stats.occupancy() - 62.5).abs() < 1e-9);
    }

    /// Batch size 1 degenerates to per-value hand-off (every push is a
    /// full flush) and must preserve order and counts.
    #[test]
    fn lane_batch_size_one() {
        let (mut tx, rx) = lane::<u32>(1, 2);
        let producer = thread::spawn(move || {
            for i in 0..100u32 {
                tx.push(i).expect("receiver alive");
            }
            tx.stats()
        });
        let mut got = Vec::new();
        let mut spent = None;
        while let Some(b) = rx.recv(spent.take()) {
            got.extend_from_slice(&b);
            spent = Some(b);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        let stats = producer.join().unwrap();
        assert_eq!(stats.batches, 100);
        assert_eq!(stats.items, 100);
        assert_eq!(stats.partial, 0);
        assert!((stats.occupancy() - 1.0).abs() < 1e-9);
    }

    /// An explicit flush mid-stream delivers the partial batch before
    /// anything pushed afterwards: flush-on-drain cannot reorder.
    #[test]
    fn lane_flush_on_drain_preserves_order() {
        let (mut tx, rx) = lane::<u32>(8, 4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.flush().unwrap(); // partial: [1, 2]
        for i in 3..=10 {
            tx.push(i).unwrap(); // fills one full batch of 8
        }
        tx.push(11).unwrap();
        drop(tx); // Drop backstop flushes [11]
        let mut got = Vec::new();
        let mut sizes = Vec::new();
        let mut spent = None;
        while let Some(b) = rx.recv(spent.take()) {
            got.extend_from_slice(&b);
            sizes.push(b.len());
            spent = Some(b);
        }
        assert_eq!(got, (1..=11).collect::<Vec<_>>());
        assert_eq!(sizes, vec![2, 8, 1]);
    }

    /// Property: for random interleavings of push / flush boundaries,
    /// batched delivery yields exactly the unbatched sequence.
    #[test]
    fn lane_order_matches_unbatched_reference() {
        // Deterministic xorshift so the test needs no external RNG.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..50 {
            let batch = 1 + (rng() % 17) as usize;
            let depth = 1 + (rng() % 5) as usize;
            let n = (rng() % 300) as u32;
            let flush_mask = rng();
            let (mut tx, rx) = lane::<u32>(batch, depth);
            let handle = thread::spawn(move || {
                let mut got = Vec::new();
                let mut spent = None;
                while let Some(b) = rx.recv(spent.take()) {
                    got.extend_from_slice(&b);
                    spent = Some(b);
                }
                got
            });
            for i in 0..n {
                tx.push(i).expect("receiver alive");
                if flush_mask >> (i % 64) & 1 == 1 {
                    tx.flush().expect("receiver alive");
                }
            }
            drop(tx);
            let got = handle.join().unwrap();
            // The unbatched reference delivery order is simply 0..n.
            assert_eq!(
                got,
                (0..n).collect::<Vec<_>>(),
                "case {case}: batch={batch} depth={depth} n={n}"
            );
        }
    }

    /// A lane sender blocked on a full lane unblocks with `Closed` when
    /// the receiver drops, and keeps the undelivered items.
    #[test]
    fn lane_flush_fails_when_receiver_drops() {
        let (mut tx, rx) = lane::<u32>(2, 1);
        tx.push(1).unwrap();
        tx.push(2).unwrap(); // full batch fills the depth-1 lane
        let blocked = thread::spawn(move || {
            tx.push(3).unwrap();
            let r = tx.push(4); // full batch again -> blocks, then fails
            (r, tx.pending())
        });
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        let (r, pending) = blocked.join().unwrap();
        assert_eq!(r, Err(Closed));
        assert_eq!(pending, 2, "undelivered items stay in the buffer");
    }

    /// Receiver sees EOF even when the last batch was partial and only
    /// delivered by the sender's Drop backstop.
    #[test]
    fn lane_drop_flushes_partial_batch() {
        let (mut tx, rx) = lane::<u32>(64, 2);
        tx.push(42).unwrap();
        drop(tx);
        let b = rx.recv(None).expect("drop must flush");
        assert_eq!(b, vec![42]);
        assert!(rx.recv(Some(b)).is_none());
    }

    /// Buffers make round trips through the free list: steady state
    /// must not allocate a fresh Vec per batch. (Observable via pointer
    /// identity of the recycled buffer.)
    #[test]
    fn lane_recycles_buffers() {
        let (mut tx, rx) = lane::<u64>(4, 1);
        for i in 0..4u64 {
            tx.push(i).unwrap();
        }
        let a = rx.recv(None).unwrap();
        let pa = a.as_ptr();
        for i in 4..8u64 {
            tx.push(i).unwrap(); // free list empty: allocates fresh
        }
        let b = rx.recv(Some(a)).unwrap(); // parks `a` in the free list
        for i in 8..12u64 {
            tx.push(i).unwrap(); // flush swaps `a` in as the local buffer
        }
        let c = rx.recv(Some(b)).unwrap();
        assert_eq!(c, vec![8, 9, 10, 11]);
        for i in 12..16u64 {
            tx.push(i).unwrap(); // `a` (now the local buffer) is delivered
        }
        let d = rx.recv(Some(c)).unwrap();
        assert_eq!(d, vec![12, 13, 14, 15]);
        assert_eq!(d.as_ptr(), pa, "buffers must recirculate, not realloc");
    }

    /// A watch handle mirrors the producer's stats once per flush and
    /// keeps working (frozen) after the sender is gone.
    #[test]
    fn lane_watch_mirrors_flushed_stats() {
        let (mut tx, rx) = lane::<u32>(4, 2);
        let watch = tx.watch();
        assert_eq!(watch.stats(), LaneStats::default());
        for i in 0..4 {
            tx.push(i).unwrap(); // full batch: flushed + published
        }
        let after_batch = watch.stats();
        assert_eq!(after_batch.batches, 1);
        assert_eq!(after_batch.items, 4);
        assert_eq!(after_batch.partial, 0);
        tx.push(99).unwrap();
        tx.flush().unwrap(); // partial flush publishes too
        assert_eq!(watch.stats().items, 5);
        assert_eq!(watch.stats().partial, 1);
        assert_eq!(watch.stats(), tx.stats());
        let frozen = watch.stats();
        drop(tx);
        let mut got = rx.recv(None).unwrap();
        got.clear();
        assert_eq!(watch.stats(), frozen, "receiver side never mutates a watch");
    }
}
