//! A small, fast, seedable PRNG (xoshiro256++) with the distribution
//! helpers the simulator needs.
//!
//! The generator is embedded (rather than depending on the `rand`
//! crate's generators) so that simulation results are reproducible
//! byte-for-byte regardless of upstream version bumps.

/// A seedable pseudo-random number generator (xoshiro256++) with
/// convenience sampling methods.
///
/// Each model component owns its own `Rng` stream (arrivals, service
/// times, workload references, routing...), seeded from a master seed,
/// so variance-reduction by common random numbers works across
/// configurations.
///
/// ```rust
/// use desim::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion
    /// (the reference seeding procedure for xoshiro generators).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng { s }
    }

    /// Derives an independent sub-stream: stream `i` of this generator.
    ///
    /// Used to hand each component its own random stream from a single
    /// master seed.
    pub fn derive(&self, stream: u64) -> Rng {
        // Mix the state with the stream index through SplitMix.
        Rng::seed_from_u64(
            self.s[0]
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(stream.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        )
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Exponentially distributed value with the given `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "exp: bad mean {mean}");
        // Avoid ln(0); next_f64 is in [0,1).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Bernoulli trial: true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: p out of range {p}");
        self.next_f64() < p
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Samples an index according to the (unnormalized, non-negative)
    /// `weights` by linear scan of the cumulative sum.
    ///
    /// Suitable for small weight vectors (e.g., transaction-type mixes);
    /// use [`crate::dist::Alias`] for large ones.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn discrete(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "discrete: empty or zero-weight distribution"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_gives_independent_streams() {
        let master = Rng::seed_from_u64(99);
        let mut s1 = master.derive(1);
        let mut s2 = master.derive(2);
        assert_ne!(s1.next_u64(), s2.next_u64());
        // Deriving the same stream twice yields the same sequence.
        let mut s1b = master.derive(1);
        s1 = master.derive(1);
        assert_eq!(s1.next_u64(), s1b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_ish() {
        let mut r = Rng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::seed_from_u64(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_probability() {
        let mut r = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.chance(0.85)).count();
        assert!((84_000..86_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = Rng::seed_from_u64(17);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[r.discrete(&w)] += 1;
        }
        assert!((9_000..11_000).contains(&counts[0]));
        assert!((28_000..32_000).contains(&counts[1]));
        assert!((58_000..62_000).contains(&counts[2]));
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Rng::seed_from_u64(19);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => seen_lo = true,
                5 => seen_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(23);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }
}
