//! Queueing stations: FIFO multi-server delay stations and counted
//! resources with explicit waiter queues.

use crate::stats::TimeWeighted;
use crate::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A FIFO multi-server *delay station* (e.g., a disk, the GEM unit, or
/// the interconnection network).
///
/// Because service is FIFO and non-preemptive, the completion time of a
/// request is fully determined at request time: `offer` returns it
/// immediately and the caller schedules a calendar event for it. This
/// requires that requests are issued in non-decreasing time order,
/// which holds when `offer` is only called while processing the event
/// at the current simulation time.
///
/// ```rust
/// use desim::{MultiServer, SimTime, SimDuration};
/// let mut disk = MultiServer::new(1);
/// let t0 = SimTime::ZERO;
/// let d1 = disk.offer(t0, SimDuration::from_millis(15));
/// let d2 = disk.offer(t0, SimDuration::from_millis(15));
/// assert_eq!(d1, SimTime::from_millis(15));
/// assert_eq!(d2, SimTime::from_millis(30)); // queued behind the first
/// ```
#[derive(Debug)]
pub struct MultiServer {
    /// Next-free instants of the `k` servers (min-heap).
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: u32,
    busy: SimDuration,
    wait: SimDuration,
    requests: u64,
    last_request: SimTime,
}

impl MultiServer {
    /// Creates a station with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "station needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers as usize);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        MultiServer {
            free_at,
            servers,
            busy: SimDuration::ZERO,
            wait: SimDuration::ZERO,
            requests: 0,
            last_request: SimTime::ZERO,
        }
    }

    /// Submits a request of length `service` at time `now`; returns the
    /// completion instant (after any FIFO queueing delay).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes an earlier request
    /// (requests must arrive in time order for FIFO completion times to
    /// be computable at request time).
    pub fn offer(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        debug_assert!(
            now >= self.last_request,
            "offer() out of time order: {now} < {}",
            self.last_request
        );
        self.last_request = now;
        let Reverse(free) = self.free_at.pop().expect("server heap never empty");
        let start = now.max(free);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy += service;
        self.wait += start - now;
        self.requests += 1;
        done
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Total requests served (or in progress).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Mean queueing delay (time between request and service start).
    pub fn mean_wait(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.wait / self.requests
        }
    }

    /// Cumulative busy server-time accrued so far (full service is
    /// accrued at request time — see [`offer`](MultiServer::offer)).
    /// Snapshot-friendly: difference two readings to attribute busy
    /// time to a window (attributed to the *issue* window).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization over `[0, now]`: busy server-time divided by
    /// available server-time.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / (now.as_secs_f64() * self.servers as f64)
    }

    /// Resets accumulated statistics (e.g., at the end of warm-up) while
    /// leaving queue state intact. Utilization is then measured from
    /// `now` onwards.
    pub fn reset_stats(&mut self, _now: SimTime) {
        self.busy = SimDuration::ZERO;
        self.wait = SimDuration::ZERO;
        self.requests = 0;
    }

    /// Utilization measured over the window `(since, now]`, assuming
    /// `reset_stats(since)` was called at `since`.
    pub fn utilization_since(&self, since: SimTime, now: SimTime) -> f64 {
        let span = (now - since).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / (span * self.servers as f64)
    }
}

/// A counted resource (e.g., the CPUs of a node, or the
/// multiprogramming-level slots of the transaction manager) whose units
/// are explicitly acquired and released, with a FIFO queue of waiting
/// tokens of type `T`.
///
/// Unlike [`MultiServer`], holders keep their unit across an arbitrary
/// number of intervening events — required to model the paper's
/// *synchronous* GEM accesses, which keep the CPU busy until the GEM
/// operation completes.
///
/// ```rust
/// use desim::{Resource, SimTime};
/// let mut cpus: Resource<&str> = Resource::new(1);
/// let t = SimTime::ZERO;
/// assert_eq!(cpus.acquire(t, "job-a"), Some("job-a")); // granted
/// assert_eq!(cpus.acquire(t, "job-b"), None);          // queued
/// assert_eq!(cpus.release(t), Some(("job-b", t))); // unit passes to b
/// assert_eq!(cpus.release(t), None);          // unit becomes free
/// ```
#[derive(Debug)]
pub struct Resource<T> {
    total: u32,
    in_use: u32,
    queue: VecDeque<(T, SimTime)>,
    busy_integral: TimeWeighted,
    queue_integral: TimeWeighted,
    grants: u64,
    total_wait: SimDuration,
}

impl<T> Resource<T> {
    /// Creates a resource with `total` units, all free.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "resource needs at least one unit");
        Resource {
            total,
            in_use: 0,
            queue: VecDeque::new(),
            busy_integral: TimeWeighted::new(),
            queue_integral: TimeWeighted::new(),
            grants: 0,
            total_wait: SimDuration::ZERO,
        }
    }

    /// Attempts to acquire one unit for `token` at time `now`.
    ///
    /// Returns `Some(token)` if granted immediately (the caller
    /// proceeds with the token) or `None` if the token was enqueued; it
    /// will be handed out by a later [`release`](Resource::release).
    #[must_use = "a granted token must be acted on"]
    pub fn acquire(&mut self, now: SimTime, token: T) -> Option<T> {
        if self.in_use < self.total && self.queue.is_empty() {
            self.busy_integral.update(now, f64::from(self.in_use));
            self.in_use += 1;
            self.busy_integral.set_current(f64::from(self.in_use));
            self.grants += 1;
            Some(token)
        } else {
            self.queue_integral.update(now, self.queue.len() as f64);
            self.queue.push_back((token, now));
            self.queue_integral.set_current(self.queue.len() as f64);
            None
        }
    }

    /// Releases one unit at time `now`.
    ///
    /// If a token is waiting, the unit passes directly to it and
    /// `Some((token, enqueue_time))` is returned — the caller must
    /// schedule that token's work starting at `now`. Otherwise the unit
    /// becomes free and `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if no unit is currently held.
    pub fn release(&mut self, now: SimTime) -> Option<(T, SimTime)> {
        assert!(self.in_use > 0, "release without acquire");
        if let Some((token, since)) = self.queue.pop_front() {
            self.queue_integral
                .update(now, self.queue.len() as f64 + 1.0);
            self.queue_integral.set_current(self.queue.len() as f64);
            self.grants += 1;
            self.total_wait += now - since;
            Some((token, since))
        } else {
            self.busy_integral.update(now, f64::from(self.in_use));
            self.in_use -= 1;
            self.busy_integral.set_current(f64::from(self.in_use));
            None
        }
    }

    /// Units currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Total units.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Tokens currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of grants so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Mean wait of tokens that queued before being granted.
    pub fn mean_queue_wait(&self) -> SimDuration {
        if self.grants == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait / self.grants
        }
    }

    /// The busy-units integral (unit-seconds) up to `now`, without
    /// mutating the accumulator. Difference two readings for the busy
    /// time inside an arbitrary window.
    pub fn busy_integral_at(&self, now: SimTime) -> f64 {
        self.busy_integral.integral_at(now)
    }

    /// Time-averaged number of busy units over `[stats start, now]`,
    /// divided by `total` — i.e., utilization.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.busy_integral.update(now, f64::from(self.in_use));
        self.busy_integral.mean(now) / f64::from(self.total)
    }

    /// Time-averaged queue length.
    pub fn mean_queue_len(&mut self, now: SimTime) -> f64 {
        self.queue_integral.update(now, self.queue.len() as f64);
        self.queue_integral.mean(now)
    }

    /// Restarts statistics windows at `now` (end of warm-up).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.busy_integral.reset(now, f64::from(self.in_use));
        self.queue_integral.reset(now, self.queue.len() as f64);
        self.grants = 0;
        self.total_wait = SimDuration::ZERO;
    }

    /// Removes every queued token into `out` (failure handling: the
    /// waiters are redirected elsewhere). Held units are unaffected.
    /// The caller owns `out` so repeated drains reuse one buffer; it is
    /// appended to, not cleared.
    pub fn drain_queue_into(&mut self, now: SimTime, out: &mut Vec<T>) {
        self.queue_integral.update(now, self.queue.len() as f64);
        self.queue_integral.set_current(0.0);
        out.extend(self.queue.drain(..).map(|(t, _)| t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiserver_single_queues_fifo() {
        let mut s = MultiServer::new(1);
        let d1 = s.offer(SimTime::ZERO, SimDuration::from_millis(10));
        let d2 = s.offer(SimTime::from_millis(2), SimDuration::from_millis(10));
        let d3 = s.offer(SimTime::from_millis(25), SimDuration::from_millis(10));
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(20)); // waited 8ms
        assert_eq!(d3, SimTime::from_millis(35)); // idle gap 20..25
        assert_eq!(s.requests(), 3);
        assert_eq!(s.mean_wait(), SimDuration::from_millis(8) / 3);
    }

    #[test]
    fn multiserver_parallel_servers() {
        let mut s = MultiServer::new(2);
        let d1 = s.offer(SimTime::ZERO, SimDuration::from_millis(10));
        let d2 = s.offer(SimTime::ZERO, SimDuration::from_millis(10));
        let d3 = s.offer(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(10));
        assert_eq!(d3, SimTime::from_millis(20));
    }

    #[test]
    fn multiserver_utilization() {
        let mut s = MultiServer::new(2);
        s.offer(SimTime::ZERO, SimDuration::from_millis(10));
        // one server busy 10ms of a 2x10ms window
        assert!((s.utilization(SimTime::from_millis(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiserver_utilization_since_reset() {
        let mut s = MultiServer::new(1);
        s.offer(SimTime::ZERO, SimDuration::from_millis(10));
        s.reset_stats(SimTime::from_millis(10));
        s.offer(SimTime::from_millis(10), SimDuration::from_millis(5));
        let u = s.utilization_since(SimTime::from_millis(10), SimTime::from_millis(20));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn resource_grant_and_queue() {
        let mut r: Resource<u32> = Resource::new(2);
        assert_eq!(r.acquire(SimTime::ZERO, 1), Some(1));
        assert_eq!(r.acquire(SimTime::ZERO, 2), Some(2));
        assert_eq!(r.acquire(SimTime::ZERO, 3), None);
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.queue_len(), 1);
        let (tok, since) = r.release(SimTime::from_millis(5)).unwrap();
        assert_eq!(tok, 3);
        assert_eq!(since, SimTime::ZERO);
        assert_eq!(r.in_use(), 2); // unit transferred, not freed
        assert!(r.release(SimTime::from_millis(6)).is_none());
        assert_eq!(r.in_use(), 1);
    }

    #[test]
    fn resource_fifo_order() {
        let mut r: Resource<u32> = Resource::new(1);
        assert_eq!(r.acquire(SimTime::ZERO, 0), Some(0));
        for i in 1..=5 {
            assert_eq!(r.acquire(SimTime::ZERO, i), None);
        }
        for i in 1..=5 {
            let (tok, _) = r.release(SimTime::from_millis(i as u64)).unwrap();
            assert_eq!(tok, i);
        }
    }

    #[test]
    fn resource_utilization_tracks_busy_time() {
        let mut r: Resource<()> = Resource::new(1);
        assert_eq!(r.acquire(SimTime::ZERO, ()), Some(()));
        r.release(SimTime::from_millis(5));
        // busy 5ms of 10ms
        let u = r.utilization(SimTime::from_millis(10));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
    }

    #[test]
    fn resource_mean_queue_wait() {
        let mut r: Resource<u8> = Resource::new(1);
        assert_eq!(r.acquire(SimTime::ZERO, 0), Some(0));
        assert_eq!(r.acquire(SimTime::ZERO, 1), None);
        r.release(SimTime::from_millis(8));
        // one queued grant waited 8ms over 2 grants total
        assert_eq!(r.mean_queue_wait(), SimDuration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn resource_release_underflow_panics() {
        let mut r: Resource<()> = Resource::new(1);
        r.release(SimTime::ZERO);
    }

    #[test]
    fn resource_drain_queue_into_reuses_buffer() {
        let mut r: Resource<u32> = Resource::new(1);
        assert_eq!(r.acquire(SimTime::ZERO, 0), Some(0));
        for i in 1..=3 {
            assert_eq!(r.acquire(SimTime::ZERO, i), None);
        }
        let mut out = Vec::new();
        r.drain_queue_into(SimTime::from_millis(1), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(r.queue_len(), 0);
        assert_eq!(r.in_use(), 1); // held unit untouched
                                   // A second drain appends into the same (cleared) buffer.
        out.clear();
        assert_eq!(r.acquire(SimTime::from_millis(2), 9), None);
        r.drain_queue_into(SimTime::from_millis(3), &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn resource_reset_stats_window() {
        let mut r: Resource<()> = Resource::new(1);
        assert_eq!(r.acquire(SimTime::ZERO, ()), Some(()));
        r.reset_stats(SimTime::from_millis(100));
        // still busy from reset point
        let u = r.utilization(SimTime::from_millis(150));
        assert!((u - 1.0).abs() < 1e-9, "{u}");
    }
}
