//! A dependency-free inline small-vector.
//!
//! [`InlineVec<T, N>`] stores up to `N` elements inline (no heap
//! allocation) and spills to a regular `Vec<T>` beyond that. The engine
//! uses it for per-transaction lock and write lists, which are almost
//! always tiny (a debit-credit transaction touches three pages), so the
//! steady-state event loop never touches the global allocator for them.
//!
//! Two properties matter for the pooling design built on top:
//!
//! * [`clear`](InlineVec::clear) keeps the spill buffer's capacity and
//!   returns the vector to inline mode, so a recycled vector that
//!   spilled once never re-allocates for the same load, and
//! * the element type must be `Copy`, which is what lets the inline
//!   storage be a plain array with no `unsafe` (this crate forbids it).
//!
//! The container dereferences to `[T]`, so iteration, indexing,
//! `contains`, `last` and friends come from the slice API.

use std::ops::{Deref, DerefMut};

/// A vector with inline storage for the first `N` elements.
///
/// ```rust
/// use desim::smallvec::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// for i in 0..6 {
///     v.push(i);
/// }
/// assert_eq!(v.len(), 6);
/// assert!(v.spilled());
/// assert_eq!(v[4], 4);
/// v.clear();
/// assert!(!v.spilled());
/// assert!(v.is_empty());
/// ```
pub struct InlineVec<T: Copy, const N: usize> {
    /// Inline storage; `None` until the first push. After a spill the
    /// array contents are stale and `spill` holds every element.
    inline: Option<[T; N]>,
    len: usize,
    spill: Vec<T>,
    spilled: bool,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector. Allocation-free.
    pub const fn new() -> Self {
        InlineVec {
            inline: None,
            len: 0,
            spill: Vec::new(),
            spilled: false,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the elements currently live in the heap spill buffer.
    #[inline]
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Appends an element, spilling to the heap past `N` elements.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.spill.push(value);
        } else if self.len < N {
            match &mut self.inline {
                Some(arr) => arr[self.len] = value,
                None => self.inline = Some([value; N]),
            }
            self.len += 1;
            return;
        } else {
            // Spill: move the inline prefix over, then append. A vector
            // that spilled before keeps its capacity across `clear`, so
            // this allocates at most once per recycled buffer.
            self.spill.clear();
            if let Some(arr) = &self.inline {
                self.spill.extend_from_slice(&arr[..self.len]);
            }
            self.spill.push(value);
            self.spilled = true;
        }
        self.len += 1;
    }

    /// Removes and returns the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.spilled {
            self.spill.pop()
        } else {
            Some(self.inline.as_ref().expect("len > 0 implies storage")[self.len])
        }
    }

    /// Empties the vector, returning to inline mode. The spill buffer's
    /// capacity is kept so a recycled vector does not re-allocate.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
        self.spilled = false;
    }

    /// Keeps only the elements for which `f` returns true, preserving
    /// order.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        if self.spilled {
            self.spill.retain(|x| f(x));
            self.len = self.spill.len();
        } else if let Some(arr) = &mut self.inline {
            let mut kept = 0;
            for i in 0..self.len {
                if f(&arr[i]) {
                    arr[kept] = arr[i];
                    kept += 1;
                }
            }
            self.len = kept;
        }
    }

    /// Appends every element of `other`.
    pub fn extend_from_slice(&mut self, other: &[T]) {
        for &x in other {
            self.push(x);
        }
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.spill
        } else {
            match &self.inline {
                Some(arr) => &arr[..self.len],
                None => &[],
            }
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.spill
        } else {
            match &mut self.inline {
                Some(arr) => &mut arr[..self.len],
                None => &mut [],
            }
        }
    }
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = InlineVec::new();
        out.extend_from_slice(self.as_slice());
        out
    }
}

impl<T: Copy + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = InlineVec::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
            assert!(!v.spilled());
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_past_capacity_and_keeps_order() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_works_in_both_modes() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        assert_eq!(v.pop(), None);
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
        // a fully drained spilled vector accepts pushes again
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn clear_returns_to_inline_and_keeps_spill_capacity() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        let cap = v.spill.capacity();
        assert!(cap >= 8);
        v.clear();
        assert!(!v.spilled());
        assert!(v.is_empty());
        assert_eq!(v.spill.capacity(), cap);
        v.push(7);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[7]);
    }

    #[test]
    fn retain_inline_and_spilled() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        v.extend_from_slice(&[1, 2, 3, 4]);
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.as_slice(), &[2, 4]);

        let mut s: InlineVec<u64, 2> = InlineVec::new();
        s.extend_from_slice(&[1, 2, 3, 4, 5]);
        s.retain(|&x| x != 3);
        assert_eq!(s.as_slice(), &[1, 2, 4, 5]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn slice_api_via_deref() {
        let v: InlineVec<u64, 4> = [5, 6, 7].iter().copied().collect();
        assert!(v.contains(&6));
        assert_eq!(v.last(), Some(&7));
        assert_eq!(v[0], 5);
        assert_eq!(v.iter().sum::<u64>(), 18);
        let mut total = 0;
        for &x in &v {
            total += x;
        }
        assert_eq!(total, 18);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v: InlineVec<u64, 2> = [1, 2, 3].iter().copied().collect();
        for x in v.iter_mut() {
            *x *= 10;
        }
        assert_eq!(v.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn clone_eq_debug() {
        let v: InlineVec<u64, 2> = [1, 2, 3].iter().copied().collect();
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(format!("{v:?}"), "[1, 2, 3]");
        let empty: InlineVec<u64, 2> = InlineVec::default();
        assert_eq!(format!("{empty:?}"), "[]");
    }
}
