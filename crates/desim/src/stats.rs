//! Statistics collection: running moments, time-weighted averages,
//! histograms with percentiles, and batch means.

use crate::{SimDuration, SimTime};

/// Running scalar statistics (Welford's algorithm): count, mean,
/// variance, min, max.
///
/// ```rust
/// use desim::stats::RunningStat;
/// let mut s = RunningStat::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration observation in milliseconds.
    pub fn record_dur_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all observations.
    pub fn reset(&mut self) {
        *self = RunningStat::new();
    }
}

/// A time-weighted average of a piecewise-constant signal (queue
/// lengths, busy-unit counts, buffer occupancy).
///
/// ```rust
/// use desim::{SimTime, stats::TimeWeighted};
/// let mut tw = TimeWeighted::new();
/// tw.set_current(2.0);                       // value 2 from t=0
/// tw.update(SimTime::from_secs(10), 0.0);    // ... until t=10, then 0
/// assert_eq!(tw.mean(SimTime::from_secs(20)), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    integral: f64,
    current: f64,
    last_update: SimTime,
    window_start: SimTime,
}

impl TimeWeighted {
    /// Creates an accumulator starting at value 0 at time 0.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Accumulates the current value up to `now`, then switches to `value`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        if now > self.last_update {
            self.integral += self.current * (now - self.last_update).as_secs_f64();
            self.last_update = now;
        }
        self.current = value;
    }

    /// Overrides the current value without accumulating (used right
    /// after an `update` at the same instant).
    pub fn set_current(&mut self, value: f64) {
        self.current = value;
    }

    /// The accumulated integral (value × seconds) up to `now`, without
    /// mutating the accumulator. Snapshot-friendly: two calls at
    /// different instants can be differenced to get the integral over
    /// an arbitrary window.
    pub fn integral_at(&self, now: SimTime) -> f64 {
        let pending = if now > self.last_update {
            self.current * (now - self.last_update).as_secs_f64()
        } else {
            0.0
        };
        self.integral + pending
    }

    /// The time-weighted mean over `[window start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let pending = if now > self.last_update {
            self.current * (now - self.last_update).as_secs_f64()
        } else {
            0.0
        };
        let span = (now - self.window_start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.integral + pending) / span
        }
    }

    /// Restarts the measurement window at `now`, carrying `value` as the
    /// current signal level.
    pub fn reset(&mut self, now: SimTime, value: f64) {
        self.integral = 0.0;
        self.current = value;
        self.last_update = now;
        self.window_start = now;
    }
}

/// A log-linear histogram of durations (HDR-style), giving cheap
/// percentile estimates with bounded relative error (~1/16).
///
/// ```rust
/// use desim::{SimDuration, stats::DurationHistogram};
/// let mut h = DurationHistogram::new();
/// for ms in 1..=100 { h.record(SimDuration::from_millis(ms)); }
/// let p50 = h.percentile(50.0).as_millis_f64();
/// assert!((45.0..=56.0).contains(&p50), "{p50}");
/// ```
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    /// buckets[b][s]: counts for magnitude b, sub-bucket s (16 per magnitude).
    buckets: Vec<[u64; 16]>,
    count: u64,
    sum: SimDuration,
    max: SimDuration,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    const SUB: u64 = 16;

    /// Creates an empty histogram covering 1 ns .. ~584 years.
    pub fn new() -> Self {
        DurationHistogram {
            buckets: vec![[0; 16]; 64],
            count: 0,
            sum: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }

    fn index(d: SimDuration) -> (usize, usize) {
        let v = d.as_nanos().max(1);
        let mag = 63 - v.leading_zeros() as usize; // floor(log2 v)
        if mag < 4 {
            (0, v as usize % 16)
        } else {
            let sub = ((v >> (mag - 4)) - Self::SUB) as usize;
            (mag - 3, sub)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let (b, s) = Self::index(d);
        self.buckets[b][s] += 1;
        self.count += 1;
        self.sum += d;
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Largest recorded duration.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Approximate `p`-th percentile (0 < p ≤ 100), upper bucket bound.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, subs) in self.buckets.iter().enumerate() {
            for (s, &c) in subs.iter().enumerate() {
                seen += c;
                if seen >= target {
                    let nanos = if b == 0 {
                        s as u64
                    } else {
                        let mag = b + 3;
                        (Self::SUB + s as u64) << (mag - 4)
                    };
                    // upper edge of the bucket
                    let width = if b == 0 { 1 } else { 1u64 << (b + 3 - 4) };
                    return SimDuration::from_nanos(nanos + width - 1);
                }
            }
        }
        self.max
    }

    /// Clears the histogram.
    pub fn reset(&mut self) {
        *self = DurationHistogram::new();
    }
}

/// Batch-means confidence intervals for a steady-state mean.
///
/// Observations are grouped into fixed-size batches; the half-width of
/// the 95% confidence interval is computed from the batch means
/// (Student-t with a normal approximation for many batches).
///
/// Memory is bounded: once [`BatchMeans::MAX_BATCHES`] batches have
/// completed, adjacent pairs of means are collapsed (exact, since the
/// batches are equal-sized) and the batch size doubles, so an
/// arbitrarily long run holds at most `MAX_BATCHES` stored means.
///
/// ```rust
/// use desim::stats::BatchMeans;
/// let mut bm = BatchMeans::new(100);
/// for i in 0..1_000 { bm.record((i % 10) as f64); }
/// assert_eq!(bm.batches(), 10);
/// assert!((bm.grand_mean() - 4.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    in_batch: u64,
    batch_sum: f64,
    means: Vec<f64>,
}

impl BatchMeans {
    /// Stored-means ceiling; even, so pair-collapsing is always exact.
    pub const MAX_BATCHES: usize = 4096;

    /// Creates an accumulator with the given observations per batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            in_batch: 0,
            batch_sum: 0.0,
            means: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.batch_sum += x;
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            self.means.push(self.batch_sum / self.batch_size as f64);
            self.batch_sum = 0.0;
            self.in_batch = 0;
            if self.means.len() == Self::MAX_BATCHES {
                self.collapse();
            }
        }
    }

    /// Halves the stored means by averaging adjacent pairs and doubles
    /// the batch size. Equal-sized batches make the pairwise average
    /// the exact mean of the combined batch. The in-flight partial
    /// batch simply keeps filling toward the new, larger size.
    fn collapse(&mut self) {
        let half = self.means.len() / 2;
        for i in 0..half {
            self.means[i] = (self.means[2 * i] + self.means[2 * i + 1]) / 2.0;
        }
        self.means.truncate(half);
        self.batch_size *= 2;
    }

    /// Completed batches.
    pub fn batches(&self) -> usize {
        self.means.len()
    }

    /// Observations per batch (doubles as the run grows past
    /// [`Self::MAX_BATCHES`] stored batches).
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Mean of completed batch means.
    pub fn grand_mean(&self) -> f64 {
        if self.means.is_empty() {
            0.0
        } else {
            self.means.iter().sum::<f64>() / self.means.len() as f64
        }
    }

    /// Half-width of the ~95% confidence interval on the mean (normal
    /// approximation; returns `None` with fewer than 2 batches).
    pub fn ci95_half_width(&self) -> Option<f64> {
        let k = self.means.len();
        if k < 2 {
            return None;
        }
        let mean = self.grand_mean();
        let var = self
            .means
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        Some(1.96 * (var / k as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stat_moments() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stat_empty_is_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stat_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_piecewise() {
        let mut tw = TimeWeighted::new();
        tw.update(SimTime::ZERO, 4.0); // 0 until t=0 (no-op), then 4
        tw.update(SimTime::from_secs(5), 2.0); // 4 for 5s, then 2
                                               // at t=10: (4*5 + 2*5)/10 = 3
        assert!((tw.mean(SimTime::from_secs(10)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_reset_window() {
        let mut tw = TimeWeighted::new();
        tw.update(SimTime::ZERO, 10.0);
        tw.reset(SimTime::from_secs(100), 1.0);
        assert!((tw.mean(SimTime::from_secs(110)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let mut h = DurationHistogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let est = h.percentile(p).as_micros_f64();
            let exact = 10_000.0 * p / 100.0;
            assert!(
                (est - exact).abs() <= exact * 0.08 + 1.0,
                "p{p}: est {est} exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.mean().as_micros_f64() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty_and_tiny() {
        let mut h = DurationHistogram::new();
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        h.record(SimDuration::from_nanos(1));
        assert_eq!(h.count(), 1);
        assert!(h.percentile(100.0).as_nanos() >= 1);
    }

    #[test]
    fn histogram_max_tracked() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_millis(3));
        h.record(SimDuration::from_millis(77));
        assert_eq!(h.max(), SimDuration::from_millis(77));
    }

    #[test]
    fn batch_means_ci_shrinks() {
        let mut bm = BatchMeans::new(50);
        let mut rng = crate::Rng::seed_from_u64(1);
        for _ in 0..500 {
            bm.record(rng.exp(10.0));
        }
        let wide = bm.ci95_half_width().unwrap();
        for _ in 0..49_500 {
            bm.record(rng.exp(10.0));
        }
        let narrow = bm.ci95_half_width().unwrap();
        assert!(narrow < wide, "{narrow} !< {wide}");
        assert!((bm.grand_mean() - 10.0).abs() < 0.5);
    }

    #[test]
    fn batch_means_memory_stays_bounded() {
        // Enough observations for 3x the cap at the initial batch size.
        let mut bm = BatchMeans::new(4);
        let total = BatchMeans::MAX_BATCHES as u64 * 4 * 3;
        for i in 0..total {
            bm.record((i % 8) as f64);
        }
        assert!(bm.batches() < BatchMeans::MAX_BATCHES, "{}", bm.batches());
        assert!(bm.batch_size() > 4, "batch size never doubled");
        // The pairwise collapse is exact for equal-sized batches, so
        // the grand mean over a periodic signal stays exact.
        assert!((bm.grand_mean() - 3.5).abs() < 1e-9, "{}", bm.grand_mean());
        assert!(bm.ci95_half_width().is_some());
    }

    #[test]
    fn batch_means_collapse_preserves_grand_mean() {
        // Same data fed to a capped accumulator and an uncapped
        // reference built from first principles.
        let mut bm = BatchMeans::new(1);
        let mut rng = crate::Rng::seed_from_u64(7);
        let mut sum = 0.0;
        let total = BatchMeans::MAX_BATCHES as u64 * 2;
        for _ in 0..total {
            let x = rng.exp(3.0);
            sum += x;
            bm.record(x);
        }
        assert!((bm.grand_mean() - sum / total as f64).abs() < 1e-9);
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..15 {
            bm.record(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert!(bm.ci95_half_width().is_none());
    }
}
