//! Simulated time: integer nanoseconds since simulation start.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds from simulation
/// start.
///
/// `SimTime` is an integer type so that event ordering is exact and
/// runs are bit-for-bit reproducible. One nanosecond resolution leaves
/// ample head room (`u64` nanoseconds cover ~584 simulated years) while
/// representing the paper's microsecond-scale GEM accesses exactly.
///
/// ```rust
/// use desim::{SimTime, SimDuration};
/// let t = SimTime::from_micros(50);
/// assert_eq!(t + SimDuration::from_micros(50), SimTime::from_micros(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// ```rust
/// use desim::SimDuration;
/// assert_eq!(SimDuration::from_millis(15).as_secs_f64(), 0.015);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }
    /// Creates a time `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Creates a time `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Creates a time `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds since simulation start, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "since() called with a later time");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }
    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Creates a duration from fractional seconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }
    /// Creates a duration from fractional milliseconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }
    /// Creates a duration from fractional microseconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Length in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(50).as_micros_f64(), 50.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(d / 5, SimDuration::from_millis(1));
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(250);
        assert_eq!(b.since(a), SimDuration::from_micros(150));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000005).as_nanos(), 500);
        assert_eq!(SimDuration::from_millis_f64(16.4).as_nanos(), 16_400_000);
        assert_eq!(SimDuration::from_micros_f64(2.0).as_nanos(), 2_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(50)), "50.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(15)), "15.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(
            SimTime::from_millis(2).max(SimTime::from_millis(1)),
            SimTime::from_millis(2)
        );
    }
}
