//! Structured, sim-time-stamped event tracing.
//!
//! A simulation engine can emit a stream of [`TraceEvent`] records into
//! a [`TraceSink`]. Records are small `Copy` structs stamped with
//! *simulated* time only, so a trace is bit-reproducible across host
//! machines, repeated runs, and worker counts — which makes trace files
//! diffable: two runs that should be identical can be compared record
//! by record, and the first differing event localizes a divergence.
//!
//! The contract with the engine is *zero cost when off*: the engine
//! holds an `Option<sink>` and guards every emission behind a single
//! `is_some()` branch, so a run without a sink performs no allocation
//! and no formatting on behalf of tracing.
//!
//! ```rust
//! use desim::trace::{TraceEvent, TraceEventKind, TraceSink, VecSink, NO_PAGE};
//! use desim::SimTime;
//! let mut sink = VecSink::new();
//! sink.record(&TraceEvent {
//!     at: SimTime::from_micros(10),
//!     kind: TraceEventKind::TxnAdmit,
//!     node: 0,
//!     txn: 1,
//!     page: NO_PAGE,
//!     arg: 0,
//! });
//! assert_eq!(sink.take_events().len(), 1);
//! ```

use crate::SimTime;

/// Sentinel for "no transaction" in [`TraceEvent::txn`].
pub const NO_TXN: u64 = u64::MAX;

/// Sentinel for "no page" in [`TraceEvent::page`].
pub const NO_PAGE: u64 = u64::MAX;

/// Packs a (partition, page-number) pair into the single `u64` used by
/// [`TraceEvent::page`]. The partition occupies the top 16 bits; page
/// numbers in the modelled databases fit comfortably in the low 48.
pub fn pack_page(partition: u16, number: u64) -> u64 {
    ((partition as u64) << 48) | (number & ((1u64 << 48) - 1))
}

/// Splits a packed page id back into (partition, page number).
/// Returns `None` for the [`NO_PAGE`] sentinel.
pub fn unpack_page(packed: u64) -> Option<(u16, u64)> {
    if packed == NO_PAGE {
        None
    } else {
        Some(((packed >> 48) as u16, packed & ((1u64 << 48) - 1)))
    }
}

/// What happened. The variants cover the transaction lifecycle, the
/// lock protocol, page movement, and messaging — the event classes a
/// closely-coupled database-sharing run is analysed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEventKind {
    /// A transaction obtained its multiprogramming slot and started
    /// executing. `arg` = input-queue wait in nanoseconds.
    TxnAdmit,
    /// A transaction committed. `arg` = response time in nanoseconds
    /// (from first arrival, restarts included).
    TxnCommit,
    /// A transaction aborted and will restart. `arg` = reason
    /// (0 deadlock, 1 timeout, 2 crash).
    TxnAbort,
    /// A lock was requested (local table, GEM lock table, or a remote
    /// authority — the node field says where the requester runs).
    LockRequest,
    /// A lock request queued; the transaction starts a lock wait.
    LockWait,
    /// A queued lock was granted, ending a wait.
    /// `arg` = lock-wait duration in nanoseconds.
    LockGrant,
    /// A transaction released its locks (commit phase 2 or abort).
    /// `arg` = number of locks released.
    LockRelease,
    /// A page read was issued to the storage subsystem.
    PageRead,
    /// A page read completed. `arg` = I/O wait in nanoseconds.
    PageReadDone,
    /// A page travelled node-to-node or through GEM. `arg` = the
    /// receiving node.
    PageTransfer,
    /// A dirty page was written back on eviction.
    PageFlush,
    /// A commit-time force/log write was issued.
    CommitIo,
    /// The commit I/O chain finished. `arg` = I/O wait in nanoseconds.
    CommitIoDone,
    /// A message left a node. `arg` = destination node.
    MsgSend,
    /// A message was received. `arg` = source node.
    MsgRecv,
    /// The no-progress watchdog fired. `arg` = live transactions.
    Watchdog,
}

/// One traced occurrence. All fields are plain integers so the record
/// is `Copy`, comparison is exact, and emission never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant of the occurrence.
    pub at: SimTime,
    /// Event class.
    pub kind: TraceEventKind,
    /// Node the event happened on (the requester's node for lock and
    /// message events).
    pub node: u16,
    /// Transaction sequence number, or [`NO_TXN`].
    pub txn: u64,
    /// Page involved, packed via [`pack_page`], or [`NO_PAGE`].
    pub page: u64,
    /// Kind-specific argument (durations in ns, peer nodes, abort
    /// reasons — see [`TraceEventKind`]).
    pub arg: u64,
}

/// Receives trace events from an engine.
///
/// Implementations must not reorder events: the engine emits in
/// simulated-time order (FIFO within an instant), and downstream
/// exporters rely on that order for byte-identical output.
pub trait TraceSink {
    /// Accepts one event. Called on the simulation hot path whenever
    /// tracing is enabled; implementations should be cheap.
    fn record(&mut self, ev: &TraceEvent);

    /// Drains the collected events, if this sink retains them. The
    /// default (for streaming sinks) returns nothing.
    fn take_events(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The standard collecting sink: retains every event in order.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }

    fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(at_us),
            kind,
            node: 3,
            txn: 42,
            page: pack_page(1, 7),
            arg: 0,
        }
    }

    #[test]
    fn vec_sink_retains_order() {
        let mut s = VecSink::new();
        s.record(&ev(1, TraceEventKind::LockRequest));
        s.record(&ev(2, TraceEventKind::LockGrant));
        assert_eq!(s.len(), 2);
        let out = s.take_events();
        assert_eq!(out[0].kind, TraceEventKind::LockRequest);
        assert_eq!(out[1].kind, TraceEventKind::LockGrant);
        assert!(s.is_empty());
    }

    #[test]
    fn page_packing_round_trips() {
        let packed = pack_page(5, 123_456_789);
        assert_eq!(unpack_page(packed), Some((5, 123_456_789)));
        assert_eq!(unpack_page(NO_PAGE), None);
    }

    #[test]
    fn events_compare_exactly() {
        assert_eq!(
            ev(9, TraceEventKind::PageRead),
            ev(9, TraceEventKind::PageRead)
        );
        assert_ne!(
            ev(9, TraceEventKind::PageRead),
            ev(10, TraceEventKind::PageRead)
        );
    }
}
