//! Randomized model tests of the simulation substrate: the LRU cache
//! against a naive reference model, the FIFO multi-server's timing
//! invariants, the resource's conservation laws, and the calendar's
//! ordering guarantee.
//!
//! Cases are generated with the crate's own deterministic RNG (seeded,
//! reproducible) so the workspace builds and tests without any registry
//! dependency.

use desim::lru::LruCache;
use desim::{Calendar, MultiServer, Resource, Rng, SimDuration, SimTime};
use std::collections::VecDeque;

const CASES: u64 = 256;

/// A deliberately naive reference LRU: O(n) everything.
struct NaiveLru {
    cap: usize,
    entries: VecDeque<(u16, u32)>, // front = most recent
}

impl NaiveLru {
    fn new(cap: usize) -> Self {
        NaiveLru {
            cap,
            entries: VecDeque::new(),
        }
    }
    fn get(&mut self, k: u16) -> Option<u32> {
        let pos = self.entries.iter().position(|&(ek, _)| ek == k)?;
        let e = self.entries.remove(pos).expect("position exists");
        self.entries.push_front(e);
        Some(e.1)
    }
    fn insert(&mut self, k: u16, v: u32) -> Option<(u16, u32)> {
        if let Some(pos) = self.entries.iter().position(|&(ek, _)| ek == k) {
            self.entries.remove(pos);
            self.entries.push_front((k, v));
            return None;
        }
        self.entries.push_front((k, v));
        if self.entries.len() > self.cap {
            self.entries.pop_back()
        } else {
            None
        }
    }
    fn remove(&mut self, k: u16) -> Option<u32> {
        let pos = self.entries.iter().position(|&(ek, _)| ek == k)?;
        self.entries.remove(pos).map(|(_, v)| v)
    }
}

#[derive(Debug, Clone)]
enum LruOp {
    Get(u16),
    Insert(u16, u32),
    Remove(u16),
    PopLru,
}

fn lru_op(rng: &mut Rng) -> LruOp {
    match rng.below(4) {
        0 => LruOp::Get(rng.below(40) as u16),
        1 => LruOp::Insert(rng.below(40) as u16, rng.next_u64() as u32),
        2 => LruOp::Remove(rng.below(40) as u16),
        _ => LruOp::PopLru,
    }
}

#[test]
fn lru_matches_reference_model() {
    let mut rng = Rng::seed_from_u64(0x11C0_FFEE);
    for _ in 0..CASES {
        let cap = rng.range_inclusive(1, 23) as usize;
        let ops = rng.range_inclusive(1, 299);
        let mut real = LruCache::new(cap);
        let mut model = NaiveLru::new(cap);
        for _ in 0..ops {
            match lru_op(&mut rng) {
                LruOp::Get(k) => {
                    assert_eq!(real.get(&k).copied(), model.get(k));
                }
                LruOp::Insert(k, v) => {
                    assert_eq!(real.insert(k, v), model.insert(k, v));
                }
                LruOp::Remove(k) => {
                    assert_eq!(real.remove(&k), model.remove(k));
                }
                LruOp::PopLru => {
                    assert_eq!(real.pop_lru(), model.entries.pop_back());
                }
            }
            assert_eq!(real.len(), model.entries.len());
            assert!(real.len() <= cap);
        }
        // recency order fully matches
        let real_order: Vec<u16> = real.iter_mru().map(|(k, _)| *k).collect();
        let model_order: Vec<u16> = model.entries.iter().map(|&(k, _)| k).collect();
        assert_eq!(real_order, model_order);
    }
}

#[test]
fn multiserver_timing_invariants() {
    let mut rng = Rng::seed_from_u64(0x22C0_FFEE);
    for _ in 0..CASES {
        let servers = rng.range_inclusive(1, 5) as u32;
        let jobs = rng.range_inclusive(1, 199);
        let mut srv = MultiServer::new(servers);
        let mut now = SimTime::ZERO;
        let mut completions: Vec<(SimTime, SimTime, SimDuration)> = Vec::new();
        let mut total_service = SimDuration::ZERO;
        for _ in 0..jobs {
            now += SimDuration::from_micros(rng.below(10_000));
            let service = SimDuration::from_micros(rng.range_inclusive(1, 4_999));
            let done = srv.offer(now, service);
            // completion is never before arrival + service
            assert!(done >= now + service);
            completions.push((now, done, service));
            total_service += service;
        }
        // work conservation: total busy time across k servers within
        // [0, last completion] is exactly the sum of service times
        let horizon = completions.iter().map(|&(_, d, _)| d).max().expect("jobs");
        assert!(
            (srv.utilization(horizon)
                - total_service.as_secs_f64() / (horizon.as_secs_f64() * servers as f64))
                .abs()
                < 1e-9
        );
        // offers must be time-ordered
        for w in completions.windows(2) {
            let (a_now, _, _) = w[0];
            let (b_now, _, _) = w[1];
            assert!(b_now >= a_now, "offers must be time-ordered");
        }
    }
}

#[test]
fn resource_conserves_units() {
    let mut rng = Rng::seed_from_u64(0x33C0_FFEE);
    for _ in 0..CASES {
        let total = rng.range_inclusive(1, 4) as u32;
        let ops = rng.range_inclusive(1, 199);
        let mut r: Resource<u32> = Resource::new(total);
        let mut now = SimTime::ZERO;
        let mut outstanding = 0u32; // grants not yet released
        let mut queued = 0u32;
        let mut next_token = 0u32;
        for _ in 0..ops {
            let acquire = rng.chance(0.5);
            now += SimDuration::from_micros(10);
            if acquire {
                if r.acquire(now, next_token).is_some() {
                    outstanding += 1;
                } else {
                    queued += 1;
                }
                next_token += 1;
            } else if outstanding > 0 {
                match r.release(now) {
                    Some(_) => {
                        // unit transferred to a queued token
                        assert!(queued > 0);
                        queued -= 1;
                    }
                    None => {
                        outstanding -= 1;
                    }
                }
            }
            assert!(outstanding <= total);
            assert_eq!(r.in_use(), outstanding);
            assert_eq!(r.queue_len(), queued as usize);
            // a queue can only exist when all units are busy
            if queued > 0 {
                assert_eq!(outstanding, total);
            }
        }
    }
}

#[test]
fn calendar_pops_in_nondecreasing_time_order() {
    let mut rng = Rng::seed_from_u64(0x44C0_FFEE);
    for _ in 0..CASES {
        let n = rng.range_inclusive(1, 299) as usize;
        let mut cal = Calendar::new();
        for i in 0..n {
            cal.schedule(SimTime::from_nanos(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = cal.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, n);
    }
}

#[test]
fn rng_streams_are_reproducible() {
    let mut seeder = Rng::seed_from_u64(0x55C0_FFEE);
    for _ in 0..CASES {
        let seed = seeder.next_u64();
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // derived streams differ from the parent
        let mut d = Rng::seed_from_u64(seed).derive(1);
        let mut a2 = Rng::seed_from_u64(seed);
        let same = (0..16).all(|_| d.next_u64() == a2.next_u64());
        assert!(!same);
    }
}

#[test]
fn inline_vec_matches_vec_model() {
    use desim::smallvec::InlineVec;
    let mut rng = Rng::seed_from_u64(0x66C0_FFEE);
    for _ in 0..CASES {
        let ops = rng.range_inclusive(1, 199);
        let mut real: InlineVec<u64, 4> = InlineVec::new();
        let mut model: Vec<u64> = Vec::new();
        for _ in 0..ops {
            match rng.below(6) {
                0 | 1 => {
                    // bias toward pushes so spills are exercised often
                    let v = rng.below(1000);
                    real.push(v);
                    model.push(v);
                }
                2 => {
                    assert_eq!(real.pop(), model.pop());
                }
                3 => {
                    let keep = rng.below(1000);
                    real.retain(|&x| x >= keep);
                    model.retain(|&x| x >= keep);
                }
                4 => {
                    if rng.chance(0.2) {
                        real.clear();
                        model.clear();
                        assert!(!real.spilled());
                    }
                }
                _ => {
                    let probe = rng.below(1000);
                    assert_eq!(real.contains(&probe), model.contains(&probe));
                }
            }
            assert_eq!(real.len(), model.len());
            assert_eq!(real.is_empty(), model.is_empty());
            assert_eq!(real.as_slice(), model.as_slice());
            // spilling is sticky until clear(): len > N forces it, but
            // pops below N do not undo it
            if model.len() > 4 {
                assert!(real.spilled());
            }
            assert_eq!(real.iter().copied().sum::<u64>(), model.iter().sum());
        }
        let cloned = real.clone();
        assert_eq!(cloned, real);
        assert_eq!(cloned.as_slice(), model.as_slice());
    }
}

/// Erlang-C: probability an arrival waits in an M/M/k queue.
fn erlang_c(k: usize, offered: f64) -> f64 {
    // offered load a = lambda/mu (in Erlangs), k servers
    let a = offered;
    let mut term = 1.0; // a^0/0!
    let mut sum = term;
    for n in 1..k {
        term *= a / n as f64;
        sum += term;
    }
    let ak = term * a / k as f64; // a^k/k!
    let rho = a / k as f64;
    let top = ak / (1.0 - rho);
    top / (sum + top)
}

#[test]
fn multiserver_matches_mmk_theory() {
    // Drive an M/M/k queue through the calendar + MultiServer exactly
    // as the simulator does and compare the mean wait against the
    // Erlang-C formula: Wq = C(k, a) / (k*mu - lambda).
    use desim::stats::RunningStat;
    for (k, lambda, mu) in [(1usize, 600.0f64, 1000.0), (4, 2500.0, 1000.0)] {
        let mut cal = Calendar::new();
        let mut srv = MultiServer::new(k as u32);
        let mut rng = Rng::seed_from_u64(99);
        let mut wait = RunningStat::new();
        #[derive(Debug)]
        enum Ev {
            Arrival,
        }
        cal.schedule(SimTime::ZERO, Ev::Arrival);
        let horizon = SimTime::from_secs(400);
        while let Some((now, ev)) = cal.pop() {
            if now > horizon {
                break;
            }
            match ev {
                Ev::Arrival => {
                    let svc = SimDuration::from_secs_f64(rng.exp(1.0 / mu));
                    let done = srv.offer(now, svc);
                    wait.record((done - now - svc).as_secs_f64());
                    let gap = SimDuration::from_secs_f64(rng.exp(1.0 / lambda));
                    cal.schedule(now + gap, Ev::Arrival);
                }
            }
        }
        let a = lambda / mu;
        let expect = erlang_c(k, a) / (k as f64 * mu - lambda);
        let measured = wait.mean();
        let rel = (measured - expect).abs() / expect;
        assert!(
            rel < 0.06,
            "M/M/{k} at rho={:.2}: measured Wq {measured:.6}s vs Erlang-C {expect:.6}s (rel {rel:.3})",
            a / k as f64
        );
    }
}
