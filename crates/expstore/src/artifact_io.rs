//! Reading `BENCH_repro.json` artifacts into store [`Record`]s.
//!
//! The harness artifact is the transport format of a *single* run; the
//! store is the accumulated history. This module converts the former
//! into the latter so every consumer — `repro --compare`, the
//! `perfgate` CI binary, the HTML report — speaks records, whichever
//! file they started from. Structural problems (not JSON, no `records`
//! array, rows missing required fields) are errors: silently returning
//! an empty history would make every downstream comparison vacuously
//! pass.

use crate::json::Json;
use crate::record::{Provenance, Record};

/// Converts a parsed artifact document into store records.
///
/// Provenance is taken from the document's `provenance` object
/// (`"unknown"` per field when absent — artifacts predate it); the
/// run id is derived from the artifact's `created_unix`. Records
/// predating the metric fingerprint read as an empty fingerprint,
/// which the gate skips rather than fails.
pub fn records_from_artifact(doc: &Json) -> Result<Vec<Record>, String> {
    let rows = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("artifact has no records array")?;
    let prov_str = |key: &str| -> String {
        doc.get("provenance")
            .and_then(|p| p.get(key))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    let provenance = Provenance {
        git_revision: prov_str("git_revision"),
        rustc_version: prov_str("rustc_version"),
        build_profile: prov_str("build_profile"),
    };
    let created_unix = doc
        .get("created_unix")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    let run = format!("artifact-{created_unix}");
    // Host CPU count is a top-level artifact field (one host per
    // artifact); 0 when the artifact predates it.
    let host_cpus = doc.get("host_cpus").and_then(Json::as_f64).unwrap_or(0.0) as u32;

    let mut records = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let str_field = |key: &str| -> Result<String, String> {
            row.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record {i}: missing string field {key:?}"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record {i}: missing numeric field {key:?}"))
        };
        records.push(Record {
            run: run.clone(),
            created_unix,
            provenance: provenance.clone(),
            figure: str_field("figure")?,
            curve: str_field("curve")?,
            nodes: num_field("nodes")? as u16,
            seed: num_field("seed")? as u64,
            // Lenient like the store's own parse: artifacts written
            // before the parallel engine carry no cores field.
            cores: row.get("cores").and_then(Json::as_f64).unwrap_or(1.0) as u32,
            host_cpus,
            config_fingerprint: str_field("config_fingerprint")?,
            metric_fingerprint: row
                .get("metric_fingerprint")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            wall_secs: num_field("wall_secs")?,
            events_processed: num_field("events_processed")? as u64,
            allocs_per_event: row
                .get("allocs_per_event")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            mean_response_ms: num_field("mean_response_ms")?,
            throughput_tps: num_field("throughput_tps")?,
            // Optional: artifacts carry Null off Linux, and older
            // artifacts have no key at all.
            peak_rss_mb: row.get("peak_rss_mb").and_then(Json::as_f64),
            // Attribution is a store-side enrichment; artifacts don't
            // carry it.
            binding: None,
            binding_utilization: None,
            next_constraint: None,
            next_utilization: None,
            utils: None,
        });
    }
    Ok(records)
}

/// Reads and converts an artifact file in one step.
pub fn read_artifact_records(path: &std::path::Path) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text)
        .map_err(|e| format!("{} is not a valid artifact: {e}", path.display()))?;
    records_from_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact_doc() -> Json {
        Json::obj(vec![
            ("schema", Json::Str("dbshare-bench/1".into())),
            ("created_unix", Json::Num(1_700_000_000.0)),
            ("host_cpus", Json::Num(16.0)),
            (
                "provenance",
                Json::obj(vec![
                    ("git_revision", Json::Str("deadbeef".into())),
                    ("rustc_version", Json::Str("rustc 1.80".into())),
                    ("build_profile", Json::Str("release".into())),
                ]),
            ),
            (
                "records",
                Json::Arr(vec![Json::obj(vec![
                    ("figure", Json::Str("fig41".into())),
                    ("curve", Json::Str("GEM".into())),
                    ("nodes", Json::Num(2.0)),
                    ("seed", Json::Num(42.0)),
                    ("cores", Json::Num(2.0)),
                    ("config_fingerprint", Json::Str("cfg".into())),
                    ("metric_fingerprint", Json::Str("met".into())),
                    ("wall_secs", Json::Num(0.5)),
                    ("events_processed", Json::Num(70000.0)),
                    ("allocs_per_event", Json::Num(0.06)),
                    ("mean_response_ms", Json::Num(71.0)),
                    ("throughput_tps", Json::Num(197.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn converts_records_with_provenance() {
        let records = records_from_artifact(&artifact_doc()).expect("converts");
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.run, "artifact-1700000000");
        assert_eq!(r.provenance.git_revision, "deadbeef");
        assert_eq!(r.figure, "fig41");
        assert_eq!(r.nodes, 2);
        assert_eq!(r.metric_fingerprint, "met");
        assert_eq!(r.cores, 2);
        assert_eq!(r.host_cpus, 16);
    }

    #[test]
    fn pre_parallel_artifacts_default_cores_and_host_cpus() {
        let mut doc = artifact_doc();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "host_cpus");
            if let Some((_, Json::Arr(rows))) = fields.iter_mut().find(|(k, _)| k == "records") {
                if let Json::Obj(row) = &mut rows[0] {
                    row.retain(|(k, _)| k != "cores");
                }
            }
        }
        let records = records_from_artifact(&doc).expect("legacy artifact converts");
        assert_eq!(records[0].cores, 1);
        assert_eq!(records[0].host_cpus, 0);
    }

    #[test]
    fn missing_records_array_is_an_error() {
        let doc = Json::obj(vec![("schema", Json::Str("dbshare-bench/1".into()))]);
        assert!(records_from_artifact(&doc).is_err());
    }

    #[test]
    fn pre_fingerprint_artifacts_read_with_empty_metric_fingerprint() {
        let mut doc = artifact_doc();
        if let Json::Obj(fields) = &mut doc {
            if let Some((_, Json::Arr(rows))) = fields.iter_mut().find(|(k, _)| k == "records") {
                if let Json::Obj(row) = &mut rows[0] {
                    row.retain(|(k, _)| k != "metric_fingerprint");
                }
            }
        }
        let records = records_from_artifact(&doc).expect("still converts");
        assert_eq!(records[0].metric_fingerprint, "");
    }
}
