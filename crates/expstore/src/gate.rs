//! The regression gate: compares a fresh run against recorded history.
//!
//! Two checks, in increasing order of tolerance:
//!
//! 1. **Metric drift (exact).** A job whose config fingerprint exists
//!    in history must reproduce the recorded metric fingerprint
//!    bit-for-bit — the simulator is deterministic, so *any* change in
//!    results for an unchanged configuration is a correctness
//!    regression, not noise. Records without a metric fingerprint
//!    (pre-store artifacts) are skipped.
//! 2. **Event-rate regression (thresholded).** Per figure, the fresh
//!    run's aggregate events/s must stay within `max_regress_pct`
//!    percent of the best recorded run of the *same config set and
//!    the same `cores` setting* ([`figure_runs`] pairs only identical
//!    job sets, split by engine thread count — a serial baseline must
//!    never gate a parallel run, or vice versa). Host wall-clock
//!    varies across machines, so the threshold is the caller's to
//!    choose: tight for same-machine trend gating, generous for
//!    cross-runner CI.
//!
//! The metric-drift check is deliberately *cores-agnostic*: the
//! pipeline engine is bit-identical to the serial engine, so a
//! parallel run must reproduce the serial history's fingerprints
//! exactly — comparing across `cores` there is the point, not a bug.

use crate::index::{figure_runs, Index};
use crate::record::Record;

/// Verdict of one gate evaluation.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Hard failures: the gate should fail the build.
    pub failures: Vec<String>,
    /// Informational lines (clean comparisons, skipped checks).
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// True when no check failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates `current` against `history` with the given events/s
/// regression threshold in percent (e.g. `50.0` fails when the fresh
/// run is less than half the best recorded rate).
pub fn check(history: &[Record], current: &[Record], max_regress_pct: f64) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let index = Index::new(history);

    // 1. Metric fingerprints must match history exactly per config.
    let mut drift_checked = 0usize;
    for rec in current {
        if rec.metric_fingerprint.is_empty() {
            continue;
        }
        let prior = index.by_config(&rec.config_fingerprint);
        let mut seen_any = false;
        for old in &prior {
            if old.metric_fingerprint.is_empty() {
                continue;
            }
            seen_any = true;
            if old.metric_fingerprint != rec.metric_fingerprint {
                outcome.failures.push(format!(
                    "metric drift: {} | {} | n={} (config {}): history run {} recorded \
                     metrics {}, this run produced {} — same configuration, different results",
                    rec.figure,
                    rec.curve,
                    rec.nodes,
                    rec.config_fingerprint,
                    old.run,
                    old.metric_fingerprint,
                    rec.metric_fingerprint,
                ));
                break;
            }
        }
        if seen_any {
            drift_checked += 1;
        }
    }
    outcome.notes.push(format!(
        "metric fingerprints: {} of {} current job(s) had recorded history to match against",
        drift_checked,
        current.len()
    ));

    // 2. Aggregate events/s per figure vs the best comparable run.
    let history_rows = figure_runs(history);
    for row in figure_runs(current) {
        let best = history_rows
            .iter()
            .filter(|h| {
                h.figure == row.figure && h.config_set == row.config_set && h.cores == row.cores
            })
            .reduce(|best, h| {
                if h.events_per_sec() > best.events_per_sec() {
                    h
                } else {
                    best
                }
            });
        let Some(best) = best else {
            outcome.notes.push(format!(
                "events/s [{}]: no recorded run with this config set at cores={} — skipped",
                row.figure, row.cores
            ));
            continue;
        };
        let floor = best.events_per_sec() * (1.0 - max_regress_pct / 100.0);
        let verdict = format!(
            "events/s [{}]: {:.0} now vs best recorded {:.0} (run {}, rev {}); \
             floor at -{:.0}% is {:.0}",
            row.figure,
            row.events_per_sec(),
            best.events_per_sec(),
            best.run,
            short_rev(&best.git_revision),
            max_regress_pct,
            floor,
        );
        if row.events_per_sec() < floor {
            outcome.failures.push(format!("regression: {verdict}"));
        } else {
            outcome.notes.push(verdict);
        }
    }
    outcome
}

/// First 12 characters of a revision string (full hashes are noise in
/// one-line reports).
pub fn short_rev(rev: &str) -> &str {
    &rev[..rev.len().min(12)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Provenance;

    fn rec(run: &str, figure: &str, nodes: u16, wall: f64, metric: &str) -> Record {
        Record {
            run: run.into(),
            created_unix: 1,
            provenance: Provenance::default(),
            figure: figure.into(),
            curve: "c".into(),
            nodes,
            seed: 1,
            cores: 1,
            host_cpus: 8,
            config_fingerprint: format!("cfg-{figure}-{nodes}"),
            metric_fingerprint: metric.into(),
            wall_secs: wall,
            events_processed: 1000,
            allocs_per_event: 0.1,
            mean_response_ms: 1.0,
            throughput_tps: 1.0,
            peak_rss_mb: None,
            binding: None,
            binding_utilization: None,
            next_constraint: None,
            next_utilization: None,
            utils: None,
        }
    }

    #[test]
    fn clean_rerun_passes() {
        let history = vec![
            rec("r1", "fig41", 1, 1.0, "m1"),
            rec("r1", "fig41", 2, 1.0, "m2"),
        ];
        let current = vec![
            rec("r2", "fig41", 1, 1.1, "m1"),
            rec("r2", "fig41", 2, 1.1, "m2"),
        ];
        let outcome = check(&history, &current, 50.0);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    }

    #[test]
    fn metric_drift_for_unchanged_config_fails() {
        let history = vec![rec("r1", "fig41", 1, 1.0, "m1")];
        let current = vec![rec("r2", "fig41", 1, 1.0, "DIFFERENT")];
        let outcome = check(&history, &current, 50.0);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("metric drift"));
    }

    #[test]
    fn slow_run_beyond_threshold_fails() {
        let history = vec![rec("r1", "fig41", 1, 1.0, "m1")];
        // 3x slower than history: below the 50% floor.
        let current = vec![rec("r2", "fig41", 1, 3.0, "m1")];
        let outcome = check(&history, &current, 50.0);
        assert_eq!(outcome.failures.len(), 1, "notes: {:?}", outcome.notes);
        assert!(outcome.failures[0].contains("regression"));
        // The same run passes a 70% threshold.
        assert!(check(&history, &current, 70.0).passed());
    }

    #[test]
    fn different_config_set_is_skipped_not_compared() {
        let history = vec![rec("r1", "fig41", 1, 1.0, "m1")];
        // Different node count => different config fingerprint and set.
        let current = vec![rec("r2", "fig41", 4, 100.0, "m4")];
        let outcome = check(&history, &current, 50.0);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome
            .notes
            .iter()
            .any(|n| n.contains("no recorded run with this config set")));
    }

    #[test]
    fn serial_baseline_never_gates_a_parallel_run() {
        // History holds only a fast serial run. A cores=2 run of the
        // same config set — slower on a small host — must skip the
        // events/s floor (no comparable cores=2 history) while still
        // passing the cores-agnostic metric-drift check.
        let history = vec![rec("r1", "fig41", 1, 1.0, "m1")];
        let mut slow_parallel = rec("r2", "fig41", 1, 10.0, "m1");
        slow_parallel.cores = 2;
        let outcome = check(&history, &[slow_parallel], 50.0);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome
            .notes
            .iter()
            .any(|n| n.contains("at cores=2 — skipped")));
        // But a parallel run that drifts metrics still fails: the
        // drift check deliberately compares across cores.
        let mut drifted = rec("r3", "fig41", 1, 1.0, "DIFFERENT");
        drifted.cores = 2;
        let outcome = check(&history, &[drifted], 50.0);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("metric drift"));
    }

    #[test]
    fn missing_metric_fingerprints_are_skipped() {
        let history = vec![rec("r1", "fig41", 1, 1.0, "")];
        let current = vec![rec("r2", "fig41", 1, 1.0, "m-new")];
        assert!(check(&history, &current, 50.0).passed());
    }
}
