//! The query layer: an in-memory index over a slice of [`Record`]s.
//!
//! The log is small (one line per job per run), so the index is
//! rebuilt from scratch on open — a handful of `HashMap`s over
//! borrowed records, no secondary files to corrupt. Queries cover the
//! three axes the tooling needs: by figure (trend tables), by config
//! fingerprint (regression deltas against the best prior run of the
//! *same* configuration), and by git revision (what did commit X
//! score). [`figure_runs`] folds per-job rows into per-(run, figure)
//! aggregates, each stamped with a *config-set fingerprint* — an
//! FNV-1a hash over the sorted config fingerprints of the figure's
//! jobs — so aggregate comparisons only ever pair runs that executed
//! the identical job set.

use crate::record::{fnv1a_hex, Record};
use std::collections::HashMap;

/// Index over a borrowed slice of records.
#[derive(Debug)]
pub struct Index<'a> {
    records: &'a [Record],
    by_figure: HashMap<&'a str, Vec<usize>>,
    by_config: HashMap<&'a str, Vec<usize>>,
    by_revision: HashMap<&'a str, Vec<usize>>,
}

impl<'a> Index<'a> {
    /// Builds the index (one pass over `records`).
    pub fn new(records: &'a [Record]) -> Index<'a> {
        let mut by_figure: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_config: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_revision: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            by_figure.entry(&r.figure).or_default().push(i);
            by_config.entry(&r.config_fingerprint).or_default().push(i);
            by_revision
                .entry(&r.provenance.git_revision)
                .or_default()
                .push(i);
        }
        Index {
            records,
            by_figure,
            by_config,
            by_revision,
        }
    }

    /// Every figure present, in order of first appearance.
    pub fn figures(&self) -> Vec<&'a str> {
        let mut seen = Vec::new();
        for r in self.records {
            if !seen.contains(&r.figure.as_str()) {
                seen.push(&r.figure);
            }
        }
        seen
    }

    /// Every run id present, in order of first appearance.
    pub fn runs(&self) -> Vec<&'a str> {
        let mut seen = Vec::new();
        for r in self.records {
            if !seen.contains(&r.run.as_str()) {
                seen.push(&r.run);
            }
        }
        seen
    }

    fn lookup(&self, map: &HashMap<&'a str, Vec<usize>>, key: &str) -> Vec<&'a Record> {
        map.get(key)
            .map(|ids| ids.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// All records of `figure`, in append order.
    pub fn by_figure(&self, figure: &str) -> Vec<&'a Record> {
        self.lookup(&self.by_figure, figure)
    }

    /// All records with the given config fingerprint, in append order.
    pub fn by_config(&self, fingerprint: &str) -> Vec<&'a Record> {
        self.lookup(&self.by_config, fingerprint)
    }

    /// All records produced by the given git revision, in append order.
    pub fn by_revision(&self, revision: &str) -> Vec<&'a Record> {
        self.lookup(&self.by_revision, revision)
    }

    /// The fastest recorded run of exactly this configuration — the
    /// baseline regression deltas are computed against. Ties keep the
    /// earliest record.
    pub fn best_events_per_sec(&self, config_fingerprint: &str) -> Option<&'a Record> {
        self.by_config(config_fingerprint)
            .into_iter()
            .reduce(|best, r| {
                if r.events_per_sec() > best.events_per_sec() {
                    r
                } else {
                    best
                }
            })
    }
}

/// Per-(run, figure) aggregate of job rows: the row a trend table
/// prints and the unit the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRun {
    /// Run id the jobs belong to.
    pub run: String,
    /// Unix timestamp of the run.
    pub created_unix: u64,
    /// Git revision that produced the run.
    pub git_revision: String,
    /// Figure key.
    pub figure: String,
    /// Engine threads per job (`Record::cores`). Part of the grouping
    /// key: a serial and a parallel run of the same figure aggregate
    /// into separate rows, so wall-clock comparisons stay
    /// apples-to-apples.
    pub cores: u32,
    /// Jobs aggregated into this row.
    pub jobs: usize,
    /// Summed host wall seconds.
    pub wall_secs: f64,
    /// Summed events processed.
    pub events: u64,
    /// Event-weighted allocations per event.
    pub allocs_per_event: f64,
    /// Largest per-job peak RSS of the run's jobs, in MiB — the
    /// memory budget the whole figure fit in. `None` when no job
    /// carried the sample (legacy rows, non-Linux hosts).
    pub peak_rss_mb: Option<f64>,
    /// Binding constraint of the figure's hottest job — the resource
    /// with the highest binding utilization across the aggregated
    /// rows. `None` when no row carried an attribution (legacy rows).
    pub binding: Option<String>,
    /// That hottest job's binding utilization in `[0, 1]`.
    pub binding_utilization: Option<f64>,
    /// FNV-1a over the sorted config fingerprints of the jobs: two
    /// rows are comparable iff this matches.
    pub config_set: String,
}

impl FigureRun {
    /// Aggregate host event rate of the figure's jobs.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
}

/// Folds records into [`FigureRun`] aggregates, preserving the order
/// in which (run, figure, cores) triples first appear in the log.
pub fn figure_runs(records: &[Record]) -> Vec<FigureRun> {
    let mut rows: Vec<FigureRun> = Vec::new();
    let mut configs: Vec<Vec<&str>> = Vec::new();
    let mut allocs: Vec<f64> = Vec::new();
    for r in records {
        let at = rows
            .iter()
            .position(|row| row.run == r.run && row.figure == r.figure && row.cores == r.cores)
            .unwrap_or_else(|| {
                rows.push(FigureRun {
                    run: r.run.clone(),
                    created_unix: r.created_unix,
                    git_revision: r.provenance.git_revision.clone(),
                    figure: r.figure.clone(),
                    cores: r.cores,
                    jobs: 0,
                    wall_secs: 0.0,
                    events: 0,
                    allocs_per_event: 0.0,
                    peak_rss_mb: None,
                    binding: None,
                    binding_utilization: None,
                    config_set: String::new(),
                });
                configs.push(Vec::new());
                allocs.push(0.0);
                rows.len() - 1
            });
        rows[at].jobs += 1;
        rows[at].wall_secs += r.wall_secs;
        rows[at].events += r.events_processed;
        if let Some(mb) = r.peak_rss_mb {
            let merged = rows[at].peak_rss_mb.map_or(mb, |best| best.max(mb));
            rows[at].peak_rss_mb = Some(merged);
        }
        // The aggregate names the *hottest* job's binding constraint
        // (strict >, so the earliest of equals wins — deterministic).
        if let (Some(b), Some(u)) = (&r.binding, r.binding_utilization) {
            if rows[at].binding_utilization.is_none_or(|best| u > best) {
                rows[at].binding = Some(b.clone());
                rows[at].binding_utilization = Some(u);
            }
        }
        allocs[at] += r.allocs_per_event * r.events_processed as f64;
        configs[at].push(&r.config_fingerprint);
    }
    for ((row, mut fps), alloc_sum) in rows.iter_mut().zip(configs).zip(allocs) {
        fps.sort_unstable();
        row.config_set = fnv1a_hex(&fps.join(","));
        row.allocs_per_event = alloc_sum / (row.events.max(1)) as f64;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Provenance;

    fn rec(run: &str, figure: &str, nodes: u16, rev: &str, wall: f64, events: u64) -> Record {
        Record {
            run: run.into(),
            created_unix: 5,
            provenance: Provenance {
                git_revision: rev.into(),
                rustc_version: "rustc".into(),
                build_profile: "release".into(),
            },
            figure: figure.into(),
            curve: "c".into(),
            nodes,
            seed: 1,
            cores: 1,
            host_cpus: 4,
            config_fingerprint: format!("cfg-{figure}-{nodes}"),
            metric_fingerprint: format!("met-{figure}-{nodes}"),
            wall_secs: wall,
            events_processed: events,
            allocs_per_event: 0.1,
            mean_response_ms: 1.0,
            throughput_tps: 1.0,
            peak_rss_mb: None,
            binding: None,
            binding_utilization: None,
            next_constraint: None,
            next_utilization: None,
            utils: None,
        }
    }

    fn sample() -> Vec<Record> {
        vec![
            rec("r1", "fig41", 1, "revA", 1.0, 1000),
            rec("r1", "fig41", 2, "revA", 1.0, 3000),
            rec("r1", "fig45", 1, "revA", 2.0, 2000),
            rec("r2", "fig41", 1, "revB", 0.5, 1000),
            rec("r2", "fig41", 2, "revB", 0.5, 3000),
        ]
    }

    #[test]
    fn queries_cover_all_three_axes() {
        let records = sample();
        let index = Index::new(&records);
        assert_eq!(index.figures(), vec!["fig41", "fig45"]);
        assert_eq!(index.runs(), vec!["r1", "r2"]);
        assert_eq!(index.by_figure("fig41").len(), 4);
        assert_eq!(index.by_figure("fig99").len(), 0);
        assert_eq!(index.by_config("cfg-fig45-1").len(), 1);
        assert_eq!(index.by_revision("revB").len(), 2);
        // r2 ran the fig41/1-node config twice as fast as r1.
        let best = index.best_events_per_sec("cfg-fig41-1").expect("has runs");
        assert_eq!(best.run, "r2");
    }

    #[test]
    fn figure_runs_aggregate_and_fingerprint_the_config_set() {
        let rows = figure_runs(&sample());
        assert_eq!(rows.len(), 3);
        let r1fig41 = &rows[0];
        assert_eq!(
            (r1fig41.run.as_str(), r1fig41.figure.as_str()),
            ("r1", "fig41")
        );
        assert_eq!(r1fig41.jobs, 2);
        assert_eq!(r1fig41.events, 4000);
        assert!((r1fig41.events_per_sec() - 2000.0).abs() < 1e-9);
        // Same job set => same config-set fingerprint across runs.
        let r2fig41 = rows.iter().find(|r| r.run == "r2").expect("r2 present");
        assert_eq!(r1fig41.config_set, r2fig41.config_set);
        // Different job set => different fingerprint.
        let r1fig45 = rows.iter().find(|r| r.figure == "fig45").expect("fig45");
        assert_ne!(r1fig41.config_set, r1fig45.config_set);
    }

    #[test]
    fn figure_runs_keep_the_largest_peak_rss() {
        // The aggregate reports the *max* job RSS (the budget the
        // figure needed), and rows without samples stay None.
        let mut records = sample();
        records[0].peak_rss_mb = Some(48.0);
        records[1].peak_rss_mb = Some(96.5);
        let rows = figure_runs(&records);
        let r1fig41 = rows
            .iter()
            .find(|r| r.run == "r1" && r.figure == "fig41")
            .expect("r1/fig41");
        assert_eq!(r1fig41.peak_rss_mb, Some(96.5));
        let r2fig41 = rows
            .iter()
            .find(|r| r.run == "r2" && r.figure == "fig41")
            .expect("r2/fig41");
        assert_eq!(r2fig41.peak_rss_mb, None);
    }

    #[test]
    fn figure_runs_name_the_hottest_binding_constraint() {
        let mut records = sample();
        records[0].binding = Some("cpu".into());
        records[0].binding_utilization = Some(0.64);
        records[1].binding = Some("network".into());
        records[1].binding_utilization = Some(0.71);
        let rows = figure_runs(&records);
        let r1fig41 = rows
            .iter()
            .find(|r| r.run == "r1" && r.figure == "fig41")
            .expect("r1/fig41");
        assert_eq!(r1fig41.binding.as_deref(), Some("network"));
        assert_eq!(r1fig41.binding_utilization, Some(0.71));
        // Rows without attribution stay None.
        let r2fig41 = rows
            .iter()
            .find(|r| r.run == "r2" && r.figure == "fig41")
            .expect("r2/fig41");
        assert_eq!(r2fig41.binding, None);
    }

    #[test]
    fn figure_runs_split_by_cores() {
        // One run executing the same figure serially and at cores=4
        // must yield two aggregate rows, not one blended average.
        let mut records = sample();
        let mut parallel = rec("r1", "fig41", 1, "revA", 0.4, 1000);
        parallel.cores = 4;
        records.push(parallel);
        let rows = figure_runs(&records);
        let fig41_r1: Vec<_> = rows
            .iter()
            .filter(|r| r.run == "r1" && r.figure == "fig41")
            .collect();
        assert_eq!(fig41_r1.len(), 2);
        assert_eq!(fig41_r1[0].cores, 1);
        assert_eq!(fig41_r1[0].jobs, 2);
        assert_eq!(fig41_r1[1].cores, 4);
        assert_eq!(fig41_r1[1].jobs, 1);
    }
}
