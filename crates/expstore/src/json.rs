//! A minimal, dependency-free JSON value: writer and parser.
//!
//! Only what the run artifacts and the experiment store need — objects
//! (with preserved key order, so rendering is deterministic), arrays,
//! strings, finite numbers, booleans, and null. Non-finite numbers
//! render as `null`, keeping every emitted document
//! standard-conformant. The parser accepts exactly the grammar the
//! writers emit (plus arbitrary whitespace), which is what the
//! round-trip regression tests rely on. [`Json::render`] produces the
//! pretty document form (`BENCH_repro.json`); [`Json::render_line`]
//! produces the compact single-line form the store's line-delimited
//! log uses — both re-serialize byte-identically after a parse.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. (Non-finite values render as `null`.)
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Sets `key` to `value` in an object, replacing an existing entry
    /// in place or appending a new one. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
        }
    }

    /// Removes `key` from an object, returning its value if present.
    /// `None` for absent keys or non-objects.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        if let Json::Obj(fields) = self {
            if let Some(pos) = fields.iter().position(|(k, _)| k == key) {
                return Some(fields.remove(pos).1);
            }
        }
        None
    }

    /// Looks up `key` in an object; `None` for absent keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Renders the value as a JSON document (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value on a single line with no whitespace — the
    /// form one record occupies in the store's line-delimited log.
    pub fn render_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips through f64.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(xs) => {
                if xs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    x.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(s: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 (no escapes, no quote).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // The writer only emits \u for control
                            // characters; surrogate pairs are passed
                            // through as raw UTF-8.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(42.0).render(), "42.0");
        assert_eq!(Json::Num(6.5).render(), "6.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b".into()).render(), r#""a\"b""#);
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig4.1 — resp\ttime".into())),
            ("n", Json::Num(10.0)),
            ("wall", Json::Num(0.123456789)),
            ("flags", Json::Arr(vec![Json::Bool(false), Json::Null])),
            (
                "nested",
                Json::obj(vec![
                    ("empty_arr", Json::Arr(vec![])),
                    ("empty_obj", Json::Obj(vec![])),
                ]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn compact_form_round_trips_and_stays_on_one_line() {
        let doc = Json::obj(vec![
            ("figure", Json::Str("fig4.1\nodd".into())),
            ("nodes", Json::Num(4.0)),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Null])),
            ("inner", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let line = doc.render_line();
        assert!(!line.contains('\n'), "compact form spans lines: {line}");
        assert_eq!(
            line,
            "{\"figure\":\"fig4.1\\nodd\",\"nodes\":4.0,\"xs\":[1.5,null],\"inner\":{\"ok\":true}}"
        );
        assert_eq!(Json::parse(&line).expect("parses"), doc);
    }

    #[test]
    fn parses_whitespace_and_exponents() {
        let v = Json::parse(" { \"x\" : [ 1e3 , -2.5E-2 ] } ").expect("parses");
        let xs = v.get("x").and_then(Json::as_arr).expect("array");
        assert_eq!(xs[0].as_f64(), Some(1000.0));
        assert_eq!(xs[1].as_f64(), Some(-0.025));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn preserves_object_key_order() {
        let text = "{\"z\": 1, \"a\": 2}";
        match Json::parse(text).expect("parses") {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
