//! The queryable experiment store: persistent regression history for
//! the reproduction's benchmark runs.
//!
//! `BENCH_repro.json` is a snapshot of *one* run; this crate is the
//! memory across runs. It is layered like a scaled-down
//! persistence/index split:
//!
//! - [`json`] — the dependency-free JSON value every layer above
//!   serializes with (moved here from `dbshare-harness`, which
//!   re-exports it), extended with the compact [`Json::render_line`]
//!   form the log uses;
//! - [`record`] — the row schema: one executed job with config and
//!   metric fingerprints, build provenance, and host cost;
//! - [`log`] — the persistence layer: an append-only line-delimited
//!   file ([`Store`]) with torn-tail recovery (truncate and warn);
//! - [`index`] — the query layer: in-memory lookups by figure, config
//!   fingerprint, and git revision, plus per-(run, figure) aggregates
//!   stamped with a config-set fingerprint;
//! - [`gate`] — the policy layer: exact metric-fingerprint matching
//!   and thresholded events/s regression checks against the best
//!   comparable recorded run;
//! - [`artifact_io`] — the bridge from a single-run
//!   `BENCH_repro.json` into records.
//!
//! The crate has no dependencies at all (not even on the simulator),
//! so anything that can produce a [`Record`] can use the store.

pub mod artifact_io;
pub mod gate;
pub mod index;
pub mod json;
pub mod log;
pub mod record;

pub use artifact_io::{read_artifact_records, records_from_artifact};
pub use gate::{check as gate_check, short_rev, GateOutcome};
pub use index::{figure_runs, FigureRun, Index};
pub use json::{Json, ParseError};
pub use log::{ReadResult, Recovery, Store};
pub use record::{fnv1a_hex, Provenance, Record, ResourceUtils, SCHEMA_VERSION};
