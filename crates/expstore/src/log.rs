//! The persistence layer: an append-only, line-delimited record log.
//!
//! One file, one [`Record`] per line, appended after every harness
//! run. Appending is the only mutation; history is never rewritten, so
//! the file doubles as the regression timeline. The reader tolerates
//! the one corruption an append-only log realistically suffers — a
//! torn trailing write (process killed mid-append, disk full) — by
//! dropping the trailing garbage and reporting what it dropped;
//! corruption *followed by* valid records means something other than a
//! torn append damaged the file, and that is a hard error rather than
//! silent data loss. [`Store::append`] truncates recovered garbage
//! before writing so the log heals on the next run.

use crate::record::Record;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// A trailing-corruption recovery the reader performed (or the
/// appender is about to perform).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// 1-based line number of the first dropped line.
    pub line: usize,
    /// Byte offset the file is (to be) truncated to.
    pub keep_bytes: u64,
    /// Bytes of trailing garbage dropped.
    pub dropped_bytes: u64,
    /// Why the first dropped line failed to parse.
    pub reason: String,
}

impl std::fmt::Display for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dropped {} corrupt trailing byte(s) from line {} ({})",
            self.dropped_bytes, self.line, self.reason
        )
    }
}

/// What a read produced: every valid record plus the recovery note if
/// the log ended in a torn write.
#[derive(Debug, Clone, Default)]
pub struct ReadResult {
    /// All records, in append order.
    pub records: Vec<Record>,
    /// Present when trailing corruption was dropped.
    pub recovery: Option<Recovery>,
}

/// Handle on one store file.
#[derive(Debug, Clone)]
pub struct Store {
    path: PathBuf,
}

impl Store {
    /// A store at `path`. Nothing is touched until a read or append.
    pub fn new(path: impl Into<PathBuf>) -> Store {
        Store { path: path.into() }
    }

    /// The underlying file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every record. A missing file is an empty store; a torn
    /// trailing write is dropped and reported via
    /// [`ReadResult::recovery`]; corruption anywhere else is an error.
    pub fn read(&self) -> io::Result<ReadResult> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ReadResult::default()),
            Err(e) => return Err(e),
        };
        parse_log(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Appends `records`, one line each, creating the file (and parent
    /// directory) on first use. If the log ends in a torn write, the
    /// garbage is truncated away first; the performed [`Recovery`] is
    /// returned so callers can surface a warning.
    pub fn append(&self, records: &[Record]) -> io::Result<Option<Recovery>> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let recovery = self.read()?.recovery;
        if let Some(rec) = &recovery {
            let file = OpenOptions::new().write(true).open(&self.path)?;
            file.set_len(rec.keep_bytes)?;
        }
        let mut out = String::new();
        for record in records {
            out.push_str(&record.to_line());
            out.push('\n');
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(out.as_bytes())?;
        Ok(recovery)
    }
}

/// Splits `text` into lines and parses each as a [`Record`].
///
/// Returns `Err` only for mid-file corruption; trailing corruption
/// (the torn-append case) is recovered.
fn parse_log(text: &str) -> Result<ReadResult, String> {
    let mut records = Vec::new();
    let mut failure: Option<Recovery> = None;
    let mut offset = 0usize;
    for (index, line) in text.split_inclusive('\n').enumerate() {
        let row = line.trim_end_matches(['\n', '\r']);
        if !row.trim().is_empty() {
            match Record::from_line(row) {
                Ok(record) => {
                    if let Some(f) = failure.take() {
                        // A valid record after a bad line: this is not
                        // a torn append, refuse to guess.
                        return Err(format!(
                            "corrupt record on line {} ({}) followed by valid records \
                             — refusing to drop mid-log history",
                            f.line, f.reason
                        ));
                    }
                    records.push(record);
                }
                Err(reason) => {
                    if failure.is_none() {
                        failure = Some(Recovery {
                            line: index + 1,
                            keep_bytes: offset as u64,
                            dropped_bytes: (text.len() - offset) as u64,
                            reason,
                        });
                    }
                }
            }
        }
        offset += line.len();
    }
    Ok(ReadResult {
        records,
        recovery: failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Provenance;

    fn rec(figure: &str, nodes: u16) -> Record {
        Record {
            run: "r1".into(),
            created_unix: 1,
            provenance: Provenance::default(),
            figure: figure.into(),
            curve: "c".into(),
            nodes,
            seed: 9,
            cores: 1,
            host_cpus: 4,
            config_fingerprint: "cfg".into(),
            metric_fingerprint: "met".into(),
            wall_secs: 1.0,
            events_processed: 10,
            allocs_per_event: 0.0,
            mean_response_ms: 1.0,
            throughput_tps: 1.0,
            peak_rss_mb: None,
            binding: None,
            binding_utilization: None,
            next_constraint: None,
            next_utilization: None,
            utils: None,
        }
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let store = Store::new("/nonexistent-dir-for-sure/history.jsonl");
        let read = store.read().expect("missing file is an empty store");
        assert!(read.records.is_empty() && read.recovery.is_none());
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let good = rec("fig41", 1).to_line();
        let text = format!("{good}\n{{broken\n{good}\n");
        let err = parse_log(&text).expect_err("mid-log corruption must not be dropped");
        assert!(err.contains("line 2"), "unhelpful error: {err}");
    }

    #[test]
    fn torn_trailing_write_is_recovered() {
        let good = rec("fig41", 1).to_line();
        let torn = &good[..good.len() / 2];
        let text = format!("{good}\n{torn}");
        let read = parse_log(&text).expect("torn tail recovers");
        assert_eq!(read.records.len(), 1);
        let recovery = read.recovery.expect("recovery reported");
        assert_eq!(recovery.line, 2);
        assert_eq!(recovery.keep_bytes as usize, good.len() + 1);
        assert_eq!(recovery.dropped_bytes as usize, torn.len());
    }
}
