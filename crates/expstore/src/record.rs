//! The store's row type: one executed job, fully provenance-stamped.
//!
//! A [`Record`] is the unit the append-only log persists and the index
//! queries: which figure/curve/point ran, under which configuration
//! (the config fingerprint covers every parameter including seed and
//! run length), what it produced (the metric fingerprint pins every
//! headline metric bit-exactly), which build produced it (git
//! revision, rustc, profile), and what it cost on the host (wall
//! seconds, events, allocations). Records serialize to one compact
//! JSON line each ([`Record::to_line`]) and parse back losslessly
//! ([`Record::from_line`]); the field order is fixed so re-rendering a
//! parsed record is byte-identical.

use crate::json::Json;

/// Store schema version, embedded in every row as `"v"`. Bumped on
/// incompatible layout changes; readers reject rows they don't know.
pub const SCHEMA_VERSION: u64 = 1;

/// Build/run provenance shared by every record of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// `git rev-parse HEAD` at build time (`-dirty` suffix when the
    /// tree had uncommitted changes); `"unknown"` without a checkout.
    pub git_revision: String,
    /// `rustc -V` of the compiler that built the binary.
    pub rustc_version: String,
    /// Cargo build profile (`release`, `debug`, ...).
    pub build_profile: String,
}

/// One persisted job result: a single row of the experiment store.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Opaque run id grouping the rows appended by one harness run.
    pub run: String,
    /// Unix timestamp of the run (0 when the clock was unreadable).
    pub created_unix: u64,
    /// Build provenance of the binary that executed the job.
    pub provenance: Provenance,
    /// Figure key, e.g. `"fig41"`.
    pub figure: String,
    /// Curve label as in the paper's legend.
    pub curve: String,
    /// Swept node count (the x-axis value).
    pub nodes: u16,
    /// The run's master seed.
    pub seed: u64,
    /// Host threads the engine used for this job
    /// (`RunControl::cores`; 1 = the serial event loop). Results are
    /// bit-identical at every setting, but wall-clock is not — trend
    /// comparisons must only pair rows with equal `cores`. Rows
    /// written before this field existed parse as 1.
    pub cores: u32,
    /// Logical CPUs of the host that executed the job (0 when unknown
    /// or on rows written before this field existed). Context for
    /// reading parallel speedups.
    pub host_cpus: u32,
    /// FNV-1a hash of the job's complete configuration.
    pub config_fingerprint: String,
    /// FNV-1a hash over the bits of every headline metric — equal iff
    /// the simulation produced bit-identical results.
    pub metric_fingerprint: String,
    /// Host wall-clock seconds the job took.
    pub wall_secs: f64,
    /// Calendar events the job processed.
    pub events_processed: u64,
    /// Host heap allocations per processed event.
    pub allocs_per_event: f64,
    /// Headline simulated metric: mean response time in ms.
    pub mean_response_ms: f64,
    /// Headline simulated metric: system throughput in TPS.
    pub throughput_tps: f64,
    /// Process peak RSS in MiB sampled after the job (an upper-bound
    /// estimate — the high-water mark is process-wide). `None` on
    /// platforms without the figure and on rows written before the
    /// field existed; rendered only when present so legacy rows
    /// re-serialize byte-identically.
    pub peak_rss_mb: Option<f64>,
    /// Binding constraint of the run — the most-utilized resource
    /// (`"cpu"`, `"network"`, `"disk:<group>"`, ...), as attributed by
    /// `sim::explain`. `None` on rows written before attribution
    /// existed; rendered only when present.
    pub binding: Option<String>,
    /// The binding constraint's utilization in `[0, 1]`.
    pub binding_utilization: Option<f64>,
    /// The runner-up resource (what would bind after fixing the
    /// first).
    pub next_constraint: Option<String>,
    /// The runner-up's utilization in `[0, 1]`.
    pub next_utilization: Option<f64>,
    /// Compact utilization stack for report rendering.
    pub utils: Option<ResourceUtils>,
}

/// A row's compact per-resource utilization stack: the handful of
/// numbers the HTML report draws. Coarser than the full
/// `sim::explain` attribution — coupled resources (GEM, lock engine)
/// and disk groups each fold to their maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUtils {
    /// Hottest node's CPU utilization.
    pub cpu: f64,
    /// Coupling facility: max of GEM and lock-engine utilization.
    pub coupling: f64,
    /// Network utilization.
    pub network: f64,
    /// Hottest disk group's utilization.
    pub disk: f64,
    /// Hottest log disk's utilization.
    pub log: f64,
}

impl Record {
    /// Host event rate of the job — the store's perf trend metric.
    pub fn events_per_sec(&self) -> f64 {
        self.events_processed as f64 / self.wall_secs.max(1e-9)
    }

    /// The record as a [`Json`] object with the store's fixed key
    /// order.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj(vec![
            ("v", Json::Num(SCHEMA_VERSION as f64)),
            ("run", Json::Str(self.run.clone())),
            ("created_unix", Json::Num(self.created_unix as f64)),
            (
                "git_revision",
                Json::Str(self.provenance.git_revision.clone()),
            ),
            (
                "rustc_version",
                Json::Str(self.provenance.rustc_version.clone()),
            ),
            (
                "build_profile",
                Json::Str(self.provenance.build_profile.clone()),
            ),
            ("figure", Json::Str(self.figure.clone())),
            ("curve", Json::Str(self.curve.clone())),
            ("nodes", Json::Num(f64::from(self.nodes))),
            ("seed", Json::Num(self.seed as f64)),
            ("cores", Json::Num(f64::from(self.cores))),
            ("host_cpus", Json::Num(f64::from(self.host_cpus))),
            (
                "config_fingerprint",
                Json::Str(self.config_fingerprint.clone()),
            ),
            (
                "metric_fingerprint",
                Json::Str(self.metric_fingerprint.clone()),
            ),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("events_processed", Json::Num(self.events_processed as f64)),
            ("allocs_per_event", Json::Num(self.allocs_per_event)),
            ("mean_response_ms", Json::Num(self.mean_response_ms)),
            ("throughput_tps", Json::Num(self.throughput_tps)),
        ]);
        // Optional trailer: present only when sampled, so rows without
        // it (legacy rows, non-Linux hosts) re-render byte-identically.
        if let Some(mb) = self.peak_rss_mb {
            doc.set("peak_rss_mb", Json::Num(mb));
        }
        if let Some(b) = &self.binding {
            doc.set("binding", Json::Str(b.clone()));
        }
        if let Some(u) = self.binding_utilization {
            doc.set("binding_utilization", Json::Num(u));
        }
        if let Some(n) = &self.next_constraint {
            doc.set("next_constraint", Json::Str(n.clone()));
        }
        if let Some(u) = self.next_utilization {
            doc.set("next_utilization", Json::Num(u));
        }
        if let Some(us) = &self.utils {
            doc.set(
                "utilizations",
                Json::obj(vec![
                    ("cpu", Json::Num(us.cpu)),
                    ("coupling", Json::Num(us.coupling)),
                    ("network", Json::Num(us.network)),
                    ("disk", Json::Num(us.disk)),
                    ("log", Json::Num(us.log)),
                ]),
            );
        }
        doc
    }

    /// Renders the record as one store line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().render_line()
    }

    /// Reads a record back from a parsed store row.
    pub fn from_json(doc: &Json) -> Result<Record, String> {
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let version = num_field("v")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported record version {version} (this reader knows {SCHEMA_VERSION})"
            ));
        }
        Ok(Record {
            run: str_field("run")?,
            created_unix: num_field("created_unix")? as u64,
            provenance: Provenance {
                git_revision: str_field("git_revision")?,
                rustc_version: str_field("rustc_version")?,
                build_profile: str_field("build_profile")?,
            },
            figure: str_field("figure")?,
            curve: str_field("curve")?,
            nodes: num_field("nodes")? as u16,
            seed: num_field("seed")? as u64,
            // Optional with defaults: rows written before the parallel
            // engine carry neither field and stay readable (still
            // schema v1 — new rows always render both).
            cores: doc.get("cores").and_then(Json::as_f64).unwrap_or(1.0) as u32,
            host_cpus: doc.get("host_cpus").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            config_fingerprint: str_field("config_fingerprint")?,
            metric_fingerprint: str_field("metric_fingerprint")?,
            wall_secs: num_field("wall_secs")?,
            events_processed: num_field("events_processed")? as u64,
            allocs_per_event: num_field("allocs_per_event")?,
            mean_response_ms: num_field("mean_response_ms")?,
            throughput_tps: num_field("throughput_tps")?,
            peak_rss_mb: doc.get("peak_rss_mb").and_then(Json::as_f64),
            binding: doc
                .get("binding")
                .and_then(Json::as_str)
                .map(str::to_string),
            binding_utilization: doc.get("binding_utilization").and_then(Json::as_f64),
            next_constraint: doc
                .get("next_constraint")
                .and_then(Json::as_str)
                .map(str::to_string),
            next_utilization: doc.get("next_utilization").and_then(Json::as_f64),
            utils: doc.get("utilizations").map(|us| {
                let f = |key: &str| us.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                ResourceUtils {
                    cpu: f("cpu"),
                    coupling: f("coupling"),
                    network: f("network"),
                    disk: f("disk"),
                    log: f("log"),
                }
            }),
        })
    }

    /// Parses one store line.
    pub fn from_line(line: &str) -> Result<Record, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        Record::from_json(&doc)
    }
}

/// A 64-bit FNV-1a hash of `text`, as 16 hex digits — the same
/// construction the harness uses for config fingerprints, shared here
/// so every layer derives identifiers identically.
pub fn fnv1a_hex(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(figure: &str, nodes: u16, seed: u64) -> Record {
        Record {
            run: "r100-1-0".into(),
            created_unix: 1_760_000_000,
            provenance: Provenance {
                git_revision: "abc123".into(),
                rustc_version: "rustc 1.80.0".into(),
                build_profile: "release".into(),
            },
            figure: figure.into(),
            curve: "GEM, NOFORCE".into(),
            nodes,
            seed,
            cores: 1,
            host_cpus: 8,
            config_fingerprint: format!("cfg{figure}{nodes}"),
            metric_fingerprint: format!("met{figure}{nodes}"),
            wall_secs: 0.5,
            events_processed: 70_000,
            allocs_per_event: 0.0625,
            mean_response_ms: 71.7,
            throughput_tps: 197.0,
            peak_rss_mb: None,
            binding: None,
            binding_utilization: None,
            next_constraint: None,
            next_utilization: None,
            utils: None,
        }
    }

    #[test]
    fn line_round_trip_is_lossless() {
        let rec = sample("fig41", 4, 42);
        let line = rec.to_line();
        assert!(!line.contains('\n'));
        let back = Record::from_line(&line).expect("parses back");
        assert_eq!(back, rec);
        // Re-serialization of the parsed record is byte-identical.
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn peak_rss_round_trips_and_stays_optional() {
        let mut rec = sample("fig41", 2, 9);
        // Absent: the rendered line must not mention the key at all,
        // so rows written before the field existed stay byte-stable.
        assert!(!rec.to_line().contains("peak_rss_mb"));
        rec.peak_rss_mb = Some(512.25);
        let line = rec.to_line();
        assert!(line.contains("peak_rss_mb"));
        let back = Record::from_line(&line).expect("parses back");
        assert_eq!(back.peak_rss_mb, Some(512.25));
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn explain_trailer_round_trips_and_stays_optional() {
        let mut rec = sample("fig41", 2, 9);
        // Absent: no attribution keys in the rendered line, so rows
        // written before the fields existed stay byte-stable.
        let bare = rec.to_line();
        assert!(!bare.contains("binding"));
        assert!(!bare.contains("utilizations"));
        rec.binding = Some("network".into());
        rec.binding_utilization = Some(0.71);
        rec.next_constraint = Some("cpu".into());
        rec.next_utilization = Some(0.644);
        rec.utils = Some(ResourceUtils {
            cpu: 0.644,
            coupling: 0.31,
            network: 0.71,
            disk: 0.39,
            log: 0.1,
        });
        let line = rec.to_line();
        let back = Record::from_line(&line).expect("parses back");
        assert_eq!(back, rec);
        assert_eq!(back.to_line(), line);
        assert_eq!(back.binding.as_deref(), Some("network"));
        assert_eq!(back.utils.unwrap().network, 0.71);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut doc = sample("fig41", 1, 7).to_json();
        doc.set("v", Json::Num(99.0));
        let err = Record::from_json(&doc).expect_err("version 99 must be rejected");
        assert!(err.contains("version 99"), "unhelpful error: {err}");
    }

    #[test]
    fn missing_fields_name_the_field() {
        let err = Record::from_line("{\"v\":1.0,\"run\":\"r\"}").expect_err("incomplete row");
        assert!(err.contains("created_unix"), "unhelpful error: {err}");
    }

    #[test]
    fn rows_without_cores_fields_parse_with_defaults() {
        // A pre-parallel-engine v1 row (no cores / host_cpus keys)
        // must stay readable — the committed baseline history depends
        // on it.
        let mut doc = sample("fig41", 2, 7).to_json();
        doc.remove("cores");
        doc.remove("host_cpus");
        let back = Record::from_json(&doc).expect("legacy row parses");
        assert_eq!(back.cores, 1);
        assert_eq!(back.host_cpus, 0);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64-bit reference values.
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a"), "af63dc4c8601ec8c");
    }
}
