//! Store integration tests against a real file: append/read
//! round-trips, index queries, torn-write recovery, and byte-identical
//! re-serialization of the store's JSON values.

use dbshare_expstore::{figure_runs, Index, Json, Provenance, Record, Store};
use std::fs;
use std::path::PathBuf;

/// A scratch file under the target-adjacent temp dir, removed on drop.
struct TempFile(PathBuf);

impl TempFile {
    fn new(name: &str) -> TempFile {
        let mut path = std::env::temp_dir();
        path.push(format!("dbshare-expstore-{}-{name}", std::process::id()));
        let _ = fs::remove_file(&path);
        TempFile(path)
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn record(run: &str, figure: &str, nodes: u16, wall: f64) -> Record {
    Record {
        run: run.into(),
        created_unix: 1_760_000_000,
        provenance: Provenance {
            git_revision: format!("rev-{run}"),
            rustc_version: "rustc 1.80.0 (stable)".into(),
            build_profile: "release".into(),
        },
        figure: figure.into(),
        curve: format!("curve of {figure}, \"quoted\""),
        nodes,
        seed: 0xD5_0000 + u64::from(nodes),
        cores: 1,
        host_cpus: 8,
        config_fingerprint: format!("cfg-{figure}-{nodes}"),
        metric_fingerprint: format!("met-{figure}-{nodes}"),
        wall_secs: wall,
        events_processed: 50_000 * u64::from(nodes),
        allocs_per_event: 0.0646,
        mean_response_ms: 71.25,
        throughput_tps: 196.5,
        peak_rss_mb: None,
        binding: None,
        binding_utilization: None,
        next_constraint: None,
        next_utilization: None,
        utils: None,
    }
}

#[test]
fn append_read_round_trip_preserves_every_field_and_order() {
    let tmp = TempFile::new("roundtrip.jsonl");
    let store = Store::new(&tmp.0);
    let first = vec![record("r1", "fig41", 1, 0.5), record("r1", "fig41", 2, 0.7)];
    let second = vec![record("r2", "fig45", 4, 1.5)];
    assert!(store.append(&first).expect("append 1").is_none());
    assert!(store.append(&second).expect("append 2").is_none());

    let read = store.read().expect("read back");
    assert!(read.recovery.is_none());
    let expected: Vec<Record> = first.into_iter().chain(second).collect();
    assert_eq!(read.records, expected);
}

#[test]
fn index_queries_by_figure_fingerprint_and_revision() {
    let tmp = TempFile::new("index.jsonl");
    let store = Store::new(&tmp.0);
    store
        .append(&[
            record("r1", "fig41", 1, 1.0),
            record("r1", "fig41", 2, 1.0),
            record("r1", "fig45", 1, 1.0),
            record("r2", "fig41", 1, 0.25),
        ])
        .expect("append");
    let read = store.read().expect("read");
    let index = Index::new(&read.records);

    assert_eq!(index.figures(), vec!["fig41", "fig45"]);
    assert_eq!(index.by_figure("fig41").len(), 3);
    assert_eq!(index.by_config("cfg-fig41-1").len(), 2);
    assert_eq!(index.by_revision("rev-r2").len(), 1);
    // r2 re-ran the fig41 1-node config 4x faster: it is the best.
    let best = index.best_events_per_sec("cfg-fig41-1").expect("best");
    assert_eq!(best.run, "r2");
    // Aggregates: r1/fig41 groups two jobs, with a config-set
    // fingerprint distinct from the single-job r2/fig41 row.
    let rows = figure_runs(&read.records);
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].jobs, 2);
    assert_ne!(rows[0].config_set, rows[2].config_set);
}

#[test]
fn torn_trailing_write_is_truncated_and_warned_on_next_append() {
    let tmp = TempFile::new("torn.jsonl");
    let store = Store::new(&tmp.0);
    store
        .append(&[record("r1", "fig41", 1, 1.0)])
        .expect("append");
    // Simulate a torn append: half a record at the tail.
    let half = &record("r1", "fig41", 2, 1.0).to_line()[..40];
    let mut bytes = fs::read(&tmp.0).expect("read file");
    let clean_len = bytes.len() as u64;
    bytes.extend_from_slice(half.as_bytes());
    fs::write(&tmp.0, &bytes).expect("write torn tail");

    // Reading drops the tail and warns, without touching the file.
    let read = store.read().expect("read recovers");
    assert_eq!(read.records.len(), 1);
    let recovery = read.recovery.as_ref().expect("warned");
    assert_eq!(recovery.keep_bytes, clean_len);
    assert_eq!(recovery.dropped_bytes as usize, half.len());
    assert_eq!(
        fs::metadata(&tmp.0).expect("meta").len(),
        clean_len + half.len() as u64
    );

    // Appending first truncates the torn tail, then writes cleanly.
    let recovery = store
        .append(&[record("r2", "fig41", 2, 1.0)])
        .expect("append repairs")
        .expect("recovery reported");
    assert_eq!(recovery.keep_bytes, clean_len);
    let read = store.read().expect("read after repair");
    assert!(read.recovery.is_none());
    assert_eq!(read.records.len(), 2);
    assert_eq!(read.records[1].run, "r2");
}

#[test]
fn mid_file_corruption_refuses_to_read() {
    let tmp = TempFile::new("midfile.jsonl");
    let store = Store::new(&tmp.0);
    let good = record("r1", "fig41", 1, 1.0).to_line();
    fs::write(&tmp.0, format!("{good}\nnot json at all\n{good}\n")).expect("write");
    let err = store.read().expect_err("mid-file corruption is fatal");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn stored_lines_reserialize_byte_identically() {
    let tmp = TempFile::new("reserialize.jsonl");
    let store = Store::new(&tmp.0);
    store
        .append(&[
            record("r1", "fig41", 1, 0.125),
            record("r1", "fig47", 8, 2.0),
        ])
        .expect("append");
    let text = fs::read_to_string(&tmp.0).expect("raw text");
    for line in text.lines() {
        // parse -> render_line is the identity on every stored row:
        // the Json value layer loses nothing and adds nothing.
        let doc = Json::parse(line).expect("row parses");
        assert_eq!(doc.render_line(), line, "re-serialization drifted");
        // And through the typed Record layer as well.
        let rec = Record::from_line(line).expect("record parses");
        assert_eq!(rec.to_line(), line, "record re-serialization drifted");
    }
}
