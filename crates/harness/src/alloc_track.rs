//! Heap-allocation accounting for perf regression tracking.
//!
//! [`CountingAlloc`] is a `GlobalAlloc` wrapper around the system
//! allocator that bumps *thread-local* counters on every `alloc` /
//! `alloc_zeroed` / `realloc`. Binaries that want allocation numbers
//! (the `repro` CLI, the allocation-regression test) install it with
//! `#[global_allocator]`; everything else links the plain system
//! allocator and the counters read zero.
//!
//! The counters are thread-local on purpose: every harness job runs
//! start-to-finish on one worker thread, so the pool can attribute
//! allocator traffic to a job by snapshotting [`thread_allocs`] /
//! [`thread_alloc_bytes`] around `RunSpec::execute` with no
//! synchronization and no cross-job bleed. The thread-locals are
//! const-initialized `Cell<u64>`s — no lazy initialization and no
//! destructor, so reading them from inside the allocator cannot
//! recurse into the allocator or touch torn-down TLS.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Heap allocations (`alloc` + `realloc` calls) this thread has
/// performed since it started, when [`CountingAlloc`] is installed.
pub fn thread_allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Heap bytes this thread has requested since it started, when
/// [`CountingAlloc`] is installed.
pub fn thread_alloc_bytes() -> u64 {
    BYTES.with(Cell::get)
}

#[inline]
fn note(bytes: usize) {
    // `try_with` so a (theoretical) access after TLS teardown degrades
    // to "not counted" instead of panicking inside the allocator.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

/// A counting wrapper around [`System`]. Install with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install `CountingAlloc`, so the
    // counters must stay zero no matter how much the test allocates —
    // exactly the behavior the sim-crate tests rely on.
    #[test]
    fn counters_read_zero_without_installation() {
        let before = (thread_allocs(), thread_alloc_bytes());
        let v: Vec<u64> = (0..1000).collect();
        assert_eq!(v.len(), 1000);
        assert_eq!((thread_allocs(), thread_alloc_bytes()), before);
    }

    #[test]
    fn note_bumps_both_counters() {
        let (a0, b0) = (thread_allocs(), thread_alloc_bytes());
        note(48);
        note(16);
        assert_eq!(thread_allocs(), a0 + 2);
        assert_eq!(thread_alloc_bytes(), b0 + 64);
    }
}
