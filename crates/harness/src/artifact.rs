//! Run artifacts: the `BENCH_repro.json` document.
//!
//! One record per executed job, capturing what you need to audit or
//! diff a reproduction run: which figure/curve/point it was, the seed
//! and a fingerprint of the full configuration, the host wall-clock it
//! cost, and the headline simulated metrics. The document is built
//! from the in-repo [`Json`] value, so it round-trips through
//! [`Json::parse`] — the determinism regression test relies on that.

use crate::json::Json;
use crate::pool::JobResult;
use dbshare_sim::experiments::RunSpec;
use std::io::Write as _;
use std::path::Path;

/// Artifact schema identifier, bumped on incompatible layout changes.
pub const SCHEMA: &str = "dbshare-bench/1";

/// A 64-bit FNV-1a hash of the spec's full `Debug` rendering, as
/// 16 hex digits. Two jobs share a fingerprint iff their complete
/// configuration (every parameter, including seed and run length) is
/// identical — cheap to compare across artifact files.
pub fn fingerprint(spec: &RunSpec) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{spec:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Builds the artifact document for one harness run.
///
/// `created_unix` is seconds since the Unix epoch (pass `None` in
/// tests for a reproducible document).
pub fn artifact(
    results: &[JobResult],
    workers: usize,
    host_cpus: u32,
    total_wall_secs: f64,
    created_unix: Option<u64>,
) -> Json {
    let records: Vec<Json> = results.iter().map(record).collect();
    let total_events: u64 = results.iter().map(|r| r.report.events_processed).sum();
    let total_allocs: u64 = results.iter().map(|r| r.report.profile.host_allocs).sum();
    let peak_rss = results
        .iter()
        .filter_map(|r| r.peak_rss_mb)
        .fold(None::<f64>, |acc, mb| Some(acc.map_or(mb, |a| a.max(mb))));
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.into())),
        (
            "created_unix",
            match created_unix {
                Some(t) => Json::Num(t as f64),
                None => Json::Null,
            },
        ),
        ("workers", Json::Num(workers as f64)),
        ("host_cpus", Json::Num(f64::from(host_cpus))),
        ("jobs", Json::Num(results.len() as f64)),
        ("total_wall_secs", Json::Num(total_wall_secs)),
        ("total_events", Json::Num(total_events as f64)),
        (
            "events_per_sec",
            Json::Num(total_events as f64 / total_wall_secs.max(1e-9)),
        ),
        ("total_allocs", Json::Num(total_allocs as f64)),
        (
            "allocs_per_event",
            Json::Num(total_allocs as f64 / (total_events.max(1)) as f64),
        ),
        (
            "peak_rss_mb",
            match peak_rss {
                Some(mb) => Json::Num(mb),
                None => Json::Null,
            },
        ),
        ("records", Json::Arr(records)),
    ])
}

/// The per-job record inside the artifact's `records` array.
fn record(result: &JobResult) -> Json {
    let r = &result.report;
    let disks = r
        .disk_utilizations
        .iter()
        .map(|(name, util)| (name.clone(), Json::Num(*util)))
        .collect();
    Json::obj(vec![
        ("figure", Json::Str(result.job.figure.clone())),
        ("curve", Json::Str(result.job.curve.clone())),
        ("nodes", Json::Num(f64::from(result.job.nodes))),
        ("seed", Json::Num(result.job.spec.seed() as f64)),
        ("cores", Json::Num(f64::from(result.job.cores))),
        (
            "config_fingerprint",
            Json::Str(fingerprint(&result.job.spec)),
        ),
        ("metric_fingerprint", Json::Str(r.metric_fingerprint())),
        ("wall_secs", Json::Num(result.wall_secs)),
        (
            "peak_rss_mb",
            match result.peak_rss_mb {
                Some(mb) => Json::Num(mb),
                None => Json::Null,
            },
        ),
        ("events_processed", Json::Num(r.events_processed as f64)),
        (
            "events_per_sec",
            Json::Num(r.events_processed as f64 / result.wall_secs.max(1e-9)),
        ),
        ("host_allocs", Json::Num(r.profile.host_allocs as f64)),
        (
            "host_alloc_bytes",
            Json::Num(r.profile.host_alloc_bytes as f64),
        ),
        ("allocs_per_event", Json::Num(r.profile.allocs_per_event())),
        ("sim_seconds", Json::Num(r.sim_seconds)),
        ("measured_txns", Json::Num(r.measured_txns as f64)),
        ("mean_response_ms", Json::Num(r.mean_response_ms)),
        ("norm_response_ms", Json::Num(r.norm_response_ms)),
        ("throughput_tps", Json::Num(r.throughput_tps)),
        (
            "tps_per_node_at_80pct_cpu",
            Json::Num(r.tps_per_node_at_80pct_cpu),
        ),
        ("cpu_utilization", Json::Num(r.cpu_utilization)),
        ("gem_utilization", Json::Num(r.gem_utilization)),
        ("disk_utilizations", Json::Obj(disks)),
    ])
}

/// Renders `doc` to `path` (with a trailing newline).
pub fn write_artifact(path: &Path, doc: &Json) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(doc.render().as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_sim::experiments::{DebitCreditRun, RunLength};

    const TINY: RunLength = RunLength {
        warmup: 10,
        measured: 50,
    };

    #[test]
    fn fingerprint_separates_specs_and_is_stable() {
        let a = RunSpec::DebitCredit(DebitCreditRun::baseline(2, TINY));
        let mut changed = DebitCreditRun::baseline(2, TINY);
        changed.seed ^= 1;
        let b = RunSpec::DebitCredit(changed);
        assert_eq!(fingerprint(&a), fingerprint(&a));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a).len(), 16);
    }

    #[test]
    fn artifact_has_one_record_per_job_with_headline_fields() {
        let spec = RunSpec::DebitCredit(DebitCreditRun::baseline(1, TINY));
        let results: Vec<JobResult> = (0..3)
            .map(|i| JobResult {
                job: crate::Job {
                    figure: format!("fig{i}"),
                    curve: "c".into(),
                    nodes: 1,
                    spec,
                    observe: crate::Observe::default(),
                    cores: 1,
                },
                report: spec.execute(),
                observations: crate::Observations::default(),
                wall_secs: 0.25,
                peak_rss_mb: Some(128.0),
            })
            .collect();
        let doc = artifact(&results, 2, 8, 1.5, Some(1_700_000_000));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("host_cpus").and_then(Json::as_f64), Some(8.0));
        assert_eq!(doc.get("jobs").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("peak_rss_mb").and_then(Json::as_f64), Some(128.0));
        let records = doc.get("records").and_then(Json::as_arr).expect("records");
        assert_eq!(records.len(), 3);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(
                rec.get("figure").and_then(Json::as_str),
                Some(&*format!("fig{i}"))
            );
            assert_eq!(rec.get("wall_secs").and_then(Json::as_f64), Some(0.25));
            for key in [
                "seed",
                "cores",
                "config_fingerprint",
                "metric_fingerprint",
                "sim_seconds",
                "mean_response_ms",
                "throughput_tps",
                "cpu_utilization",
                "gem_utilization",
                "disk_utilizations",
            ] {
                assert!(rec.get(key).is_some(), "missing {key}");
            }
        }
    }
}
