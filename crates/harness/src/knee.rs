//! The `--knee` driver: find where a scale curve saturates by
//! bisecting the node axis instead of sweeping a fixed grid.
//!
//! A fixed `--scale` grid spends a full job on every node count; the
//! knee question ("where does the binding resource reach saturation?")
//! only needs the bracket. The driver probes the hi endpoint first —
//! if the curve never saturates (the GEM case), that is one job and a
//! verdict — then the lo endpoint, then bisects until the bracket is
//! no wider than a quarter of the original span. Every probe is built
//! from the same [`ScalePreset::spec`] the fixed grid uses, runs
//! through the ordinary [`Harness`] job pool (so `--jobs`, `--cores`,
//! the ticker, and history persistence all apply), and lands in the
//! experiment store as a row whose config fingerprint matches the
//! grid's point at that node count.

use crate::{Harness, Sweep};
use dbshare_sim::experiments::{CurveGrid, ScalePreset};
use dbshare_sim::explain::{self, CurveKnee};
use dbshare_sim::RunReport;

/// The result of one curve's bisection.
#[derive(Debug, Clone)]
pub struct KneeCurve {
    /// The verdict, phrased exactly like `--explain`'s knee lines.
    pub verdict: CurveKnee,
    /// Node counts probed, in probe order.
    pub probed: Vec<u16>,
}

/// A whole `--knee` run: one bisection per curve of the preset.
#[derive(Debug, Clone)]
pub struct KneeOutcome {
    /// Figure key the probes were recorded under (e.g. `"knee-full"`).
    pub figure: String,
    /// One result per curve, in [`ScalePreset::CURVES`] order.
    pub curves: Vec<KneeCurve>,
    /// Jobs the fixed grid would have run, for the closing tally.
    pub grid_jobs: usize,
}

impl KneeOutcome {
    /// Total probes across all curves.
    pub fn total_probes(&self) -> usize {
        self.curves.iter().map(|c| c.probed.len()).sum()
    }

    /// The closing verdict block (one line per curve plus the probe
    /// tally). Deterministic: a pure function of the probed reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.curves {
            out.push_str(&c.verdict.verdict());
            out.push('\n');
        }
        out.push_str(&format!(
            "total probes: {} (fixed grid: {} jobs)\n",
            self.total_probes(),
            self.grid_jobs
        ));
        out
    }
}

/// Runs the bisection for every curve of `preset`, printing one stdout
/// line per probe as it lands. Probes are recorded under `figure` in
/// the harness's history (when one is configured).
pub fn run_knee(
    harness: &Harness,
    figure: &str,
    preset: &ScalePreset,
    threshold: f64,
) -> KneeOutcome {
    let lo0 = *preset.nodes.first().expect("preset has a node axis");
    let hi0 = *preset.nodes.last().expect("preset has a node axis");
    let mut curves = Vec::new();
    for &(label, coupling) in ScalePreset::CURVES.iter() {
        let mut points: Vec<(u16, RunReport)> = Vec::new();
        let probed = probe_order(lo0, hi0, |n| {
            let report = run_probe(harness, figure, label, preset.spec(coupling, n), n);
            let a = explain::attribute(&report);
            let b = a.binding();
            println!(
                "probe {label} n={n}: binding {} {:.1}%, resp {:.1}ms",
                b.name,
                b.utilization * 100.0,
                report.mean_response_ms
            );
            let saturated = b.utilization >= threshold;
            points.push((n, report));
            saturated
        });

        // Fold the probes into the same verdict shape --explain uses:
        // sort by node count and scan for the first crossing.
        points.sort_by_key(|&(n, _)| n);
        let refs: Vec<(u16, &RunReport)> = points.iter().map(|(n, r)| (*n, r)).collect();
        let mut peak: Option<(String, f64, u16)> = None;
        for (n, r) in &refs {
            let b_util = {
                let a = explain::attribute(r);
                (a.binding().name.clone(), a.binding().utilization)
            };
            if peak.as_ref().is_none_or(|(_, u, _)| b_util.1 > *u) {
                peak = Some((b_util.0, b_util.1, *n));
            }
        }
        curves.push(KneeCurve {
            verdict: CurveKnee {
                curve: label.to_string(),
                lo: lo0,
                hi: hi0,
                knee: explain::find_knee(&refs, threshold),
                peak: peak.expect("at least one probe per curve"),
            },
            probed,
        });
    }
    KneeOutcome {
        figure: figure.to_string(),
        curves,
        grid_jobs: preset.nodes.len() * ScalePreset::CURVES.len(),
    }
}

/// Executes one probe as a one-job sweep through the harness pool.
fn run_probe(
    harness: &Harness,
    figure: &str,
    curve: &str,
    spec: dbshare_sim::experiments::RunSpec,
    n: u16,
) -> RunReport {
    let sweep = Sweep {
        figure: figure.to_string(),
        grid: vec![CurveGrid {
            label: curve.to_string(),
            points: vec![(n, spec)],
        }],
    };
    let outcome = harness.run(vec![sweep]);
    outcome
        .results
        .into_iter()
        .next()
        .expect("a one-job sweep yields one result")
        .report
}

/// The adaptive probe sequence for one curve: hi endpoint first (the
/// cheap "no knee" exit), then the lo endpoint, then bisection until
/// the bracket is no wider than a quarter of the original span.
/// Returns the probed node counts in probe order; `saturated` is
/// called exactly once per returned entry.
fn probe_order(lo0: u16, hi0: u16, mut saturated: impl FnMut(u16) -> bool) -> Vec<u16> {
    let mut probed = vec![hi0];
    if !saturated(hi0) {
        return probed; // never saturates on this axis: one job
    }
    if lo0 >= hi0 {
        return probed;
    }
    probed.push(lo0);
    if saturated(lo0) {
        return probed; // saturated from the first probe
    }
    let min_gap = ((hi0 - lo0) / 4).max(1);
    let (mut lo, mut hi) = (lo0, hi0);
    while hi - lo > min_gap {
        let mid = lo + (hi - lo) / 2;
        probed.push(mid);
        if saturated(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    probed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsaturated_curve_costs_one_probe() {
        let probed = probe_order(50, 200, |_| false);
        assert_eq!(probed, [200]);
    }

    #[test]
    fn saturated_from_the_start_costs_two_probes() {
        let probed = probe_order(50, 200, |_| true);
        assert_eq!(probed, [200, 50]);
    }

    #[test]
    fn bisection_narrows_to_a_quarter_span_bracket() {
        // Saturation sets in above n=150: expect 200 (sat), 50 (not),
        // 125 (not), 162 (sat) — bracket (125, 162], 4 probes against
        // the fixed grid's 6 (3 node counts x 2 curves).
        let probed = probe_order(50, 200, |n| n > 150);
        assert_eq!(probed, [200, 50, 125, 162]);
    }

    #[test]
    fn degenerate_single_point_axis_terminates() {
        assert_eq!(probe_order(16, 16, |_| true), [16]);
        assert_eq!(probe_order(16, 16, |_| false), [16]);
    }
}
