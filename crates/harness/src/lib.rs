//! Parallel experiment orchestration for the reproduction.
//!
//! Each figure in the paper is a *sweep*: a handful of curves, each a
//! vector of `(nodes, RunSpec)` points. Every point is an independent,
//! fully deterministic single-threaded simulation, so parallelism
//! belongs *around* the engine, not inside it. This crate:
//!
//! 1. flattens sweeps into a flat list of [`Job`]s,
//! 2. executes them on a `std::thread` worker pool ([`pool`]) fed by a
//!    shared `Mutex<VecDeque<_>>` queue,
//! 3. reassembles the results into ordered [`Series`] that are
//!    **byte-identical to a serial run** for any worker count, and
//! 4. records per-job wall-clock and headline metrics into a
//!    `BENCH_repro.json` artifact ([`artifact`]) written with the
//!    in-repo dependency-free JSON value ([`json`]).
//!
//! ```no_run
//! use dbshare_harness::{Harness, Sweep};
//! use dbshare_sim::experiments::{fig41_grid, RunLength};
//!
//! let sweeps = vec![Sweep {
//!     figure: "fig4.1".into(),
//!     grid: fig41_grid(&[1, 2, 4], RunLength::quick()),
//! }];
//! let outcome = Harness::new().run(sweeps);
//! let artifact = outcome.artifact();
//! ```

pub mod alloc_track;
pub mod artifact;
pub mod json;
pub mod pool;

pub use alloc_track::CountingAlloc;
pub use artifact::{fingerprint, write_artifact, SCHEMA};
pub use json::Json;
pub use pool::{run_jobs, Job, JobResult};

pub use dbshare_sim::{Observations, Observe, TimelineWindow};

use dbshare_sim::experiments::{CurveGrid, Series};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One figure's worth of pending runs: a figure key plus the grid the
/// `sim::experiments::*_grid` presets produce.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Figure key, e.g. `"fig4.1"` — labels jobs and artifact records.
    pub figure: String,
    /// The figure's curves as pending `(nodes, spec)` points.
    pub grid: Vec<CurveGrid>,
}

/// A figure's reassembled result: the same `Vec<Series>` the serial
/// preset (`figNN(...)`) returns.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure key, copied from the input [`Sweep`].
    pub figure: String,
    /// Ordered curves, identical to [`run_grid_serial`] output.
    ///
    /// [`run_grid_serial`]: dbshare_sim::experiments::run_grid_serial
    pub series: Vec<Series>,
}

/// Everything a harness run produced: per-figure series in input
/// order, the flat per-job results, and run-wide bookkeeping.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// One entry per input sweep, in input order.
    pub figures: Vec<FigureSeries>,
    /// Per-job results in flattened input order.
    pub results: Vec<JobResult>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock seconds for the whole pool run.
    pub total_wall_secs: f64,
    /// Unix timestamp the run started, when the clock was readable.
    pub created_unix: Option<u64>,
}

impl Outcome {
    /// The series for `figure`, if it was part of the run.
    pub fn series_for(&self, figure: &str) -> Option<&[Series]> {
        self.figures
            .iter()
            .find(|f| f.figure == figure)
            .map(|f| f.series.as_slice())
    }

    /// Builds the `BENCH_repro.json` document for this run.
    pub fn artifact(&self) -> Json {
        artifact::artifact(
            &self.results,
            self.workers,
            self.total_wall_secs,
            self.created_unix,
        )
    }
}

/// The orchestrator: worker count and progress reporting policy.
#[derive(Debug, Clone)]
pub struct Harness {
    workers: usize,
    progress: bool,
    observe: Observe,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness using every available core and no progress output.
    pub fn new() -> Self {
        Harness {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            progress: false,
            observe: Observe::default(),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Enables per-job progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Sets the observation settings every job runs with. The default
    /// (all off) leaves the execution path identical to an unobserved
    /// run; results carry the collected [`Observations`] per job.
    pub fn observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Flattens `sweeps` into jobs, runs the pool, and reassembles
    /// ordered per-figure series. For any worker count the returned
    /// [`Outcome::figures`] equals what
    /// [`run_grid_serial`](dbshare_sim::experiments::run_grid_serial)
    /// produces on the same grids, point for point.
    pub fn run(&self, sweeps: Vec<Sweep>) -> Outcome {
        // Remember each sweep's shape (curve labels + point counts) so
        // the flat results can be folded back without guesswork.
        let mut jobs = Vec::new();
        let mut shapes: Vec<(String, Vec<(String, usize)>)> = Vec::new();
        for sweep in sweeps {
            let mut curves = Vec::new();
            for curve in sweep.grid {
                curves.push((curve.label.clone(), curve.points.len()));
                for (nodes, spec) in curve.points {
                    jobs.push(Job {
                        figure: sweep.figure.clone(),
                        curve: curve.label.clone(),
                        nodes,
                        spec,
                        observe: self.observe,
                    });
                }
            }
            shapes.push((sweep.figure, curves));
        }

        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .ok()
            .map(|d| d.as_secs());
        let started = Instant::now();
        let results = pool::run_jobs(jobs, self.workers, self.progress);
        let total_wall_secs = started.elapsed().as_secs_f64();

        // Fold the flat results back into figures: the pool preserves
        // input order, so a single cursor walk reproduces the shape.
        let mut cursor = results.iter();
        let figures = shapes
            .into_iter()
            .map(|(figure, curves)| FigureSeries {
                figure,
                series: curves
                    .into_iter()
                    .map(|(label, len)| Series {
                        label,
                        points: cursor
                            .by_ref()
                            .take(len)
                            .map(|r| (r.job.nodes, r.report.clone()))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();

        Outcome {
            figures,
            results,
            workers: self.workers,
            total_wall_secs,
            created_unix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_sim::experiments::{fig41_grid, RunLength};

    const TINY: RunLength = RunLength {
        warmup: 20,
        measured: 100,
    };

    #[test]
    fn outcome_preserves_sweep_and_curve_order() {
        let sweeps = vec![
            Sweep {
                figure: "figA".into(),
                grid: fig41_grid(&[1, 2], TINY),
            },
            Sweep {
                figure: "figB".into(),
                grid: fig41_grid(&[1], TINY),
            },
        ];
        let expected: Vec<(String, Vec<(String, usize)>)> = sweeps
            .iter()
            .map(|s| {
                (
                    s.figure.clone(),
                    s.grid
                        .iter()
                        .map(|c| (c.label.clone(), c.points.len()))
                        .collect(),
                )
            })
            .collect();
        let outcome = Harness::new().workers(3).run(sweeps);
        let shapes: Vec<(String, Vec<(String, usize)>)> = outcome
            .figures
            .iter()
            .map(|f| {
                (
                    f.figure.clone(),
                    f.series
                        .iter()
                        .map(|s| (s.label.clone(), s.points.len()))
                        .collect(),
                )
            })
            .collect();
        assert_eq!(shapes, expected);
        assert!(outcome.series_for("figB").is_some());
        assert!(outcome.series_for("figC").is_none());
        assert_eq!(
            outcome.results.len(),
            outcome
                .figures
                .iter()
                .flat_map(|f| &f.series)
                .map(|s| s.points.len())
                .sum::<usize>()
        );
    }
}
