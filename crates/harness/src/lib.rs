//! Parallel experiment orchestration for the reproduction.
//!
//! Each figure in the paper is a *sweep*: a handful of curves, each a
//! vector of `(nodes, RunSpec)` points. Every point is an independent,
//! fully deterministic single-threaded simulation, so parallelism
//! belongs *around* the engine, not inside it. This crate:
//!
//! 1. flattens sweeps into a flat list of [`Job`]s,
//! 2. executes them on a `std::thread` worker pool ([`pool`]) fed by a
//!    shared `Mutex<VecDeque<_>>` queue,
//! 3. reassembles the results into ordered [`Series`] that are
//!    **byte-identical to a serial run** for any worker count, and
//! 4. records per-job wall-clock and headline metrics into a
//!    `BENCH_repro.json` artifact ([`artifact`]) written with the
//!    in-repo dependency-free JSON value ([`json`]).
//!
//! ```no_run
//! use dbshare_harness::{Harness, Sweep};
//! use dbshare_sim::experiments::{fig41_grid, RunLength};
//!
//! let sweeps = vec![Sweep {
//!     figure: "fig4.1".into(),
//!     grid: fig41_grid(&[1, 2, 4], RunLength::quick()),
//! }];
//! let outcome = Harness::new().run(sweeps);
//! let artifact = outcome.artifact();
//! ```

pub mod alloc_track;
pub mod artifact;
pub mod knee;
pub mod pool;
pub mod rss;
pub mod ticker;

pub use alloc_track::CountingAlloc;
pub use artifact::{fingerprint, write_artifact, SCHEMA};
pub use knee::{run_knee, KneeOutcome};
pub use ticker::Ticker;
// The JSON value moved into the experiment store crate (the store is
// the lowest persistence layer now); re-exported here so harness users
// keep their `dbshare_harness::{json, Json}` paths.
pub use dbshare_expstore::json::{self, Json};
pub use dbshare_expstore::{Provenance, Record, Store};
pub use pool::{run_jobs, Job, JobResult};

pub use dbshare_sim::{Observations, Observe, TimelineWindow};

use dbshare_sim::experiments::{CurveGrid, Series};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One figure's worth of pending runs: a figure key plus the grid the
/// `sim::experiments::*_grid` presets produce.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Figure key, e.g. `"fig4.1"` — labels jobs and artifact records.
    pub figure: String,
    /// The figure's curves as pending `(nodes, spec)` points.
    pub grid: Vec<CurveGrid>,
}

/// A figure's reassembled result: the same `Vec<Series>` the serial
/// preset (`figNN(...)`) returns.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure key, copied from the input [`Sweep`].
    pub figure: String,
    /// Ordered curves, identical to [`run_grid_serial`] output.
    ///
    /// [`run_grid_serial`]: dbshare_sim::experiments::run_grid_serial
    pub series: Vec<Series>,
}

/// Everything a harness run produced: per-figure series in input
/// order, the flat per-job results, and run-wide bookkeeping.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// One entry per input sweep, in input order.
    pub figures: Vec<FigureSeries>,
    /// Per-job results in flattened input order.
    pub results: Vec<JobResult>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Engine threads each job ran with (`RunControl::cores`).
    pub cores: u32,
    /// Logical CPUs of the host that executed the run (0 when the
    /// count was unreadable).
    pub host_cpus: u32,
    /// Wall-clock seconds for the whole pool run.
    pub total_wall_secs: f64,
    /// Unix timestamp the run started, when the clock was readable.
    pub created_unix: Option<u64>,
    /// Opaque id grouping this run's rows in the experiment store
    /// (unique per run within a machine: timestamp, pid, sequence).
    pub run_id: String,
}

impl Outcome {
    /// The series for `figure`, if it was part of the run.
    pub fn series_for(&self, figure: &str) -> Option<&[Series]> {
        self.figures
            .iter()
            .find(|f| f.figure == figure)
            .map(|f| f.series.as_slice())
    }

    /// Builds the `BENCH_repro.json` document for this run.
    pub fn artifact(&self) -> Json {
        artifact::artifact(
            &self.results,
            self.workers,
            self.host_cpus,
            self.total_wall_secs,
            self.created_unix,
        )
    }

    /// The run's results as experiment-store rows: one [`Record`] per
    /// job, stamped with this run's id and the caller's build
    /// provenance. This is what [`Harness`] appends to the store after
    /// each grid run.
    pub fn store_records(&self, provenance: &Provenance) -> Vec<Record> {
        self.results
            .iter()
            .map(|res| {
                // Attribution is a pure function of the (deterministic)
                // report, so persisting it adds no run-order noise.
                let a = dbshare_sim::explain::attribute(&res.report);
                let find = |name: &str| {
                    a.resources
                        .iter()
                        .find(|r| r.name == name)
                        .map_or(0.0, |r| r.utilization)
                };
                let disk_max = a
                    .resources
                    .iter()
                    .filter(|r| r.name.starts_with("disk:"))
                    .map(|r| r.utilization)
                    .fold(0.0, f64::max);
                Record {
                    run: self.run_id.clone(),
                    created_unix: self.created_unix.unwrap_or(0),
                    provenance: provenance.clone(),
                    figure: res.job.figure.clone(),
                    curve: res.job.curve.clone(),
                    nodes: res.job.nodes,
                    seed: res.job.spec.seed(),
                    cores: res.job.cores,
                    host_cpus: self.host_cpus,
                    config_fingerprint: fingerprint(&res.job.spec),
                    metric_fingerprint: res.report.metric_fingerprint(),
                    wall_secs: res.wall_secs,
                    events_processed: res.report.events_processed,
                    allocs_per_event: res.report.profile.allocs_per_event(),
                    mean_response_ms: res.report.mean_response_ms,
                    throughput_tps: res.report.throughput_tps,
                    peak_rss_mb: res.peak_rss_mb,
                    binding: Some(a.binding().name.clone()),
                    binding_utilization: Some(a.binding().utilization),
                    next_constraint: a.next().map(|n| n.name.clone()),
                    next_utilization: a.next().map(|n| n.utilization),
                    utils: Some(dbshare_expstore::ResourceUtils {
                        cpu: find("cpu"),
                        coupling: find("gem").max(find("lock-engine")),
                        network: find("network"),
                        disk: disk_max,
                        log: find("log"),
                    }),
                }
            })
            .collect()
    }
}

/// Where (and as whom) a harness persists its runs: the store file to
/// append to and the build provenance to stamp every row with.
#[derive(Debug, Clone)]
pub struct History {
    /// The store file (conventionally `exphistory/history.jsonl`).
    pub path: PathBuf,
    /// Build provenance recorded on every row.
    pub provenance: Provenance,
}

/// The orchestrator: worker count, progress reporting, and
/// persistence policy.
#[derive(Debug, Clone)]
pub struct Harness {
    workers: usize,
    cores: u32,
    progress: bool,
    observe: Observe,
    history: Option<History>,
    ticker: Option<std::time::Duration>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness using every available core, no progress output, and
    /// no persistence.
    pub fn new() -> Self {
        Harness {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cores: 1,
            progress: false,
            observe: Observe::default(),
            history: None,
            ticker: None,
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the engine thread count every job runs with (clamped to at
    /// least 1; 1 = the serial event loop). Results are bit-identical
    /// at every setting — only host wall-clock changes — so the
    /// recorded `cores` value exists to keep perf comparisons
    /// apples-to-apples, not to distinguish outputs.
    pub fn cores(mut self, n: u32) -> Self {
        self.cores = n.max(1);
        self
    }

    /// Enables per-job progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Sets the observation settings every job runs with. The default
    /// (all off) leaves the execution path identical to an unobserved
    /// run; results carry the collected [`Observations`] per job.
    pub fn observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Enables the live progress ticker: one stderr line every
    /// `every`, sampled by a dedicated thread from observer-only
    /// gauges ([`ticker`]). Results stay bit-identical — the ticker
    /// never writes into a simulation and prints nothing to stdout.
    pub fn ticker(mut self, every: std::time::Duration) -> Self {
        self.ticker = Some(every);
        self
    }

    /// Persists every run to the experiment store: after each grid
    /// run, one [`Record`] per job is appended to `history.path`. A
    /// failed append warns on stderr rather than discarding a
    /// completed run's results.
    pub fn history(mut self, history: History) -> Self {
        self.history = Some(history);
        self
    }

    /// Flattens `sweeps` into jobs, runs the pool, and reassembles
    /// ordered per-figure series. For any worker count the returned
    /// [`Outcome::figures`] equals what
    /// [`run_grid_serial`](dbshare_sim::experiments::run_grid_serial)
    /// produces on the same grids, point for point.
    pub fn run(&self, sweeps: Vec<Sweep>) -> Outcome {
        // Remember each sweep's shape (curve labels + point counts) so
        // the flat results can be folded back without guesswork.
        let mut jobs = Vec::new();
        let mut shapes: Vec<(String, Vec<(String, usize)>)> = Vec::new();
        for sweep in sweeps {
            let mut curves = Vec::new();
            for curve in sweep.grid {
                curves.push((curve.label.clone(), curve.points.len()));
                for (nodes, spec) in curve.points {
                    jobs.push(Job {
                        figure: sweep.figure.clone(),
                        curve: curve.label.clone(),
                        nodes,
                        spec,
                        observe: self.observe,
                        cores: self.cores,
                    });
                }
            }
            shapes.push((sweep.figure, curves));
        }

        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .ok()
            .map(|d| d.as_secs());
        let started = Instant::now();
        let ticker = self.ticker.map(|every| Ticker::spawn(every, jobs.len()));
        let results = pool::run_jobs_ticked(
            jobs,
            self.workers,
            self.progress,
            ticker.as_ref().map(|t| t.state().as_ref()),
        );
        drop(ticker); // stop and join the sampler before reporting
        let total_wall_secs = started.elapsed().as_secs_f64();

        // Fold the flat results back into figures: the pool preserves
        // input order, so a single cursor walk reproduces the shape.
        let mut cursor = results.iter();
        let figures = shapes
            .into_iter()
            .map(|(figure, curves)| FigureSeries {
                figure,
                series: curves
                    .into_iter()
                    .map(|(label, len)| Series {
                        label,
                        points: cursor
                            .by_ref()
                            .take(len)
                            .map(|r| (r.job.nodes, r.report.clone()))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();

        // Run ids only need to be unique per machine: timestamp for
        // humans, pid + process-wide sequence for uniqueness when runs
        // share a second (back-to-back invocations, test suites).
        static RUN_SEQ: AtomicU64 = AtomicU64::new(0);
        let run_id = format!(
            "r{}-{}-{}",
            created_unix.unwrap_or(0),
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        );

        let outcome = Outcome {
            figures,
            results,
            workers: self.workers,
            cores: self.cores,
            host_cpus: std::thread::available_parallelism().map_or(0, |n| n.get()) as u32,
            total_wall_secs,
            created_unix,
            run_id,
        };

        if let Some(history) = &self.history {
            // Append after every grid run. Warnings go to stderr so
            // stdout stays byte-identical for any harness settings.
            let store = Store::new(&history.path);
            match store.append(&outcome.store_records(&history.provenance)) {
                Ok(None) => {}
                Ok(Some(recovery)) => {
                    eprintln!("history {}: {recovery}", history.path.display());
                }
                Err(e) => {
                    eprintln!(
                        "history {}: cannot append run ({e}); results not persisted",
                        history.path.display()
                    );
                }
            }
        }

        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_sim::experiments::{fig41_grid, RunLength};

    const TINY: RunLength = RunLength {
        warmup: 20,
        measured: 100,
    };

    #[test]
    fn outcome_preserves_sweep_and_curve_order() {
        let sweeps = vec![
            Sweep {
                figure: "figA".into(),
                grid: fig41_grid(&[1, 2], TINY),
            },
            Sweep {
                figure: "figB".into(),
                grid: fig41_grid(&[1], TINY),
            },
        ];
        let expected: Vec<(String, Vec<(String, usize)>)> = sweeps
            .iter()
            .map(|s| {
                (
                    s.figure.clone(),
                    s.grid
                        .iter()
                        .map(|c| (c.label.clone(), c.points.len()))
                        .collect(),
                )
            })
            .collect();
        let outcome = Harness::new().workers(3).run(sweeps);
        let shapes: Vec<(String, Vec<(String, usize)>)> = outcome
            .figures
            .iter()
            .map(|f| {
                (
                    f.figure.clone(),
                    f.series
                        .iter()
                        .map(|s| (s.label.clone(), s.points.len()))
                        .collect(),
                )
            })
            .collect();
        assert_eq!(shapes, expected);
        assert!(outcome.series_for("figB").is_some());
        assert!(outcome.series_for("figC").is_none());
        assert_eq!(
            outcome.results.len(),
            outcome
                .figures
                .iter()
                .flat_map(|f| &f.series)
                .map(|s| s.points.len())
                .sum::<usize>()
        );
    }
}
