//! The worker pool: executes flattened [`Job`]s on plain
//! `std::thread` workers fed from a shared queue.
//!
//! No work-stealing, no dependencies — a `Mutex<VecDeque<_>>` is the
//! queue and an `mpsc` channel carries results back. Each job is a
//! self-contained deterministic simulation, so the pool only has to
//! get *ordering* right: jobs are tagged with their flattened index on
//! the way in and dropped into index-addressed slots on the way out,
//! which makes the returned vector identical for any worker count.

use crate::alloc_track;
use crate::ticker::TickerState;
use dbshare_sim::experiments::RunSpec;
use dbshare_sim::{Observations, Observe, RunReport};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// One independent unit of work: a single simulation run plus enough
/// labelling to route its result back into the right figure and curve.
#[derive(Debug, Clone)]
pub struct Job {
    /// Figure key, e.g. `"fig4.1"`.
    pub figure: String,
    /// Curve label as in the paper's legend.
    pub curve: String,
    /// Swept node count (the x-axis value).
    pub nodes: u16,
    /// The full run description; executing it is the actual work.
    pub spec: RunSpec,
    /// Observation settings for the run. The default (all off) keeps
    /// the execution path identical to an unobserved run.
    pub observe: Observe,
    /// Engine threads for the run (`RunControl::cores`; 1 = serial).
    /// Results are bit-identical at every setting.
    pub cores: u32,
}

/// A completed job: the input [`Job`], the simulator's report, and the
/// host wall-clock the run took.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: Job,
    /// The simulation's full metrics report.
    pub report: RunReport,
    /// Timeline windows and trace events, empty unless the job's
    /// [`Observe`] requested them.
    pub observations: Observations,
    /// Host wall-clock seconds spent executing the job.
    pub wall_secs: f64,
    /// Process peak RSS in MiB sampled right after the job finished
    /// (`None` off Linux). Process-wide high-water mark: an
    /// upper-bound estimate for this job, not an isolated measurement.
    pub peak_rss_mb: Option<f64>,
}

/// Runs `jobs` on `workers` threads and returns the results **in input
/// order**, regardless of completion order or worker count.
///
/// `workers` is clamped to `1..=jobs.len()`. With `progress` set, one
/// line per finished job goes to stderr (stdout is untouched, so
/// captured figure output stays byte-identical to a serial run).
pub fn run_jobs(jobs: Vec<Job>, workers: usize, progress: bool) -> Vec<JobResult> {
    run_jobs_ticked(jobs, workers, progress, None)
}

/// [`run_jobs`] with an optional live-progress registry: when `ticker`
/// is set, each worker registers a [`ProgressGauge`] per job for the
/// sampling thread to read and retires it when the job finishes. The
/// gauge is observer-only, so results stay bit-identical either way.
///
/// [`ProgressGauge`]: dbshare_sim::ProgressGauge
pub fn run_jobs_ticked(
    jobs: Vec<Job>,
    workers: usize,
    progress: bool,
    ticker: Option<&TickerState>,
) -> Vec<JobResult> {
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);
    let queue: Mutex<VecDeque<(usize, Job)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, JobResult)>();

    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                // Pop under the lock, run outside it.
                let next = queue.lock().expect("job queue poisoned").pop_front();
                let Some((index, job)) = next else { break };
                // Jobs run start-to-finish on this thread, so the
                // thread-local allocation counters delimit exactly this
                // job's allocator traffic (zero unless the binary
                // installed `CountingAlloc`).
                let allocs0 = alloc_track::thread_allocs();
                let bytes0 = alloc_track::thread_alloc_bytes();
                let gauge = ticker.map(|t| t.register(format!("{} n={}", job.curve, job.nodes)));
                let start = Instant::now();
                let (mut report, observations) =
                    if gauge.is_some() || job.observe.enabled() || job.cores > 1 {
                        job.spec
                            .execute_instrumented(job.cores, job.observe, gauge.clone())
                    } else {
                        (job.spec.execute(), Observations::default())
                    };
                let wall_secs = start.elapsed().as_secs_f64();
                if let (Some(t), Some(gauge)) = (ticker, &gauge) {
                    t.finish(gauge, report.events_processed);
                }
                report.profile.host_allocs = alloc_track::thread_allocs() - allocs0;
                report.profile.host_alloc_bytes = alloc_track::thread_alloc_bytes() - bytes0;
                let result = JobResult {
                    job,
                    report,
                    observations,
                    wall_secs,
                    peak_rss_mb: crate::rss::peak_rss_mb(),
                };
                if tx.send((index, result)).is_err() {
                    break; // receiver gone: nothing left to report to
                }
            });
        }
        // Drop the original sender so `rx` ends once every worker is
        // done, then collect on this thread while the workers run.
        drop(tx);

        let mut slots: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();
        let mut done = 0usize;
        for (index, result) in rx {
            done += 1;
            if progress {
                eprintln!(
                    "[{done}/{total}] {} | {} | n={} ({:.2}s)",
                    result.job.figure, result.job.curve, result.job.nodes, result.wall_secs
                );
            }
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every queued job reports exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_sim::experiments::{DebitCreditRun, RunLength, RunSpec};

    const TINY: RunLength = RunLength {
        warmup: 20,
        measured: 100,
    };

    fn tiny_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                let nodes = (i % 3 + 1) as u16;
                Job {
                    figure: "figT".into(),
                    curve: format!("curve{}", i % 2),
                    nodes,
                    spec: RunSpec::DebitCredit(DebitCreditRun::baseline(nodes, TINY)),
                    observe: Observe::default(),
                    cores: 1,
                }
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let jobs = tiny_jobs(7);
        let results = run_jobs(jobs.clone(), 4, false);
        assert_eq!(results.len(), jobs.len());
        for (job, result) in jobs.iter().zip(&results) {
            assert_eq!(result.job.curve, job.curve);
            assert_eq!(result.job.nodes, job.nodes);
            assert_eq!(result.report.nodes, job.nodes);
            assert!(result.wall_secs >= 0.0);
        }
    }

    #[test]
    fn empty_job_list_returns_immediately() {
        assert!(run_jobs(Vec::new(), 8, false).is_empty());
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let results = run_jobs(tiny_jobs(2), 64, false);
        assert_eq!(results.len(), 2);
    }
}
