//! Peak resident-set-size sampling.
//!
//! Reads the process high-water mark (`VmHWM`) from
//! `/proc/self/status` — no dependencies, Linux only; other platforms
//! report `None` and every consumer treats the figure as optional.
//! The value is process-wide, so per-job samples taken after a job
//! finishes are an *upper-bound estimate* for that job (earlier jobs
//! in the same process may have set the mark). That is exactly the
//! number the scale scenarios budget against: what the whole run
//! needed from the machine.

/// Process peak RSS in mebibytes, if the platform exposes it.
pub fn peak_rss_mb() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        // Format: "VmHWM:     123456 kB"
        let kb: f64 = line
            .strip_prefix("VmHWM:")?
            .trim()
            .strip_suffix("kB")?
            .trim()
            .parse()
            .ok()?;
        Some(kb / 1024.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Renders an optional RSS sample for tables: the value in MiB with
/// one decimal, or `"n/a"` when the platform exposed none. A missing
/// sample must never render as `0` — zero is a claim, `n/a` is the
/// truth off Linux.
pub fn format_mb(mb: Option<f64>) -> String {
    match mb {
        Some(mb) => format!("{mb:.1}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        let mb = peak_rss_mb().expect("VmHWM present on Linux");
        assert!(mb > 0.0, "{mb}");
    }

    #[test]
    fn missing_sample_formats_as_na_not_zero() {
        assert_eq!(format_mb(None), "n/a");
        assert_eq!(format_mb(Some(812.04)), "812.0");
    }
}
