//! The live progress ticker: a sampling thread that reports what a
//! long harness run is doing, without touching it.
//!
//! The engine publishes coarse counters into a per-job
//! [`ProgressGauge`] (relaxed atomic stores every few thousand
//! events); this module's thread samples those gauges on a wall-clock
//! cadence and prints one stderr line per tick — jobs done/running,
//! aggregate event rate, simulated time reached, an ETA from committed
//! transactions, current peak RSS, and pipeline-lane occupancy for
//! `--cores > 1` jobs. Strictly observer-only: the sampler never
//! writes into the simulation, and `sim/tests/explain.rs` pins that a
//! gauge-carrying run reports bit-identical metrics. Everything goes
//! to stderr, so captured stdout stays byte-identical with the ticker
//! on or off.

use crate::rss;
use dbshare_sim::ProgressGauge;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The registry shared between the pool's workers (who register a
/// gauge per running job) and the sampling thread (who only reads).
#[derive(Debug)]
pub struct TickerState {
    jobs_total: usize,
    jobs_done: AtomicUsize,
    /// Events from *finished* jobs; running jobs are sampled live.
    events_done: AtomicU64,
    active: Mutex<Vec<(String, Arc<ProgressGauge>)>>,
    stop: AtomicBool,
    started: Instant,
}

impl TickerState {
    fn new(jobs_total: usize) -> Self {
        TickerState {
            jobs_total,
            jobs_done: AtomicUsize::new(0),
            events_done: AtomicU64::new(0),
            active: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    /// Registers a job as running and returns the gauge its engine
    /// should publish into.
    pub fn register(&self, label: String) -> Arc<ProgressGauge> {
        let gauge = Arc::new(ProgressGauge::default());
        if let Ok(mut active) = self.active.lock() {
            active.push((label, gauge.clone()));
        }
        gauge
    }

    /// Retires a finished job's gauge, folding its final event count
    /// into the completed total.
    pub fn finish(&self, gauge: &Arc<ProgressGauge>, events_processed: u64) {
        if let Ok(mut active) = self.active.lock() {
            active.retain(|(_, g)| !Arc::ptr_eq(g, gauge));
        }
        self.events_done
            .fetch_add(events_processed, Ordering::Relaxed);
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// One tick's stderr line, from the current counters.
    fn line(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let done = self.jobs_done.load(Ordering::Relaxed);
        let snaps: Vec<(String, dbshare_sim::ProgressSnapshot)> = self
            .active
            .lock()
            .map(|active| {
                active
                    .iter()
                    .map(|(label, g)| (label.clone(), g.snapshot()))
                    .collect()
            })
            .unwrap_or_default();

        let live_events: u64 = snaps.iter().map(|(_, s)| s.events).sum();
        let events = self.events_done.load(Ordering::Relaxed) + live_events;
        let rate = events as f64 / elapsed;
        let sim_max = snaps.iter().map(|(_, s)| s.sim_seconds).fold(0.0, f64::max);
        let live_fraction: f64 = snaps.iter().map(|(_, s)| s.fraction()).sum();
        let fraction = if self.jobs_total == 0 {
            1.0
        } else {
            ((done as f64 + live_fraction) / self.jobs_total as f64).min(1.0)
        };

        let mut line = format!(
            "[tick {:>5.0}s] jobs {done}/{} ({} running) | {:.1}M ev/s | sim t={sim_max:.1}s",
            elapsed,
            self.jobs_total,
            snaps.len(),
            rate / 1e6,
        );
        if fraction > 0.0 && fraction < 1.0 {
            let eta = elapsed * (1.0 - fraction) / fraction;
            line.push_str(&format!(" | {:.0}% eta {eta:.0}s", fraction * 100.0));
        } else {
            line.push_str(&format!(" | {:.0}%", fraction * 100.0));
        }
        line.push_str(&format!(" | rss {} MB", rss::format_mb(rss::peak_rss_mb())));

        // Pipeline lanes (present only for --cores > 1 jobs): the peak
        // occupancy per stage across running jobs, as a fill percent.
        let mut lanes: Vec<(&'static str, f64, u64)> = Vec::new();
        for (_, snap) in &snaps {
            for (label, stats) in &snap.lanes {
                match lanes.iter_mut().find(|(l, _, _)| l == label) {
                    Some((_, occ, stalls)) => {
                        *occ = occ.max(stats.occupancy());
                        *stalls += stats.stalls;
                    }
                    None => lanes.push((label, stats.occupancy(), stats.stalls)),
                }
            }
        }
        for (label, occ, stalls) in lanes {
            line.push_str(&format!(" | lane {label} occ {occ:.1}"));
            if stalls > 0 {
                line.push_str(&format!(" stalls {stalls}"));
            }
        }
        line
    }
}

/// The sampling thread. Create with [`Ticker::spawn`]; dropping it
/// stops and joins the thread (the harness drops it right after the
/// pool drains, so no tick outlives the run).
#[derive(Debug)]
pub struct Ticker {
    state: Arc<TickerState>,
    handle: Option<JoinHandle<()>>,
}

impl Ticker {
    /// Spawns the sampler: one stderr line every `every`, until
    /// dropped. `jobs_total` scales the ETA.
    pub fn spawn(every: Duration, jobs_total: usize) -> Ticker {
        let state = Arc::new(TickerState::new(jobs_total));
        let sampler = state.clone();
        let handle = std::thread::spawn(move || {
            // Sleep in short slices so a finished run stops the ticker
            // promptly instead of waiting out a whole interval. The
            // slice scales with the interval (bounded at 250 ms of
            // shutdown latency) so a single-CPU host isn't preempted
            // 20 times a second for a slow tick cadence.
            let slice = (every / 4)
                .clamp(Duration::from_millis(50), Duration::from_millis(250))
                .min(every);
            let mut next = Instant::now() + every;
            while !sampler.stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                if sampler.stop.load(Ordering::Relaxed) {
                    break;
                }
                if Instant::now() >= next {
                    next += every;
                    eprintln!("{}", sampler.line());
                }
            }
        });
        Ticker {
            state,
            handle: Some(handle),
        }
    }

    /// The shared registry, for the pool's workers.
    pub fn state(&self) -> &Arc<TickerState> {
        &self.state
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_finish_and_line_track_job_lifecycle() {
        let state = TickerState::new(2);
        let gauge = state.register("PCL/NOFORCE n=64".into());
        gauge.snapshot(); // the sampler's read path works on a fresh gauge
        let line = state.line();
        assert!(line.contains("jobs 0/2 (1 running)"), "{line}");
        state.finish(&gauge, 1_000);
        let line = state.line();
        assert!(line.contains("jobs 1/2 (0 running)"), "{line}");
        assert!(line.contains("rss "), "{line}");
    }

    #[test]
    fn ticker_stops_on_drop() {
        let ticker = Ticker::spawn(Duration::from_secs(3600), 1);
        let state = ticker.state().clone();
        drop(ticker);
        assert!(state.stop.load(Ordering::Relaxed));
    }
}
