//! Allocation-regression test: the measured phase of the engine must
//! stay (near-)allocation-free. This test binary installs the counting
//! allocator, runs one quick figure through the job pool, and pins the
//! allocations-per-event ratio under a ceiling with plenty of headroom
//! over today's number but far below where it was before buffer
//! pooling — a hot-path change that reintroduces per-transaction or
//! per-message allocation trips it immediately.
//!
//! Allocation counts are deterministic for a given build (the
//! simulation is single-threaded per job and allocator traffic is
//! counted thread-locally), so the ceiling does not flake.

#[global_allocator]
static ALLOC: dbshare_harness::CountingAlloc = dbshare_harness::CountingAlloc;

use dbshare_harness::{Harness, Sweep};
use dbshare_sim::experiments::{fig41_grid, RunLength};

/// Generous ceiling: the release build measures ~0.03 allocs/event on
/// this figure; before the pooling work it was ~0.47.
const MAX_ALLOCS_PER_EVENT: f64 = 0.10;

#[test]
fn steady_state_allocations_stay_bounded() {
    let sweeps = vec![Sweep {
        figure: "fig4.1".into(),
        grid: fig41_grid(&[2], RunLength::quick()),
    }];
    let outcome = Harness::new().workers(1).run(sweeps);
    assert!(!outcome.results.is_empty());

    let mut allocs = 0u64;
    let mut events = 0u64;
    for r in &outcome.results {
        allocs += r.report.profile.host_allocs;
        events += r.report.events_processed;
    }
    // The allocator is installed in this binary, so the counters must
    // actually move — engine construction alone allocates.
    assert!(allocs > 0, "counting allocator not active");
    assert!(events > 0);

    let per_event = allocs as f64 / events as f64;
    assert!(
        per_event <= MAX_ALLOCS_PER_EVENT,
        "allocation regression: {per_event:.4} allocs/event over {events} events \
         (ceiling {MAX_ALLOCS_PER_EVENT}) — a hot path started allocating"
    );
}
