//! Cross-`cores` invariance at the harness level, mirroring the
//! cross-`workers` determinism suite: a grid run executed with the
//! pipeline engine (`Harness::cores(n)`, n > 1) must produce series,
//! store rows, and metric fingerprints bit-identical to the serial
//! engine — only host timing may differ.

use dbshare_harness::{Harness, Json, Sweep};
use dbshare_sim::experiments::{fig41_grid, RunLength};

const TINY: RunLength = RunLength {
    warmup: 20,
    measured: 100,
};

fn sweeps() -> Vec<Sweep> {
    vec![Sweep {
        figure: "fig41".into(),
        grid: fig41_grid(&[1, 2], TINY),
    }]
}

/// Strips the host-dependent fields from an artifact document so the
/// rest can be compared bit-for-bit — same normalization as the
/// cross-`workers` determinism test, plus `cores` itself (it is the
/// variable under test) and the allocation counters (the pipeline
/// stages allocate channel buffers that never reach any metric).
fn normalize(doc: &Json) -> Json {
    fn walk(v: &Json) -> Json {
        match v {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(
                            k.as_str(),
                            "wall_secs"
                                | "total_wall_secs"
                                | "created_unix"
                                | "workers"
                                | "host_cpus"
                                | "cores"
                                | "events_per_sec"
                                | "total_allocs"
                                | "host_allocs"
                                | "host_alloc_bytes"
                                | "allocs_per_event"
                                | "peak_rss_mb"
                        )
                    })
                    .map(|(k, v)| (k.clone(), walk(v)))
                    .collect(),
            ),
            Json::Arr(xs) => Json::Arr(xs.iter().map(walk).collect()),
            other => other.clone(),
        }
    }
    walk(doc)
}

#[test]
fn grid_runs_agree_across_engine_core_counts() {
    let base = Harness::new().workers(2).cores(1).run(sweeps());
    for cores in [2, 4] {
        let got = Harness::new().workers(2).cores(cores).run(sweeps());

        // The reassembled series (every metric of every point) must be
        // bit-identical: RunReport's Debug rendering shows exact values.
        assert_eq!(
            format!("{:?}", got.figures),
            format!("{:?}", base.figures),
            "series drifted at cores={cores}"
        );

        // Store rows agree on everything simulated; `cores` itself is
        // the recorded engine setting.
        let prov = Default::default();
        let base_rows = base.store_records(&prov);
        let got_rows = got.store_records(&prov);
        assert_eq!(base_rows.len(), got_rows.len());
        for (x, y) in base_rows.iter().zip(&got_rows) {
            assert_eq!(x.cores, 1);
            assert_eq!(y.cores, cores, "row must record the engine cores");
            assert_eq!(x.config_fingerprint, y.config_fingerprint);
            assert_eq!(
                x.metric_fingerprint, y.metric_fingerprint,
                "metric fingerprint drifted at cores={cores}"
            );
            assert_eq!(x.events_processed, y.events_processed);
            assert_eq!(x.mean_response_ms.to_bits(), y.mean_response_ms.to_bits());
            assert_eq!(x.throughput_tps.to_bits(), y.throughput_tps.to_bits());
        }

        // The artifacts agree byte-for-byte once host-dependent fields
        // (and the recorded cores value itself) are stripped.
        assert_eq!(
            normalize(&base.artifact()).render(),
            normalize(&got.artifact()).render(),
            "artifact content drifted at cores={cores}"
        );
    }
}
