//! The harness's core guarantee, regression-tested: results are
//! identical to a serial run for ANY worker count, and the JSON
//! artifact round-trips through the crate's own parser.

use dbshare_harness::{Harness, Json, Sweep};
use dbshare_sim::experiments::{fig41_grid, fig47_grid, run_grid_serial, RunLength};

/// Short but non-degenerate: long enough for lock waits and buffer
/// misses to occur, short enough to keep the suite fast.
const TINY: RunLength = RunLength {
    warmup: 30,
    measured: 150,
};

fn sweeps() -> Vec<Sweep> {
    vec![
        Sweep {
            figure: "fig41".into(),
            grid: fig41_grid(&[1, 2], TINY),
        },
        Sweep {
            figure: "fig47".into(),
            grid: fig47_grid(&[1], TINY),
        },
    ]
}

#[test]
fn one_worker_and_many_workers_match_the_serial_run_exactly() {
    // Serial reference: the exact code path `run_grid_serial` uses.
    let serial: Vec<String> = sweeps()
        .into_iter()
        .map(|s| format!("{:?}", run_grid_serial(s.grid)))
        .collect();

    for workers in [1usize, 4, 13] {
        let outcome = Harness::new().workers(workers).run(sweeps());
        let parallel: Vec<String> = outcome
            .figures
            .iter()
            .map(|f| format!("{:?}", f.series))
            .collect();
        // Debug-string comparison covers every RunReport field (and is
        // NaN-proof, unlike f64 equality).
        assert_eq!(
            parallel, serial,
            "results diverged from the serial run at {workers} workers"
        );
    }
}

#[test]
fn artifact_round_trips_through_the_crates_own_parser() {
    let outcome = Harness::new().workers(3).run(sweeps());
    let doc = outcome.artifact();
    let text = doc.render();
    let parsed = Json::parse(&text).expect("artifact parses back");
    assert_eq!(parsed, doc, "render → parse is not the identity");

    // One record per job, each carrying the audit fields.
    let records = parsed
        .get("records")
        .and_then(Json::as_arr)
        .expect("records array");
    assert_eq!(records.len(), outcome.results.len());
    for (record, result) in records.iter().zip(&outcome.results) {
        assert_eq!(
            record.get("figure").and_then(Json::as_str),
            Some(result.job.figure.as_str())
        );
        assert_eq!(
            record.get("seed").and_then(Json::as_f64),
            Some(result.job.spec.seed() as f64)
        );
        assert!(record.get("wall_secs").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(
            record.get("config_fingerprint").and_then(Json::as_str),
            Some(dbshare_harness::fingerprint(&result.job.spec).as_str())
        );
    }
}

#[test]
fn artifacts_from_different_worker_counts_agree_on_everything_but_timing() {
    let strip_timing = |doc: &Json| -> Json {
        fn walk(v: &Json) -> Json {
            match v {
                Json::Obj(fields) => Json::Obj(
                    fields
                        .iter()
                        .filter(|(k, _)| {
                            !matches!(
                                k.as_str(),
                                "wall_secs"
                                    | "total_wall_secs"
                                    | "created_unix"
                                    | "workers"
                                    | "events_per_sec"
                                    | "peak_rss_mb"
                            )
                        })
                        .map(|(k, v)| (k.clone(), walk(v)))
                        .collect(),
                ),
                Json::Arr(xs) => Json::Arr(xs.iter().map(walk).collect()),
                other => other.clone(),
            }
        }
        walk(doc)
    };
    let a = Harness::new().workers(1).run(sweeps()).artifact();
    let b = Harness::new().workers(8).run(sweeps()).artifact();
    assert_eq!(strip_timing(&a), strip_timing(&b));
}
