//! The persistence hook: each grid run appends one store row per job,
//! and the simulated content of those rows (fingerprints, events,
//! metrics — everything except host timing) is identical for any
//! worker count.

use dbshare_harness::{Harness, History, Provenance, Store, Sweep};
use dbshare_sim::experiments::{fig41_grid, RunLength};
use std::path::PathBuf;

const TINY: RunLength = RunLength {
    warmup: 20,
    measured: 100,
};

fn sweeps() -> Vec<Sweep> {
    vec![Sweep {
        figure: "fig41".into(),
        grid: fig41_grid(&[1, 2], TINY),
    }]
}

fn temp_store(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "dbshare-harness-history-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn each_run_appends_rows_that_agree_across_worker_counts() {
    let path = temp_store("append.jsonl");
    let provenance = Provenance {
        git_revision: "test-rev".into(),
        rustc_version: "test-rustc".into(),
        build_profile: "test".into(),
    };
    let history = History {
        path: path.clone(),
        provenance,
    };

    let first = Harness::new()
        .workers(1)
        .history(history.clone())
        .run(sweeps());
    let second = Harness::new().workers(4).history(history).run(sweeps());
    assert_ne!(first.run_id, second.run_id, "run ids must not collide");

    let read = Store::new(&path).read().expect("store reads back");
    std::fs::remove_file(&path).ok();
    assert!(read.recovery.is_none());
    assert_eq!(read.records.len(), first.results.len() * 2);

    let (a, b) = read.records.split_at(first.results.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.run, first.run_id);
        assert_eq!(y.run, second.run_id);
        assert_eq!(x.provenance.git_revision, "test-rev");
        // Same grid => same configs, and the simulator is
        // deterministic => bit-identical metrics, at any worker count.
        assert_eq!(x.config_fingerprint, y.config_fingerprint);
        assert_eq!(x.metric_fingerprint, y.metric_fingerprint);
        assert_eq!(x.events_processed, y.events_processed);
        assert_eq!(x.mean_response_ms, y.mean_response_ms);
        assert_eq!(x.throughput_tps, y.throughput_tps);
        assert!(x.metric_fingerprint.len() == 16);
    }
}
