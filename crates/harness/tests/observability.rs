//! Regression tests for the observation layer's contracts: observed
//! runs are bit-reproducible (same run → identical trace and timeline,
//! for any worker count), observation does not perturb the simulation,
//! and timeline windows conserve the engine's counter totals exactly.

use dbshare_harness::{Harness, Observe, Sweep, TimelineWindow};
use dbshare_sim::experiments::{fig41_grid, fig45_grid, DebitCreditRun, RunLength, RunSpec};
use desim::trace::TraceEventKind;
use desim::SimDuration;

/// Short but non-degenerate: long enough for lock waits, buffer
/// misses, and remote page transfers to occur.
const TINY: RunLength = RunLength {
    warmup: 30,
    measured: 150,
};

fn spec() -> RunSpec {
    RunSpec::DebitCredit(DebitCreditRun::baseline(2, TINY))
}

#[test]
fn observed_runs_are_bit_reproducible() {
    let (report_a, obs_a) = spec().execute_observed(Observe::full());
    let (report_b, obs_b) = spec().execute_observed(Observe::full());
    assert!(!obs_a.trace.is_empty(), "trace was requested");
    assert!(!obs_a.timeline.is_empty(), "timeline was requested");
    assert_eq!(obs_a, obs_b, "same spec must observe identically");
    assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));
}

#[test]
fn observation_does_not_perturb_the_simulation() {
    let bare = spec().execute();
    // Tracing alone adds no calendar events: the whole report must be
    // identical, field for field.
    let (traced, _) = spec().execute_observed(Observe {
        timeline_every: None,
        trace: true,
    });
    assert_eq!(
        format!("{bare:?}"),
        format!("{traced:?}"),
        "enabling tracing changed the simulation"
    );
    // The timeline sampler schedules (read-only) calendar ticks, so
    // only the event count may move — every simulated result is pinned.
    let (sampled, _) = spec().execute_observed(Observe::full());
    assert_eq!(sampled.measured_txns, bare.measured_txns);
    assert_eq!(sampled.deadlock_aborts, bare.deadlock_aborts);
    assert_eq!(sampled.timeout_aborts, bare.timeout_aborts);
    assert_eq!(
        format!(
            "{} {} {}",
            sampled.mean_response_ms, sampled.throughput_tps, sampled.lock_wait_ms
        ),
        format!(
            "{} {} {}",
            bare.mean_response_ms, bare.throughput_tps, bare.lock_wait_ms
        ),
        "timeline sampling changed simulated metrics"
    );
}

#[test]
fn observations_are_invariant_across_worker_counts() {
    let sweeps = || {
        vec![
            Sweep {
                figure: "fig41".into(),
                grid: fig41_grid(&[1, 2], TINY),
            },
            Sweep {
                figure: "fig45".into(),
                grid: fig45_grid(&[2], TINY),
            },
        ]
    };
    let one = Harness::new()
        .workers(1)
        .observe(Observe::full())
        .run(sweeps());
    let many = Harness::new()
        .workers(7)
        .observe(Observe::full())
        .run(sweeps());
    assert_eq!(one.results.len(), many.results.len());
    for (a, b) in one.results.iter().zip(&many.results) {
        assert!(!a.observations.trace.is_empty());
        assert_eq!(
            a.observations, b.observations,
            "observations diverged between worker counts for {} / {} / n={}",
            a.job.figure, a.job.curve, a.job.nodes
        );
    }
}

/// Sums the count and duration fields that must telescope exactly.
fn totals(windows: &[TimelineWindow]) -> Vec<u64> {
    let mut t = vec![0u64; 18];
    for w in windows {
        for (slot, v) in t.iter_mut().zip([
            w.committed,
            w.lock_requests,
            w.lock_waits,
            w.storage_reads,
            w.commit_writes,
            w.log_writes,
            w.evict_writes,
            w.page_transfers,
            w.aborts,
            w.buffer_hits,
            w.buffer_misses,
            w.resp_ns,
            w.input_ns,
            w.lock_ns,
            w.io_ns,
            w.cpu_wait_ns,
            w.cpu_service_ns,
            w.width.as_nanos(),
        ]) {
            *slot += v;
        }
    }
    t
}

#[test]
fn timeline_windows_conserve_run_totals() {
    // Fine windows vs one coarse window over the same deterministic
    // run: every count and duration field is a counter delta, so the
    // fine sums must telescope to the coarse totals exactly.
    let fine_cfg = Observe {
        timeline_every: Some(SimDuration::from_millis(200)),
        trace: false,
    };
    let coarse_cfg = Observe {
        timeline_every: Some(SimDuration::from_secs(3600)),
        trace: false,
    };
    let (report, fine) = spec().execute_observed(fine_cfg);
    let (_, coarse) = spec().execute_observed(coarse_cfg);
    assert!(fine.timeline.len() > 2, "expected several fine windows");
    assert_eq!(coarse.timeline.len(), 1, "expected one coarse window");
    assert_eq!(totals(&fine.timeline), totals(&coarse.timeline));
    let committed: u64 = fine.timeline.iter().map(|w| w.committed).sum();
    assert_eq!(committed, report.measured_txns);
}

#[test]
fn trace_commits_match_the_reported_measurement() {
    let (report, obs) = spec().execute_observed(Observe {
        timeline_every: None,
        trace: true,
    });
    // The trace covers warm-up too, so it sees at least the measured
    // commits; every commit carries its response time.
    let commits: Vec<_> = obs
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::TxnCommit)
        .collect();
    assert!(commits.len() as u64 >= report.measured_txns);
    assert!(commits.iter().all(|e| e.arg > 0));
    // Lock waits resolve: grants with a wait duration imply waits.
    let waits = obs
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::LockWait)
        .count();
    let waited_grants = obs
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::LockGrant && e.arg > 0)
        .count();
    assert!(waits > 0, "tiny contended run should produce lock waits");
    assert!(waited_grants <= waits);
}
