//! Deadlock detection over waits-for graphs (§3.2).
//!
//! The debit-credit workload is deadlock-free by construction (all
//! transactions reference the record types in the same order), but the
//! simulator supports arbitrary reference strings, so a detector is
//! required. Cycles are found by depth-first search over the waits-for
//! edges collected from the lock tables; the victim is the youngest
//! transaction in the cycle (highest id), which restarts after a delay.

use dbshare_model::TxnId;
use std::collections::{HashMap, HashSet};

/// Finds one cycle in the waits-for graph, if any, returning the
/// transactions on it.
///
/// ```rust
/// use dbshare_lockmgr::deadlock::find_cycle;
/// use dbshare_model::TxnId;
/// let t = TxnId::new;
/// // 1 -> 2 -> 1 deadlock
/// let cycle = find_cycle(&[(t(1), t(2)), (t(2), t(1))]).unwrap();
/// assert_eq!(cycle.len(), 2);
/// ```
pub fn find_cycle(edges: &[(TxnId, TxnId)]) -> Option<Vec<TxnId>> {
    let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut visited: HashSet<TxnId> = HashSet::new();
    let mut nodes: Vec<TxnId> = adj.keys().copied().collect();
    nodes.sort_unstable();
    for start in nodes {
        if visited.contains(&start) {
            continue;
        }
        // Iterative DFS with an explicit path for cycle extraction.
        let mut stack: Vec<(TxnId, usize)> = vec![(start, 0)];
        let mut path: Vec<TxnId> = Vec::new();
        let mut on_path: HashSet<TxnId> = HashSet::new();
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx == 0 {
                path.push(node);
                on_path.insert(node);
            }
            let next = adj.get(&node).and_then(|v| v.get(*idx)).copied();
            match next {
                Some(succ) => {
                    *idx += 1;
                    if on_path.contains(&succ) {
                        let pos = path
                            .iter()
                            .position(|&t| t == succ)
                            .expect("on_path implies in path");
                        return Some(path[pos..].to_vec());
                    }
                    if !visited.contains(&succ) {
                        stack.push((succ, 0));
                    }
                }
                None => {
                    visited.insert(node);
                    on_path.remove(&node);
                    path.pop();
                    stack.pop();
                }
            }
        }
    }
    None
}

/// Selects the victim of a deadlock: the youngest transaction (highest
/// id — ids are assigned in arrival order), so older work is preserved.
///
/// # Panics
///
/// Panics if `cycle` is empty.
pub fn choose_victim(cycle: &[TxnId]) -> TxnId {
    *cycle.iter().max().expect("cycle is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn no_cycle_in_dag() {
        let edges = vec![(t(1), t(2)), (t(2), t(3)), (t(1), t(3))];
        assert_eq!(find_cycle(&edges), None);
    }

    #[test]
    fn finds_two_cycle() {
        let edges = vec![(t(1), t(2)), (t(2), t(1))];
        let c = find_cycle(&edges).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
    }

    #[test]
    fn finds_longer_cycle_among_noise() {
        let edges = vec![
            (t(9), t(1)),
            (t(1), t(2)),
            (t(2), t(3)),
            (t(3), t(4)),
            (t(4), t(2)), // cycle 2-3-4
            (t(5), t(6)),
        ];
        let c = find_cycle(&edges).unwrap();
        assert_eq!(c.len(), 3);
        for x in [2, 3, 4] {
            assert!(c.contains(&t(x)), "{c:?}");
        }
    }

    #[test]
    fn self_wait_is_a_cycle() {
        // should not occur in practice, but must not hang
        let edges = vec![(t(1), t(1))];
        let c = find_cycle(&edges).unwrap();
        assert_eq!(c, vec![t(1)]);
    }

    #[test]
    fn empty_graph_no_cycle() {
        assert_eq!(find_cycle(&[]), None);
    }

    #[test]
    fn victim_is_youngest() {
        assert_eq!(choose_victim(&[t(3), t(7), t(5)]), t(7));
    }

    #[test]
    fn deterministic_on_disjoint_cycles() {
        // two disjoint cycles: detector returns one deterministically
        let edges = vec![(t(10), t(11)), (t(11), t(10)), (t(2), t(3)), (t(3), t(2))];
        let c1 = find_cycle(&edges).unwrap();
        let c2 = find_cycle(&edges).unwrap();
        assert_eq!(c1, c2);
        // starts from the smallest id: finds the 2-3 cycle
        assert!(c1.contains(&t(2)));
    }
}
