//! The GEM global lock table (close coupling, §3.2).
//!
//! One lock table for the whole system lives in GEM. Every lock and
//! unlock touches it with synchronous entry accesses (a read plus a
//! Compare&Swap write — the *timing* of those accesses is charged by
//! the engine on the GEM server; this module is the table's state).
//!
//! Coherency control rides along for free: each entry carries the
//! page's current sequence number (incremented per modification) and,
//! under NOFORCE, the *page owner* — the node whose buffer holds the
//! most recent version. Comparing sequence numbers at lock time detects
//! buffer invalidations without any extra communication.

use crate::table::{LockMode, LockReply, LockTable};
use dbshare_model::{NodeId, PageId, TxnId};
use desim::fxhash::{self, FxHashMap};

/// Global-lock-table metadata of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageInfo {
    /// Current version number (page sequence number).
    pub seqno: u64,
    /// Node whose buffer holds the newest version, when that version is
    /// not yet on permanent storage (NOFORCE); `None` means permanent
    /// storage is current.
    pub owner: Option<NodeId>,
}

/// Reply to a GEM lock request: the lock outcome plus the coherency
/// metadata read from the same entry (no extra accesses needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemReply {
    /// Lock outcome.
    pub reply: LockReply,
    /// Entry metadata at request time.
    pub info: PageInfo,
}

/// The global lock table stored in GEM.
///
/// ```rust
/// use dbshare_lockmgr::{GemLockTable, LockMode, LockReply};
/// use dbshare_model::{NodeId, PageId, PartitionId, TxnId};
/// let mut glt = GemLockTable::new();
/// let p = PageId::new(PartitionId::new(0), 9);
/// let r = glt.request(TxnId::new(1), p, LockMode::Write);
/// assert_eq!(r.reply, LockReply::Granted);
/// assert_eq!(r.info.seqno, 0);
/// glt.record_modification(p, NodeId::new(0), false);
/// assert_eq!(glt.info(p).seqno, 1);
/// assert_eq!(glt.info(p).owner, Some(NodeId::new(0)));
/// ```
#[derive(Debug, Default)]
pub struct GemLockTable {
    table: LockTable,
    meta: FxHashMap<PageId, PageInfo>,
}

impl GemLockTable {
    /// Creates an empty table (all pages at sequence number 0, storage
    /// current).
    pub fn new() -> Self {
        GemLockTable::default()
    }

    /// Creates a table pre-sized for `pages` hot pages and `txns`
    /// concurrently active transactions.
    pub fn with_capacity(pages: usize, txns: usize) -> Self {
        GemLockTable {
            table: LockTable::with_capacity(pages, txns),
            meta: fxhash::map_with_capacity(pages),
        }
    }

    /// GEM entry accesses per lock or unlock operation: one read plus
    /// one Compare&Swap write.
    pub const ENTRY_OPS: u32 = 2;

    /// Requests a lock; the reply carries the entry's coherency info.
    pub fn request(&mut self, txn: TxnId, page: PageId, mode: LockMode) -> GemReply {
        let reply = self.table.request(txn, page, mode);
        GemReply {
            reply,
            info: self.info(page),
        }
    }

    /// Current metadata of `page`.
    pub fn info(&self, page: PageId) -> PageInfo {
        self.meta.get(&page).copied().unwrap_or_default()
    }

    /// Records that `node` committed a modification of `page`:
    /// increments the sequence number and sets the owner (NOFORCE) or
    /// marks storage current (`force_written = true`).
    pub fn record_modification(&mut self, page: PageId, node: NodeId, force_written: bool) {
        let e = self.meta.entry(page).or_default();
        e.seqno += 1;
        e.owner = if force_written { None } else { Some(node) };
    }

    /// Records that the owner wrote the current version back to
    /// permanent storage (dirty replacement, §3.2): future misses read
    /// from storage instead of requesting the page.
    pub fn record_writeback(&mut self, page: PageId, node: NodeId) {
        if let Some(e) = self.meta.get_mut(&page) {
            if e.owner == Some(node) {
                e.owner = None;
            }
        }
    }

    /// The mode `txn` currently holds on `page`, if any.
    pub fn held_mode(&self, txn: TxnId, page: PageId) -> Option<LockMode> {
        self.table.held_mode(txn, page)
    }

    /// Current holders of `page` (diagnostics).
    pub fn holders(&self, page: PageId) -> Vec<(TxnId, LockMode)> {
        self.table.holders(page)
    }

    /// Queued waiters on `page` (diagnostics).
    pub fn queue_len(&self, page: PageId) -> usize {
        self.table.queue_len(page)
    }

    /// Releases all locks of `txn`, returning newly granted waiters.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(PageId, TxnId, LockMode)> {
        self.table.release_all(txn)
    }

    /// Releases a single lock (used on abort paths).
    pub fn release(&mut self, txn: TxnId, page: PageId) -> Vec<(TxnId, LockMode)> {
        self.table.release(txn, page)
    }

    /// Waits-for edges for global deadlock detection.
    pub fn waits_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        self.table.waits_for_edges()
    }

    /// Clears the page ownership of every page owned by `node` (the
    /// node crashed and its buffered versions are gone; after log-based
    /// recovery the permanent database is current again). Returns the
    /// number of entries cleared.
    pub fn clear_node_ownership(&mut self, node: NodeId) -> usize {
        let mut cleared = 0;
        for e in self.meta.values_mut() {
            if e.owner == Some(node) {
                e.owner = None;
                cleared += 1;
            }
        }
        cleared
    }

    /// Total grants (for statistics).
    pub fn grants(&self) -> u64 {
        self.table.grants()
    }

    /// Requests that conflicted and queued.
    pub fn conflicts(&self) -> u64 {
        self.table.conflicts()
    }

    /// True if no locks are held or queued.
    pub fn is_quiescent(&self) -> bool {
        self.table.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::PartitionId;

    fn page(n: u64) -> PageId {
        PageId::new(PartitionId::new(0), n)
    }
    fn txn(n: u64) -> TxnId {
        TxnId::new(n)
    }
    fn node(n: u16) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn sequence_numbers_track_modifications() {
        let mut glt = GemLockTable::new();
        assert_eq!(glt.info(page(1)).seqno, 0);
        glt.record_modification(page(1), node(0), false);
        glt.record_modification(page(1), node(1), false);
        let i = glt.info(page(1));
        assert_eq!(i.seqno, 2);
        assert_eq!(i.owner, Some(node(1)));
    }

    #[test]
    fn force_write_clears_owner() {
        let mut glt = GemLockTable::new();
        glt.record_modification(page(1), node(0), true);
        assert_eq!(glt.info(page(1)).owner, None);
        assert_eq!(glt.info(page(1)).seqno, 1);
    }

    #[test]
    fn writeback_clears_owner_only_if_still_owner() {
        let mut glt = GemLockTable::new();
        glt.record_modification(page(1), node(0), false);
        // another node modifies before the writeback completes
        glt.record_modification(page(1), node(1), false);
        glt.record_writeback(page(1), node(0));
        assert_eq!(glt.info(page(1)).owner, Some(node(1))); // not clobbered
        glt.record_writeback(page(1), node(1));
        assert_eq!(glt.info(page(1)).owner, None);
    }

    #[test]
    fn request_returns_info_with_grant() {
        let mut glt = GemLockTable::new();
        glt.record_modification(page(2), node(1), false);
        let r = glt.request(txn(5), page(2), LockMode::Read);
        assert_eq!(r.reply, LockReply::Granted);
        assert_eq!(r.info.seqno, 1);
        assert_eq!(r.info.owner, Some(node(1)));
    }

    #[test]
    fn conflicting_request_queues_and_release_grants() {
        let mut glt = GemLockTable::new();
        glt.request(txn(1), page(1), LockMode::Write);
        let r = glt.request(txn(2), page(1), LockMode::Write);
        assert_eq!(r.reply, LockReply::Queued);
        let granted = glt.release_all(txn(1));
        assert_eq!(granted, vec![(page(1), txn(2), LockMode::Write)]);
        assert_eq!(glt.grants(), 2);
        assert_eq!(glt.conflicts(), 1);
    }

    #[test]
    fn entry_ops_constant_matches_paper() {
        // §2: "Changing control information in the GLT [...] requires
        // (at least) two GEM accesses".
        assert_eq!(GemLockTable::ENTRY_OPS, 2);
    }
}
