//! # dbshare-lockmgr — concurrency and coherency control (§3.2)
//!
//! Both protocols the paper compares are implemented here as pure,
//! event-free state machines (the simulation engine charges their CPU,
//! GEM, and message costs):
//!
//! * [`GemLockTable`] — close coupling: one global lock table in GEM
//!   accessed with synchronous entry reads and Compare&Swap writes,
//!   carrying page sequence numbers and NOFORCE page ownership for
//!   integrated coherency control.
//! * [`pcl`] — loose coupling: primary copy locking with per-node
//!   global lock authorities ([`pcl::GlaState`]), message-based remote
//!   requests, piggybacked page transfers, and the read optimization
//!   ([`pcl::RaTable`]).
//! * [`LockTable`] — the underlying strict-2PL table with FIFO queues
//!   and read→write conversion.
//! * [`deadlock`] — waits-for-graph cycle detection and victim choice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gem;
mod table;

pub mod deadlock;
pub mod pcl;

pub use gem::{GemLockTable, GemReply, PageInfo};
pub use table::{LockMode, LockReply, LockTable};
