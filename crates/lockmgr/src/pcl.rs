//! Primary copy locking (loose coupling, \[Ra86\], §3.2).
//!
//! The database is logically partitioned; each node holds the *global
//! lock authority* (GLA) for one partition. Requests against the local
//! partition are processed without messages; others need a short
//! message round trip to the authorized node.
//!
//! Coherency control is integrated: the GLA node tracks page sequence
//! numbers, and under NOFORCE it also acts as the *owner* of its
//! partition's pages — modified pages return to it with the lock
//! release message, and current versions ship out with lock grant
//! messages, so page transfers never cost extra messages.
//!
//! The *read optimization* (\[Ra86\]) is also implemented: the GLA can
//! hand a node a **read authorization (RA)** for a page, after which
//! that node processes further read locks on the page locally (it is
//! guaranteed no writes have occurred, otherwise the RA would have been
//! revoked). Write locks first revoke outstanding RAs with explicit
//! revocation messages and wait for the acknowledgements.

use crate::table::{LockMode, LockReply, LockTable};
use dbshare_model::{NodeId, PageId, TxnId};
use desim::fxhash::{self, FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// Per-page state at the GLA node.
#[derive(Debug, Clone, Default)]
struct GlaPage {
    seqno: u64,
    /// Nodes holding a read authorization.
    ra: BTreeSet<NodeId>,
}

/// Outcome of a lock request processed at a GLA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlaOutcome {
    /// Lock table outcome.
    pub reply: LockReply,
    /// Page sequence number at the GLA (for invalidation detection and
    /// piggybacked page versions).
    pub seqno: u64,
    /// Whether a read authorization was granted to the requesting node
    /// (read optimization enabled, read mode, granted).
    pub ra_granted: bool,
    /// Nodes whose read authorizations must be revoked before this
    /// write lock may be granted to the requester. Empty for reads.
    pub revoke: Vec<NodeId>,
}

/// Lock-authority state of one node: the lock table and page directory
/// for its GLA partition.
#[derive(Debug, Default)]
pub struct GlaState {
    table: LockTable,
    pages: FxHashMap<PageId, GlaPage>,
    local_requests: u64,
    remote_requests: u64,
}

impl GlaState {
    /// Creates an empty authority state.
    pub fn new() -> Self {
        GlaState::default()
    }

    /// Creates an authority state pre-sized for `pages` hot pages and
    /// `txns` concurrently active transactions.
    pub fn with_capacity(pages: usize, txns: usize) -> Self {
        GlaState {
            table: LockTable::with_capacity(pages, txns),
            pages: fxhash::map_with_capacity(pages),
            local_requests: 0,
            remote_requests: 0,
        }
    }

    /// Processes a lock request at this GLA node.
    ///
    /// `from` is the requesting node, `local` whether the request
    /// originated on this node (statistics), and `read_optimization`
    /// whether RAs are handed out / revoked.
    pub fn request(
        &mut self,
        txn: TxnId,
        from: NodeId,
        page: PageId,
        mode: LockMode,
        local: bool,
        read_optimization: bool,
    ) -> GlaOutcome {
        if local {
            self.local_requests += 1;
        } else {
            self.remote_requests += 1;
        }
        let reply = self.table.request(txn, page, mode);
        let entry = self.pages.entry(page).or_default();
        let mut ra_granted = false;
        let mut revoke = Vec::new();
        match mode {
            LockMode::Read => {
                if read_optimization && reply != LockReply::Queued {
                    entry.ra.insert(from);
                    ra_granted = true;
                }
            }
            LockMode::Write => {
                // All RAs except the writer's own node become invalid.
                revoke = entry.ra.iter().copied().filter(|&n| n != from).collect();
                entry.ra.clear();
                if read_optimization && reply != LockReply::Queued {
                    // the writer's node may keep reading its own copy
                    entry.ra.insert(from);
                }
            }
        }
        GlaOutcome {
            reply,
            seqno: entry.seqno,
            ra_granted,
            revoke,
        }
    }

    /// Current sequence number of `page` at this authority.
    pub fn seqno(&self, page: PageId) -> u64 {
        self.pages.get(&page).map(|p| p.seqno).unwrap_or(0)
    }

    /// Records a read authorization handed out when a *queued* read
    /// request is finally granted (immediate grants record it inside
    /// [`request`](Self::request)).
    pub fn grant_ra(&mut self, page: PageId, node: NodeId) {
        self.pages.entry(page).or_default().ra.insert(node);
    }

    /// Records a committed modification of `page` (the new version has
    /// arrived at / exists on the GLA node, which owns it under NOFORCE).
    pub fn record_modification(&mut self, page: PageId) -> u64 {
        let e = self.pages.entry(page).or_default();
        e.seqno += 1;
        e.seqno
    }

    /// Releases all locks of `txn` at this authority, returning newly
    /// granted waiters as `(page, txn, mode)`.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(PageId, TxnId, LockMode)> {
        self.table.release_all(txn)
    }

    /// Releases one lock (abort paths).
    pub fn release(&mut self, txn: TxnId, page: PageId) -> Vec<(TxnId, LockMode)> {
        self.table.release(txn, page)
    }

    /// Waits-for edges of this authority's lock table.
    pub fn waits_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        self.table.waits_for_edges()
    }

    /// Current holders of `page` (diagnostics).
    pub fn holders_of(&self, page: PageId) -> Vec<(TxnId, LockMode)> {
        self.table.holders(page)
    }

    /// Queued waiters on `page` (diagnostics).
    pub fn queue_len_of(&self, page: PageId) -> usize {
        self.table.queue_len(page)
    }

    /// Every transaction holding or waiting for a lock at this
    /// authority (crash handling: a failed GLA node's volatile lock
    /// state is lost, so these transactions must abort).
    pub fn all_txns(&self) -> Vec<TxnId> {
        self.table.all_txns()
    }

    /// `(local, remote)` request counts.
    pub fn request_counts(&self) -> (u64, u64) {
        (self.local_requests, self.remote_requests)
    }

    /// Lock conflicts observed.
    pub fn conflicts(&self) -> u64 {
        self.table.conflicts()
    }

    /// True if no locks are held or queued.
    pub fn is_quiescent(&self) -> bool {
        self.table.is_quiescent()
    }
}

/// What to do with a revocation received by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeAction {
    /// No local readers: acknowledge immediately.
    AckNow,
    /// Local readers still hold the page: the acknowledgement is sent
    /// when the last one releases ([`RaTable::release`] returns `true`).
    Deferred,
}

/// Per-node read-authorization table: which pages this node may grant
/// read locks on locally, and which local transactions currently hold
/// such locks.
#[derive(Debug, Default)]
pub struct RaTable {
    entries: FxHashMap<PageId, RaEntry>,
    local_grants: u64,
}

#[derive(Debug, Default)]
struct RaEntry {
    authorized: bool,
    readers: FxHashSet<TxnId>,
    revoke_pending: bool,
}

impl RaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RaTable::default()
    }

    /// Records an authorization received from the GLA.
    pub fn grant_authorization(&mut self, page: PageId) {
        let e = self.entries.entry(page).or_default();
        if !e.revoke_pending {
            e.authorized = true;
        }
    }

    /// Attempts to grant a read lock locally. Returns `true` (and
    /// registers the reader) if the node holds a valid authorization.
    /// The caller must additionally have a valid cached copy of the
    /// page — without one the current version must be fetched from the
    /// GLA anyway, so the request goes remote.
    pub fn try_local_read(&mut self, txn: TxnId, page: PageId) -> bool {
        match self.entries.get_mut(&page) {
            Some(e) if e.authorized && !e.revoke_pending => {
                e.readers.insert(txn);
                self.local_grants += 1;
                true
            }
            _ => false,
        }
    }

    /// Processes a revocation from the GLA.
    pub fn revoke(&mut self, page: PageId) -> RevokeAction {
        let e = self.entries.entry(page).or_default();
        e.authorized = false;
        if e.readers.is_empty() {
            e.revoke_pending = false;
            RevokeAction::AckNow
        } else {
            e.revoke_pending = true;
            RevokeAction::Deferred
        }
    }

    /// Releases `txn`'s locally granted read lock on `page`. Returns
    /// `true` if a deferred revocation can now be acknowledged.
    pub fn release(&mut self, txn: TxnId, page: PageId) -> bool {
        if let Some(e) = self.entries.get_mut(&page) {
            e.readers.remove(&txn);
            if e.revoke_pending && e.readers.is_empty() {
                e.revoke_pending = false;
                return true;
            }
        }
        false
    }

    /// True if this node currently holds an authorization for `page`.
    pub fn is_authorized(&self, page: PageId) -> bool {
        self.entries
            .get(&page)
            .map(|e| e.authorized && !e.revoke_pending)
            .unwrap_or(false)
    }

    /// Read locks granted locally so far (statistics).
    pub fn local_grants(&self) -> u64 {
        self.local_grants
    }

    /// Local transactions currently holding locally granted read locks
    /// on `page` (for distributed deadlock detection: a pending writer
    /// waits for these).
    pub fn readers(&self, page: PageId) -> Vec<TxnId> {
        self.entries
            .get(&page)
            .map(|e| {
                let mut v: Vec<TxnId> = e.readers.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::PartitionId;

    fn page(n: u64) -> PageId {
        PageId::new(PartitionId::new(0), n)
    }
    fn txn(n: u64) -> TxnId {
        TxnId::new(n)
    }
    fn node(n: u16) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn grants_and_counts_local_remote() {
        let mut gla = GlaState::new();
        let r = gla.request(txn(1), node(0), page(1), LockMode::Read, true, false);
        assert_eq!(r.reply, LockReply::Granted);
        assert!(!r.ra_granted);
        let r = gla.request(txn(2), node(1), page(1), LockMode::Read, false, false);
        assert_eq!(r.reply, LockReply::Granted);
        assert_eq!(gla.request_counts(), (1, 1));
    }

    #[test]
    fn seqno_advances_on_modification() {
        let mut gla = GlaState::new();
        assert_eq!(gla.seqno(page(1)), 0);
        assert_eq!(gla.record_modification(page(1)), 1);
        assert_eq!(gla.record_modification(page(1)), 2);
        let r = gla.request(txn(1), node(0), page(1), LockMode::Read, true, false);
        assert_eq!(r.seqno, 2);
    }

    #[test]
    fn read_optimization_grants_ra() {
        let mut gla = GlaState::new();
        let r = gla.request(txn(1), node(1), page(1), LockMode::Read, false, true);
        assert!(r.ra_granted);
        assert!(r.revoke.is_empty());
    }

    #[test]
    fn write_revokes_other_ras() {
        let mut gla = GlaState::new();
        gla.request(txn(1), node(1), page(1), LockMode::Read, false, true);
        gla.request(txn(2), node(2), page(1), LockMode::Read, false, true);
        gla.release_all(txn(1));
        gla.release_all(txn(2));
        let r = gla.request(txn(3), node(1), page(1), LockMode::Write, false, true);
        assert_eq!(r.reply, LockReply::Granted);
        // node 1 is the writer: only node 2's RA is revoked
        assert_eq!(r.revoke, vec![node(2)]);
    }

    #[test]
    fn ra_table_local_read_lifecycle() {
        let mut ra = RaTable::new();
        assert!(!ra.try_local_read(txn(1), page(1)));
        ra.grant_authorization(page(1));
        assert!(ra.is_authorized(page(1)));
        assert!(ra.try_local_read(txn(1), page(1)));
        assert_eq!(ra.local_grants(), 1);
        // release without pending revoke: nothing to ack
        assert!(!ra.release(txn(1), page(1)));
    }

    #[test]
    fn revoke_with_no_readers_acks_now() {
        let mut ra = RaTable::new();
        ra.grant_authorization(page(1));
        assert_eq!(ra.revoke(page(1)), RevokeAction::AckNow);
        assert!(!ra.is_authorized(page(1)));
        assert!(!ra.try_local_read(txn(1), page(1)));
    }

    #[test]
    fn revoke_with_readers_defers_ack_until_release() {
        let mut ra = RaTable::new();
        ra.grant_authorization(page(1));
        assert!(ra.try_local_read(txn(1), page(1)));
        assert!(ra.try_local_read(txn(2), page(1)));
        assert_eq!(ra.revoke(page(1)), RevokeAction::Deferred);
        // new local reads are refused while the revoke is pending
        assert!(!ra.try_local_read(txn(3), page(1)));
        assert!(!ra.release(txn(1), page(1))); // one reader left
        assert!(ra.release(txn(2), page(1))); // last reader: ack now
    }

    #[test]
    fn authorization_not_restored_while_revoke_pending() {
        let mut ra = RaTable::new();
        ra.grant_authorization(page(1));
        ra.try_local_read(txn(1), page(1));
        ra.revoke(page(1));
        // a racing grant (in-flight before the revoke) must not
        // resurrect the authorization
        ra.grant_authorization(page(1));
        assert!(!ra.is_authorized(page(1)));
        ra.release(txn(1), page(1));
        // after the ack the GLA may re-authorize
        ra.grant_authorization(page(1));
        assert!(ra.is_authorized(page(1)));
    }

    #[test]
    fn queued_write_reports_queue_and_revokes() {
        let mut gla = GlaState::new();
        gla.request(txn(1), node(0), page(1), LockMode::Read, true, true);
        let r = gla.request(txn(2), node(2), page(1), LockMode::Write, false, true);
        assert_eq!(r.reply, LockReply::Queued);
        assert_eq!(r.revoke, vec![node(0)]);
        let granted = gla.release_all(txn(1));
        assert_eq!(granted, vec![(page(1), txn(2), LockMode::Write)]);
    }
}
