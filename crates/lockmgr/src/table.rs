//! A strict two-phase-locking lock table with FIFO queues and lock
//! conversion (read → write upgrades).
//!
//! This table is the building block of both protocols: the GEM global
//! lock table holds one instance for the whole system (§3.2), while PCL
//! instantiates one per node for its GLA partition, plus small per-node
//! tables for locally authorized read locks.

use dbshare_model::{PageId, TxnId};
use desim::fxhash::{self, FxHashMap, FxHashSet};
use std::collections::VecDeque;

/// Lock mode: long read and write locks (strict 2PL, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared.
    Read,
    /// Exclusive.
    Write,
}

impl LockMode {
    /// True if two locks of these modes can be held simultaneously.
    pub const fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Read, LockMode::Read))
    }

    /// True if a holder of `self` needs no further lock to perform an
    /// access of mode `other`.
    pub const fn covers(self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (LockMode::Write, _) | (LockMode::Read, LockMode::Read)
        )
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockReply {
    /// The lock was granted immediately.
    Granted,
    /// The request conflicts and was queued; the requester must wait
    /// for a grant notification produced by a later release.
    Queued,
    /// The transaction already holds a covering lock.
    AlreadyHeld,
}

#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    /// Conversion of an already-held read lock.
    upgrade: bool,
}

#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<Waiter>,
}

impl LockState {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|&(_, m)| m)
    }

    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|&(t, m)| t == txn || m.compatible(mode))
    }
}

/// A strict 2PL lock table over pages.
///
/// ```rust
/// use dbshare_lockmgr::{LockTable, LockMode, LockReply};
/// use dbshare_model::{PageId, PartitionId, TxnId};
/// let mut lt = LockTable::new();
/// let p = PageId::new(PartitionId::new(0), 1);
/// assert_eq!(lt.request(TxnId::new(1), p, LockMode::Write), LockReply::Granted);
/// assert_eq!(lt.request(TxnId::new(2), p, LockMode::Read), LockReply::Queued);
/// let granted = lt.release_all(TxnId::new(1));
/// assert_eq!(granted, vec![(p, TxnId::new(2), LockMode::Read)]);
/// ```
#[derive(Debug, Default)]
pub struct LockTable {
    locks: FxHashMap<PageId, LockState>,
    held: FxHashMap<TxnId, FxHashSet<PageId>>,
    grants: u64,
    conflicts: u64,
    /// Recycled [`LockState`]s: a page's entry is created on first
    /// conflict-free use and dropped once idle, so without recycling
    /// every lock cycle pays a holder-list allocation.
    free_states: Vec<LockState>,
    /// Recycled per-transaction held-page sets (emptied, capacity kept).
    free_sets: Vec<FxHashSet<PageId>>,
    /// Reusable page list for [`release_all`](LockTable::release_all).
    scratch: Vec<PageId>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Creates a table pre-sized for `pages` concurrently locked pages
    /// and `txns` concurrently active transactions (so the per-event
    /// hot path never rehashes).
    pub fn with_capacity(pages: usize, txns: usize) -> Self {
        LockTable {
            locks: fxhash::map_with_capacity(pages),
            held: fxhash::map_with_capacity(txns),
            ..LockTable::default()
        }
    }

    /// Records `page` in `txn`'s held-page index, reusing a pooled set
    /// for a transaction's first lock.
    fn index_held(&mut self, txn: TxnId, page: PageId) {
        self.held
            .entry(txn)
            .or_insert_with(|| self.free_sets.pop().unwrap_or_default())
            .insert(page);
    }

    /// Requests a lock on `page` in `mode` for `txn`.
    pub fn request(&mut self, txn: TxnId, page: PageId, mode: LockMode) -> LockReply {
        let state = self
            .locks
            .entry(page)
            .or_insert_with(|| self.free_states.pop().unwrap_or_default());
        if let Some(held) = state.holder_mode(txn) {
            if held.covers(mode) {
                return LockReply::AlreadyHeld;
            }
            // Read → write conversion: upgrades may overtake the queue
            // (standard treatment; waiting behind new readers would
            // deadlock against them).
            if state.compatible_with_holders(txn, LockMode::Write) {
                for h in state.holders.iter_mut() {
                    if h.0 == txn {
                        h.1 = LockMode::Write;
                    }
                }
                self.grants += 1;
                return LockReply::Granted;
            }
            self.conflicts += 1;
            // Queue upgrades ahead of non-upgrade waiters.
            let pos = state.queue.iter().take_while(|w| w.upgrade).count();
            state.queue.insert(
                pos,
                Waiter {
                    txn,
                    mode: LockMode::Write,
                    upgrade: true,
                },
            );
            return LockReply::Queued;
        }
        if state.queue.is_empty() && state.compatible_with_holders(txn, mode) {
            state.holders.push((txn, mode));
            self.index_held(txn, page);
            self.grants += 1;
            LockReply::Granted
        } else {
            self.conflicts += 1;
            state.queue.push_back(Waiter {
                txn,
                mode,
                upgrade: false,
            });
            LockReply::Queued
        }
    }

    /// Releases `txn`'s lock on `page` (or removes its queued request),
    /// returning the waiters granted as a result.
    pub fn release(&mut self, txn: TxnId, page: PageId) -> Vec<(TxnId, LockMode)> {
        let Some(state) = self.locks.get_mut(&page) else {
            return Vec::new();
        };
        state.holders.retain(|&(t, _)| t != txn);
        state.queue.retain(|w| w.txn != txn);
        if let Some(set) = self.held.get_mut(&txn) {
            set.remove(&page);
        }
        let granted = Self::promote(state);
        let idle = state.holders.is_empty() && state.queue.is_empty();
        for &(t, _) in &granted {
            self.index_held(t, page);
            self.grants += 1;
        }
        if idle {
            // Recycle the entry: its holder list (and any queue
            // capacity) is reused by the next page that locks.
            if let Some(state) = self.locks.remove(&page) {
                self.free_states.push(state);
            }
        }
        granted
    }

    /// Releases everything `txn` holds or waits for (commit phase 2 or
    /// abort), returning all newly granted `(page, txn, mode)` triples
    /// in deterministic (page, queue) order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(PageId, TxnId, LockMode)> {
        // The page list lives in a reusable scratch buffer and the
        // emptied held-set returns to the pool, so the common
        // no-waiters release performs no allocation at all (`out`
        // only allocates when something is actually granted).
        let mut pages = std::mem::take(&mut self.scratch);
        pages.clear();
        if let Some(mut set) = self.held.remove(&txn) {
            pages.extend(set.drain());
            self.free_sets.push(set);
        }
        pages.sort_unstable();
        let mut out = Vec::new();
        for &page in &pages {
            for (t, m) in self.release(txn, page) {
                out.push((page, t, m));
            }
        }
        self.scratch = pages;
        out
    }

    /// Grants compatible waiters after holders changed.
    fn promote(state: &mut LockState) -> Vec<(TxnId, LockMode)> {
        let mut granted = Vec::new();
        // Upgrades first: an upgrader can proceed once it is the sole
        // holder.
        while let Some(w) = state.queue.front() {
            if w.upgrade {
                let txn = w.txn;
                let sole = state.holders.iter().all(|&(t, _)| t == txn);
                if sole {
                    state.queue.pop_front();
                    match state.holders.iter_mut().find(|(t, _)| *t == txn) {
                        Some(h) => h.1 = LockMode::Write,
                        None => state.holders.push((txn, LockMode::Write)),
                    }
                    granted.push((txn, LockMode::Write));
                    continue;
                }
                break;
            }
            let compatible = state.holders.iter().all(|&(_, m)| m.compatible(w.mode));
            // FIFO: a pending upgrade further back must not be starved
            // by a stream of readers; simple FIFO order handles this
            // because we only look at the queue head.
            if compatible {
                let w = state.queue.pop_front().expect("front exists");
                state.holders.push((w.txn, w.mode));
                granted.push((w.txn, w.mode));
            } else {
                break;
            }
        }
        granted
    }

    /// The mode `txn` currently holds on `page`, if any.
    pub fn held_mode(&self, txn: TxnId, page: PageId) -> Option<LockMode> {
        self.locks.get(&page)?.holder_mode(txn)
    }

    /// Current holders of `page`.
    pub fn holders(&self, page: PageId) -> Vec<(TxnId, LockMode)> {
        self.locks
            .get(&page)
            .map(|s| s.holders.clone())
            .unwrap_or_default()
    }

    /// Number of queued waiters on `page`.
    pub fn queue_len(&self, page: PageId) -> usize {
        self.locks.get(&page).map(|s| s.queue.len()).unwrap_or(0)
    }

    /// Waits-for edges `(waiter, holder)` for deadlock detection:
    /// every queued transaction waits for every current holder it is
    /// incompatible with, and for earlier incompatible queue entries.
    pub fn waits_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for state in self.locks.values() {
            for (i, w) in state.queue.iter().enumerate() {
                for &(t, m) in &state.holders {
                    if t != w.txn && !m.compatible(w.mode) {
                        edges.push((w.txn, t));
                    }
                }
                for prior in state.queue.iter().take(i) {
                    if prior.txn != w.txn && !prior.mode.compatible(w.mode) {
                        edges.push((w.txn, prior.txn));
                    }
                }
            }
        }
        edges
    }

    /// Total grants so far (including queued-then-granted).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Requests that found a conflict and queued.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// True if no locks are held or queued anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.locks.is_empty()
    }

    /// Every transaction currently holding or waiting for any lock
    /// (sorted; failure handling needs to abort them all when a lock
    /// authority's volatile state is lost).
    pub fn all_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .locks
            .values()
            .flat_map(|s| {
                s.holders
                    .iter()
                    .map(|&(t, _)| t)
                    .chain(s.queue.iter().map(|w| w.txn))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::PartitionId;

    fn page(n: u64) -> PageId {
        PageId::new(PartitionId::new(0), n)
    }
    fn txn(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn mode_compatibility() {
        assert!(LockMode::Read.compatible(LockMode::Read));
        assert!(!LockMode::Read.compatible(LockMode::Write));
        assert!(!LockMode::Write.compatible(LockMode::Write));
        assert!(LockMode::Write.covers(LockMode::Read));
        assert!(!LockMode::Read.covers(LockMode::Write));
    }

    #[test]
    fn shared_readers_coexist() {
        let mut lt = LockTable::new();
        assert_eq!(
            lt.request(txn(1), page(1), LockMode::Read),
            LockReply::Granted
        );
        assert_eq!(
            lt.request(txn(2), page(1), LockMode::Read),
            LockReply::Granted
        );
        assert_eq!(lt.holders(page(1)).len(), 2);
        assert_eq!(lt.conflicts(), 0);
    }

    #[test]
    fn writer_excludes() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        assert_eq!(
            lt.request(txn(2), page(1), LockMode::Read),
            LockReply::Queued
        );
        assert_eq!(
            lt.request(txn(3), page(1), LockMode::Write),
            LockReply::Queued
        );
        assert_eq!(lt.queue_len(page(1)), 2);
        assert_eq!(lt.conflicts(), 2);
    }

    #[test]
    fn fifo_grant_on_release() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        lt.request(txn(2), page(1), LockMode::Read);
        lt.request(txn(3), page(1), LockMode::Read);
        lt.request(txn(4), page(1), LockMode::Write);
        let granted = lt.release(txn(1), page(1));
        // both readers granted together, writer still waits
        assert_eq!(
            granted,
            vec![(txn(2), LockMode::Read), (txn(3), LockMode::Read)]
        );
        assert_eq!(lt.queue_len(page(1)), 1);
        let granted = lt.release(txn(2), page(1));
        assert!(granted.is_empty());
        let granted = lt.release(txn(3), page(1));
        assert_eq!(granted, vec![(txn(4), LockMode::Write)]);
    }

    #[test]
    fn already_held_covering() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        assert_eq!(
            lt.request(txn(1), page(1), LockMode::Read),
            LockReply::AlreadyHeld
        );
        assert_eq!(
            lt.request(txn(1), page(1), LockMode::Write),
            LockReply::AlreadyHeld
        );
    }

    #[test]
    fn upgrade_sole_reader_immediate() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Read);
        assert_eq!(
            lt.request(txn(1), page(1), LockMode::Write),
            LockReply::Granted
        );
        assert_eq!(lt.held_mode(txn(1), page(1)), Some(LockMode::Write));
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_wins() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Read);
        lt.request(txn(2), page(1), LockMode::Read);
        assert_eq!(
            lt.request(txn(1), page(1), LockMode::Write),
            LockReply::Queued
        );
        // a later writer queues behind the upgrade
        lt.request(txn(3), page(1), LockMode::Write);
        let granted = lt.release(txn(2), page(1));
        assert_eq!(granted, vec![(txn(1), LockMode::Write)]);
        assert_eq!(lt.held_mode(txn(1), page(1)), Some(LockMode::Write));
        // txn 3 still waits
        assert_eq!(lt.queue_len(page(1)), 1);
    }

    #[test]
    fn release_all_returns_grants_across_pages() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        lt.request(txn(1), page(2), LockMode::Write);
        lt.request(txn(2), page(1), LockMode::Read);
        lt.request(txn(3), page(2), LockMode::Write);
        let granted = lt.release_all(txn(1));
        assert_eq!(
            granted,
            vec![
                (page(1), txn(2), LockMode::Read),
                (page(2), txn(3), LockMode::Write)
            ]
        );
        assert!(lt.held_mode(txn(1), page(1)).is_none());
    }

    #[test]
    fn release_all_removes_queued_requests_too() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        lt.request(txn(2), page(1), LockMode::Write);
        // txn 2 gives up (abort) while queued: release via release_all
        // requires the held-index; queued entries are cleaned by page
        // release. Use release() directly:
        let granted = lt.release(txn(2), page(1));
        assert!(granted.is_empty());
        assert_eq!(lt.queue_len(page(1)), 0);
    }

    #[test]
    fn waits_for_edges_reflect_conflicts() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        lt.request(txn(2), page(1), LockMode::Write);
        lt.request(txn(3), page(1), LockMode::Write);
        let edges = lt.waits_for_edges();
        assert!(edges.contains(&(txn(2), txn(1))));
        assert!(edges.contains(&(txn(3), txn(1))));
        assert!(edges.contains(&(txn(3), txn(2)))); // queue ordering edge
    }

    #[test]
    fn quiescent_after_all_released() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Write);
        lt.request(txn(1), page(2), LockMode::Read);
        lt.release_all(txn(1));
        assert!(lt.is_quiescent());
        assert_eq!(lt.grants(), 2);
    }

    #[test]
    fn readers_do_not_jump_queue_past_writer() {
        let mut lt = LockTable::new();
        lt.request(txn(1), page(1), LockMode::Read);
        lt.request(txn(2), page(1), LockMode::Write); // queued
                                                      // a new reader must queue behind the writer (no starvation)
        assert_eq!(
            lt.request(txn(3), page(1), LockMode::Read),
            LockReply::Queued
        );
        let granted = lt.release(txn(1), page(1));
        assert_eq!(granted, vec![(txn(2), LockMode::Write)]);
    }
}
