//! Model-based equivalence test: the production lock table (backed by
//! `desim::fxhash` hash maps for per-event speed) against an
//! independent reference implementation backed entirely by ordered
//! `BTreeMap`/`BTreeSet` structures. Every random op sequence must
//! produce identical replies, identical grant lists (in order),
//! identical holder/queue/edge observables, and identical counters —
//! proving the hash-map backing introduces no iteration-order
//! dependence anywhere in the table's observable behavior.
//!
//! Cases are generated with desim's deterministic RNG (seeded,
//! reproducible) so the workspace tests without registry dependencies.

use dbshare_lockmgr::{LockMode, LockReply, LockTable};
use dbshare_model::{PageId, PartitionId, TxnId};
use desim::Rng;
use std::collections::{BTreeMap, BTreeSet};

const CASES: u64 = 128;
const OPS_PER_CASE: usize = 400;

fn page(p: u8) -> PageId {
    PageId::new(PartitionId::new(0), p as u64)
}
fn txn(t: u8) -> TxnId {
    TxnId::new(t as u64)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Request { txn: u8, page: u8, write: bool },
    Release { txn: u8, page: u8 },
    ReleaseAll { txn: u8 },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 | 1 => Op::Request {
            txn: rng.below(10) as u8,
            page: rng.below(5) as u8,
            write: rng.chance(0.5),
        },
        2 => Op::Release {
            txn: rng.below(10) as u8,
            page: rng.below(5) as u8,
        },
        _ => Op::ReleaseAll {
            txn: rng.below(10) as u8,
        },
    }
}

// ---------------------------------------------------------------------
// Reference model: the same strict-2PL semantics, implemented on
// ordered containers only (BTreeMap keyed by page, BTreeSet held
// index). No hash map anywhere.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct RefWaiter {
    txn: TxnId,
    mode: LockMode,
    upgrade: bool,
}

#[derive(Debug, Default)]
struct RefState {
    holders: Vec<(TxnId, LockMode)>,
    queue: Vec<RefWaiter>,
}

#[derive(Debug, Default)]
struct RefTable {
    locks: BTreeMap<PageId, RefState>,
    held: BTreeMap<TxnId, BTreeSet<PageId>>,
    grants: u64,
    conflicts: u64,
}

impl RefTable {
    fn request(&mut self, t: TxnId, p: PageId, mode: LockMode) -> LockReply {
        let state = self.locks.entry(p).or_default();
        let held = state
            .holders
            .iter()
            .find(|&&(h, _)| h == t)
            .map(|&(_, m)| m);
        if let Some(h) = held {
            if h.covers(mode) {
                return LockReply::AlreadyHeld;
            }
            if state.holders.iter().all(|&(h2, _)| h2 == t) {
                for h2 in state.holders.iter_mut() {
                    if h2.0 == t {
                        h2.1 = LockMode::Write;
                    }
                }
                self.grants += 1;
                return LockReply::Granted;
            }
            self.conflicts += 1;
            let pos = state.queue.iter().take_while(|w| w.upgrade).count();
            state.queue.insert(
                pos,
                RefWaiter {
                    txn: t,
                    mode: LockMode::Write,
                    upgrade: true,
                },
            );
            return LockReply::Queued;
        }
        let compatible = state.holders.iter().all(|&(_, m)| m.compatible(mode));
        if state.queue.is_empty() && compatible {
            state.holders.push((t, mode));
            self.held.entry(t).or_default().insert(p);
            self.grants += 1;
            LockReply::Granted
        } else {
            self.conflicts += 1;
            state.queue.push(RefWaiter {
                txn: t,
                mode,
                upgrade: false,
            });
            LockReply::Queued
        }
    }

    fn promote(state: &mut RefState) -> Vec<(TxnId, LockMode)> {
        let mut granted = Vec::new();
        while let Some(w) = state.queue.first().copied() {
            if w.upgrade {
                let sole = state.holders.iter().all(|&(t, _)| t == w.txn);
                if sole {
                    state.queue.remove(0);
                    match state.holders.iter_mut().find(|(t, _)| *t == w.txn) {
                        Some(h) => h.1 = LockMode::Write,
                        None => state.holders.push((w.txn, LockMode::Write)),
                    }
                    granted.push((w.txn, LockMode::Write));
                    continue;
                }
                break;
            }
            let compatible = state.holders.iter().all(|&(_, m)| m.compatible(w.mode));
            if compatible {
                state.queue.remove(0);
                state.holders.push((w.txn, w.mode));
                granted.push((w.txn, w.mode));
            } else {
                break;
            }
        }
        granted
    }

    fn release(&mut self, t: TxnId, p: PageId) -> Vec<(TxnId, LockMode)> {
        let Some(state) = self.locks.get_mut(&p) else {
            return Vec::new();
        };
        state.holders.retain(|&(h, _)| h != t);
        state.queue.retain(|w| w.txn != t);
        if let Some(set) = self.held.get_mut(&t) {
            set.remove(&p);
        }
        let granted = Self::promote(state);
        for &(g, _) in &granted {
            self.held.entry(g).or_default().insert(p);
            self.grants += 1;
        }
        if state.holders.is_empty() && state.queue.is_empty() {
            self.locks.remove(&p);
        }
        granted
    }

    fn release_all(&mut self, t: TxnId) -> Vec<(PageId, TxnId, LockMode)> {
        // BTreeSet iterates in sorted order, matching the production
        // table's explicit sort of its hash-set pages.
        let pages: Vec<PageId> = self
            .held
            .remove(&t)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        for p in pages {
            for (g, m) in self.release(t, p) {
                out.push((p, g, m));
            }
        }
        out
    }

    fn holders(&self, p: PageId) -> Vec<(TxnId, LockMode)> {
        self.locks
            .get(&p)
            .map(|s| s.holders.clone())
            .unwrap_or_default()
    }

    fn queue_len(&self, p: PageId) -> usize {
        self.locks.get(&p).map(|s| s.queue.len()).unwrap_or(0)
    }

    fn waits_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for state in self.locks.values() {
            for (i, w) in state.queue.iter().enumerate() {
                for &(t, m) in &state.holders {
                    if t != w.txn && !m.compatible(w.mode) {
                        edges.push((w.txn, t));
                    }
                }
                for prior in state.queue.iter().take(i) {
                    if prior.txn != w.txn && !prior.mode.compatible(w.mode) {
                        edges.push((w.txn, prior.txn));
                    }
                }
            }
        }
        edges
    }

    fn is_quiescent(&self) -> bool {
        self.locks.is_empty()
    }
}

/// Compares every observable of the two tables. Waits-for edges are
/// compared sorted: the production table assembles them from hash-map
/// iteration, and its contract is that consumers sort (the engine's
/// deadlock scan does) — set equality is the specified behavior.
fn assert_same_observables(lt: &LockTable, model: &RefTable, ctx: &str) {
    for p in 0..5u8 {
        assert_eq!(
            lt.holders(page(p)),
            model.holders(page(p)),
            "{ctx}: holders of page {p} diverged"
        );
        assert_eq!(
            lt.queue_len(page(p)),
            model.queue_len(page(p)),
            "{ctx}: queue length of page {p} diverged"
        );
        for t in 0..10u8 {
            assert_eq!(
                lt.held_mode(txn(t), page(p)),
                model
                    .holders(page(p))
                    .iter()
                    .find(|&&(h, _)| h == txn(t))
                    .map(|&(_, m)| m),
                "{ctx}: held_mode({t},{p}) diverged"
            );
        }
    }
    let mut a = lt.waits_for_edges();
    let mut b = model.waits_for_edges();
    a.sort_unstable();
    a.dedup();
    b.sort_unstable();
    b.dedup();
    assert_eq!(a, b, "{ctx}: waits-for edges diverged");
    assert_eq!(lt.grants(), model.grants, "{ctx}: grant counters diverged");
    assert_eq!(
        lt.conflicts(),
        model.conflicts,
        "{ctx}: conflict counters diverged"
    );
}

#[test]
fn fxhash_table_matches_btree_reference_model() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xF0C5 ^ case);
        let mut lt = LockTable::new();
        let mut model = RefTable::default();
        for step in 0..OPS_PER_CASE {
            let op = random_op(&mut rng);
            let ctx = format!("case {case} step {step} op {op:?}");
            match op {
                Op::Request {
                    txn: t,
                    page: p,
                    write,
                } => {
                    let mode = if write {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    };
                    let a = lt.request(txn(t), page(p), mode);
                    let b = model.request(txn(t), page(p), mode);
                    assert_eq!(a, b, "{ctx}: replies diverged");
                }
                Op::Release { txn: t, page: p } => {
                    let a = lt.release(txn(t), page(p));
                    let b = model.release(txn(t), page(p));
                    assert_eq!(a, b, "{ctx}: grant lists diverged");
                }
                Op::ReleaseAll { txn: t } => {
                    let a = lt.release_all(txn(t));
                    let b = model.release_all(txn(t));
                    assert_eq!(a, b, "{ctx}: release_all grants diverged");
                }
            }
            assert_same_observables(&lt, &model, &ctx);
        }
        // Drain: after releasing everyone, both must be quiescent.
        for t in 0..10u8 {
            let a = lt.release_all(txn(t));
            let b = model.release_all(txn(t));
            assert_eq!(a, b, "case {case} drain of txn {t} diverged");
            for p in 0..5u8 {
                // also clear any still-queued requests
                assert_eq!(lt.release(txn(t), page(p)), model.release(txn(t), page(p)));
            }
        }
        assert!(lt.is_quiescent(), "case {case}: table not quiescent");
        assert!(model.is_quiescent(), "case {case}: model not quiescent");
    }
}
