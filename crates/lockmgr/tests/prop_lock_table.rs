//! Randomized tests of the 2PL lock table: whatever the request /
//! release interleaving, the table must never grant incompatible locks
//! simultaneously, must never lose a transaction, and must drain to
//! quiescence.
//!
//! Cases are generated with desim's deterministic RNG (seeded,
//! reproducible) so the workspace builds and tests without any registry
//! dependency.

use dbshare_lockmgr::{LockMode, LockReply, LockTable};
use dbshare_model::{PageId, PartitionId, TxnId};
use desim::Rng;
use std::collections::{HashMap, HashSet};

const CASES: u64 = 256;

#[derive(Debug, Clone)]
enum Op {
    Request { txn: u8, page: u8, write: bool },
    Release { txn: u8, page: u8 },
    ReleaseAll { txn: u8 },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(3) {
        0 => Op::Request {
            txn: rng.below(12) as u8,
            page: rng.below(6) as u8,
            write: rng.chance(0.5),
        },
        1 => Op::Release {
            txn: rng.below(12) as u8,
            page: rng.below(6) as u8,
        },
        _ => Op::ReleaseAll {
            txn: rng.below(12) as u8,
        },
    }
}

fn page(p: u8) -> PageId {
    PageId::new(PartitionId::new(0), p as u64)
}
fn txn(t: u8) -> TxnId {
    TxnId::new(t as u64)
}

/// Reference bookkeeping of what should currently be granted.
#[derive(Default)]
struct Model {
    /// (txn, page) -> mode for everything the table reported granted.
    granted: HashMap<(u8, u8), LockMode>,
}

impl Model {
    fn check_compatibility(&self) {
        let mut by_page: HashMap<u8, Vec<(u8, LockMode)>> = HashMap::new();
        for (&(t, p), &m) in &self.granted {
            by_page.entry(p).or_default().push((t, m));
        }
        for (p, holders) in by_page {
            let writers = holders
                .iter()
                .filter(|&&(_, m)| m == LockMode::Write)
                .count();
            if writers > 0 {
                assert_eq!(
                    holders.len(),
                    1,
                    "page {p}: writer must be alone, got {holders:?}"
                );
            }
        }
    }
}

#[test]
fn holders_are_always_compatible() {
    let mut rng = Rng::seed_from_u64(0x10C4);
    for _ in 0..CASES {
        let n_ops = rng.range_inclusive(1, 199);
        let mut lt = LockTable::new();
        let mut model = Model::default();
        // Track the modes requested by queued transactions so grants can
        // be applied to the model when they surface.
        let mut queued: HashMap<(u8, u8), LockMode> = HashMap::new();

        let apply_grants = |model: &mut Model,
                            queued: &mut HashMap<(u8, u8), LockMode>,
                            grants: Vec<(TxnId, LockMode)>,
                            p: u8| {
            for (t, m) in grants {
                let t8 = t.raw() as u8;
                queued.remove(&(t8, p));
                model.granted.insert((t8, p), m);
            }
        };

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Request {
                    txn: t,
                    page: p,
                    write,
                } => {
                    let mode = if write {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    };
                    match lt.request(txn(t), page(p), mode) {
                        LockReply::Granted => {
                            // upgrades overwrite the previous mode
                            model.granted.insert((t, p), mode);
                        }
                        LockReply::AlreadyHeld => {
                            assert!(
                                model.granted.contains_key(&(t, p)),
                                "AlreadyHeld but model has no lock for ({t},{p})"
                            );
                        }
                        LockReply::Queued => {
                            queued.insert((t, p), mode);
                        }
                    }
                }
                Op::Release { txn: t, page: p } => {
                    let grants = lt.release(txn(t), page(p));
                    model.granted.remove(&(t, p));
                    queued.remove(&(t, p));
                    apply_grants(&mut model, &mut queued, grants, p);
                }
                Op::ReleaseAll { txn: t } => {
                    let grants = lt.release_all(txn(t));
                    model.granted.retain(|&(mt, _), _| mt != t);
                    for (pg, t2, m) in grants {
                        let p8 = pg.number() as u8;
                        queued.remove(&(t2.raw() as u8, p8));
                        model.granted.insert((t2.raw() as u8, p8), m);
                    }
                }
            }
            model.check_compatibility();
        }

        // Drain: release everything; the table must be quiescent.
        let mut txns: HashSet<u8> = model.granted.keys().map(|&(t, _)| t).collect();
        txns.extend(queued.keys().map(|&(t, _)| t));
        // Queued entries not tracked per txn in `held`; release via page.
        for (t, p) in queued.keys().copied().collect::<Vec<_>>() {
            let grants = lt.release(txn(t), page(p));
            for (t2, m) in grants {
                model.granted.insert((t2.raw() as u8, p), m);
            }
        }
        let mut remaining: Vec<u8> = txns.into_iter().collect();
        remaining.sort_unstable();
        for t in remaining {
            for (pg, t2, m) in lt.release_all(txn(t)) {
                model.granted.insert((t2.raw() as u8, pg.number() as u8), m);
            }
        }
        // Releasing any still-granted stragglers (grants that surfaced
        // during draining) empties the table.
        let grantees: Vec<u8> = {
            let mut g: Vec<u8> = model.granted.keys().map(|&(t, _)| t).collect();
            g.sort_unstable();
            g.dedup();
            g
        };
        for t in grantees {
            lt.release_all(txn(t));
        }
        assert!(lt.is_quiescent(), "table not quiescent after draining");
    }
}

#[test]
fn grants_never_exceed_requests() {
    let mut rng = Rng::seed_from_u64(0x20C4);
    for _ in 0..CASES {
        let n_ops = rng.range_inclusive(1, 149);
        let mut lt = LockTable::new();
        let mut requested: HashSet<(u8, u8)> = HashSet::new();
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Request {
                    txn: t, page: p, ..
                } => {
                    requested.insert((t, p));
                    lt.request(txn(t), page(p), LockMode::Write);
                }
                Op::Release { txn: t, page: p } => {
                    for (t2, _) in lt.release(txn(t), page(p)) {
                        assert!(
                            requested.contains(&(t2.raw() as u8, p)),
                            "grant to ({t2}, {p}) never requested"
                        );
                    }
                }
                Op::ReleaseAll { txn: t } => {
                    for (pg, t2, _) in lt.release_all(txn(t)) {
                        assert!(
                            requested.contains(&(t2.raw() as u8, pg.number() as u8)),
                            "grant to ({t2}, {pg}) never requested"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn fifo_write_queue_grants_in_request_order() {
    for waiters in 2u8..20 {
        let mut lt = LockTable::new();
        lt.request(txn(100), page(0), LockMode::Write);
        for t in 0..waiters {
            assert_eq!(
                lt.request(txn(t), page(0), LockMode::Write),
                LockReply::Queued
            );
        }
        let mut current = 100u8;
        for expect in 0..waiters {
            let grants = lt.release(txn(current), page(0));
            assert_eq!(grants.len(), 1);
            assert_eq!(grants[0].0, txn(expect));
            current = expect;
        }
    }
}
