//! System configuration, mirroring Table 4.1 of the paper.
//!
//! [`SystemConfig`] is a passive parameter record: every knob of the
//! simulation model is a public field with a documented default. The
//! defaults reproduce the debit-credit settings of Table 4.1; the
//! experiment presets in `dbshare-sim` adjust only the parameters each
//! figure varies.

use desim::SimDuration;
use std::fmt;

/// Update propagation strategy between main memory and external
/// storage (\[HR83\], §2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateStrategy {
    /// All pages modified by a transaction are written to the permanent
    /// database before commit.
    Force,
    /// Only log data is written at commit; dirty pages are written back
    /// on replacement.
    NoForce,
}

/// Which concurrency/coherency protocol couples the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CouplingMode {
    /// Close coupling: global lock table in GEM, synchronous entry
    /// accesses (§3.2).
    GemLocking,
    /// Loose coupling: primary copy locking with distributed lock
    /// authority and message passing (\[Ra86\]).
    Pcl,
    /// A central special-purpose *lock engine* (\[Yu87\], discussed in
    /// §5): same global-lock-table protocol as GEM locking, but lock
    /// operations are served by a dedicated processor with service
    /// times of 100–500 µs instead of 2 µs entry accesses — the paper
    /// notes this supports "much smaller transaction rates".
    LockEngine,
}

/// Parameters of the [`CouplingMode::LockEngine`] comparison point.
#[derive(Debug, Clone, PartialEq)]
pub struct LockEngineConfig {
    /// Lock-engine processors.
    pub servers: u32,
    /// Service time per lock operation (\[Yu87\]: 100–500 µs).
    pub op_service_us: f64,
}

impl Default for LockEngineConfig {
    fn default() -> Self {
        LockEngineConfig {
            servers: 1,
            op_service_us: 300.0,
        }
    }
}

/// Workload allocation strategy (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingStrategy {
    /// Balanced random routing.
    Random,
    /// Affinity-based routing (branch partitioning for debit-credit, a
    /// routing table for traces).
    Affinity,
}

/// How NOFORCE page transfers between nodes are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageTransferMode {
    /// Page request + page transfer messages across the network
    /// (the paper's default for GEM locking).
    Network,
    /// Pages exchanged through GEM (the §6 suggestion; an extension
    /// experiment in this reproduction).
    Gem,
}

/// CPU capacity and transaction path-length parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Processors per node (Table 4.1: 4).
    pub cpus_per_node: u32,
    /// Capacity per processor in MIPS (Table 4.1: 10).
    pub mips_per_cpu: f64,
    /// Mean instructions for begin-of-transaction processing.
    pub bot_instr: f64,
    /// Mean instructions for end-of-transaction (commit) processing.
    pub eot_instr: f64,
    /// Mean instructions per record access. All three are sampled from
    /// exponential distributions, as in §3.2.
    pub per_access_instr: f64,
}

impl Default for CpuConfig {
    /// Debit-credit defaults: 4 × 10 MIPS; 250 000 instructions per
    /// transaction split as 20k BOT + 4 × 50k accesses + 30k EOT.
    fn default() -> Self {
        CpuConfig {
            cpus_per_node: 4,
            mips_per_cpu: 10.0,
            bot_instr: 20_000.0,
            eot_instr: 30_000.0,
            per_access_instr: 50_000.0,
        }
    }
}

impl CpuConfig {
    /// Aggregate node capacity in instructions per second.
    pub fn node_ips(&self) -> f64 {
        self.cpus_per_node as f64 * self.mips_per_cpu * 1e6
    }

    /// Time to execute `instr` instructions on one processor.
    pub fn exec_time(&self, instr: f64) -> SimDuration {
        SimDuration::from_secs_f64(instr / (self.mips_per_cpu * 1e6))
    }
}

/// Global Extended Memory parameters (Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GemConfig {
    /// Number of GEM servers (Table 4.1: 1).
    pub servers: u32,
    /// Average access time per page (Table 4.1: 50 µs).
    pub page_access_us: f64,
    /// Average access time per entry (Table 4.1: 2 µs).
    pub entry_access_us: f64,
    /// CPU instructions to initiate a GEM page I/O (Table 4.1: 300,
    /// versus 3000 for disk I/O).
    pub io_init_instr: f64,
    /// CPU instructions to process one lock or unlock against the
    /// global lock table (excluding the synchronous entry-access time).
    pub lock_op_instr: f64,
    /// GEM entry accesses per lock/unlock (read + Compare&Swap write).
    pub entries_per_lock_op: u32,
}

impl Default for GemConfig {
    fn default() -> Self {
        GemConfig {
            servers: 1,
            page_access_us: 50.0,
            entry_access_us: 2.0,
            io_init_instr: 300.0,
            lock_op_instr: 300.0,
            entries_per_lock_op: 2,
        }
    }
}

/// Communication system parameters (Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CommConfig {
    /// Network bandwidth in MB/s (Table 4.1: 10).
    pub bandwidth_mb_per_s: f64,
    /// Size of a "short" (control) message in bytes (Table 4.1: 100 B).
    pub short_msg_bytes: u64,
    /// Size of a "long" (page transfer) message in bytes (Table 4.1: 4 KB).
    pub long_msg_bytes: u64,
    /// CPU instructions per send *or* receive of a short message
    /// (Table 4.1: 5000).
    pub short_msg_instr: f64,
    /// CPU instructions per send *or* receive of a long message
    /// (Table 4.1: 8000).
    pub long_msg_instr: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            bandwidth_mb_per_s: 10.0,
            short_msg_bytes: 100,
            long_msg_bytes: 4096,
            short_msg_instr: 5_000.0,
            long_msg_instr: 8_000.0,
        }
    }
}

impl CommConfig {
    /// Wire time of a message of `bytes` at the configured bandwidth.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / (self.bandwidth_mb_per_s * 1e6))
    }
}

/// Disk subsystem parameters (Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Average disk access time for database disks (Table 4.1: 15 ms).
    pub db_disk_ms: f64,
    /// Average disk access time for log disks (Table 4.1: 5 ms —
    /// sequential access shortens seeks).
    pub log_disk_ms: f64,
    /// Average controller service time (Table 4.1: 1 ms).
    pub controller_ms: f64,
    /// Average page transfer time between main memory and controller
    /// (Table 4.1: 0.4 ms).
    pub transfer_ms: f64,
    /// CPU instructions per disk page I/O (Table 4.1: 3000).
    pub io_instr_per_page: f64,
    /// Log disks per node (the paper allocates enough devices to avoid
    /// I/O bottlenecks; logging is per node).
    pub log_disks_per_node: u32,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            db_disk_ms: 15.0,
            log_disk_ms: 5.0,
            controller_ms: 1.0,
            transfer_ms: 0.4,
            io_instr_per_page: 3_000.0,
            log_disks_per_node: 2,
        }
    }
}

/// Where a database partition's pages live (§3.3 / §4.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StorageAllocation {
    /// Conventional magnetic disks (an array of `disks` devices,
    /// pages striped across them).
    Disk {
        /// Number of disks the partition is striped over.
        disks: u32,
    },
    /// Disks fronted by a shared controller cache implementing a
    /// global database buffer (§4.4, Fig. 4.4).
    CachedDisk {
        /// Number of disks behind the cache.
        disks: u32,
        /// Cache capacity in pages.
        cache_pages: u64,
        /// Non-volatile caches absorb writes too; volatile ones only
        /// serve read hits.
        nonvolatile: bool,
    },
    /// Partition resident in GEM (§4.4, Fig. 4.3): 50 µs synchronous
    /// page accesses, no disk involved.
    Gem,
    /// Disks fronted by a small *non-volatile GEM write buffer* (§2
    /// usage form 2): writes complete in GEM (~50 µs) and are destaged
    /// to disk asynchronously; reads of recently written pages are
    /// served from the buffer.
    WriteBufferedDisk {
        /// Number of disks behind the write buffer.
        disks: u32,
        /// Write-buffer capacity in pages (small by design).
        buffer_pages: u64,
    },
}

impl StorageAllocation {
    /// Convenience: a plain disk array.
    pub const fn disk(disks: u32) -> Self {
        StorageAllocation::Disk { disks }
    }
}

/// Static description of one database partition (file).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Human-readable name ("BRANCH/TELLER", "ACCOUNT", ...).
    pub name: String,
    /// Partition size in pages.
    pub pages: u64,
    /// Whether page locks are acquired for this partition (Table 4.1
    /// switches locking off for HISTORY, whose tail is latched).
    pub locking: bool,
    /// Storage device allocation.
    pub storage: StorageAllocation,
}

/// Where commit log records are written (§2: keeping log files
/// resident in GEM avoids the log-disk delay entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogStorage {
    /// Per-node log disks (Table 4.1: 5 ms + controller + transfer).
    Disk,
    /// Log records written to GEM (~50 µs page writes).
    Gem,
}

/// A node-failure injection (reproduction extension, motivated by the
/// paper's §1 availability discussion): the node crashes, loses its
/// volatile state (buffer, and under PCL its lock-authority tables),
/// and rejoins after `recovery_secs` of log-based recovery. GEM's
/// non-volatility preserves the global lock table across the crash —
/// the close coupling's availability advantage, made measurable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashConfig {
    /// The node that fails (0-based).
    pub node: u16,
    /// Crash instant in simulated seconds.
    pub at_secs: f64,
    /// Recovery duration in simulated seconds; afterwards the node
    /// rejoins with a cold buffer.
    pub recovery_secs: f64,
}

/// Run-control parameters: seeding and run length.
#[derive(Debug, Clone, PartialEq)]
pub struct RunControl {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Transactions completed (system-wide) before statistics start.
    pub warmup_txns: u64,
    /// Transactions measured after warm-up; the run ends when this
    /// many measured transactions have committed.
    pub measured_txns: u64,
    /// Optional hard stop in simulated seconds. An overloaded (open)
    /// system never reaches its measured-transaction target — this cap
    /// ends the run anyway and the report is flagged as truncated.
    pub max_sim_secs: Option<f64>,
    /// Optional no-progress watchdog threshold in simulated seconds.
    /// When set and no transaction commits for this long while some
    /// are live, the engine dumps diagnostic state to stderr (and
    /// emits a `Watchdog` trace event if tracing is on). `None`
    /// disables the watchdog entirely.
    pub watchdog_secs: Option<f64>,
    /// Host threads the engine may use for one run (`1` = the fully
    /// serial event loop). Extra cores run deterministic pipeline
    /// stages — arrival pre-generation, statistics folding, trace
    /// sinking — and results stay bit-identical at every setting; see
    /// DESIGN.md. Values beyond the stage count are accepted and
    /// clamped to the stages the run can actually use.
    pub cores: u32,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl {
            seed: 0xDB5_4A6E,
            warmup_txns: 2_000,
            measured_txns: 20_000,
            max_sim_secs: None,
            watchdog_secs: None,
            cores: 1,
        }
    }
}

/// The complete parameter record for one simulation run.
///
/// Construct with [`SystemConfig::debit_credit`] (Table 4.1 defaults)
/// and adjust fields, then pass to the engine. The engine calls
/// [`validate`](SystemConfig::validate) before running.
///
/// ```rust
/// use dbshare_model::{SystemConfig, CouplingMode, UpdateStrategy,
///                     PartitionConfig, StorageAllocation};
/// let mut cfg = SystemConfig::debit_credit(4);
/// cfg.coupling = CouplingMode::Pcl;
/// cfg.update = UpdateStrategy::NoForce;
/// // The workload builders normally fill in the database layout:
/// cfg.partitions.push(PartitionConfig {
///     name: "ACCOUNT".into(),
///     pages: 1_000_000,
///     locking: true,
///     storage: StorageAllocation::disk(5),
/// });
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of processing nodes (Table 4.1: 1–10).
    pub nodes: u16,
    /// Transaction arrival rate per node in TPS (Table 4.1: 100).
    pub arrival_tps_per_node: f64,
    /// Multiprogramming level per node; chosen high enough that no
    /// input queuing occurs, as in §4.1.
    pub mpl_per_node: u32,
    /// Concurrency/coherency protocol.
    pub coupling: CouplingMode,
    /// FORCE or NOFORCE update propagation.
    pub update: UpdateStrategy,
    /// Random or affinity-based transaction routing.
    pub routing: RoutingStrategy,
    /// Page-transfer channel for NOFORCE misses under GEM locking.
    pub page_transfer: PageTransferMode,
    /// Database buffer frames per node (Table 4.1: 200 or 1000).
    pub buffer_pages_per_node: u64,
    /// CPU parameters.
    pub cpu: CpuConfig,
    /// GEM parameters.
    pub gem: GemConfig,
    /// Communication parameters.
    pub comm: CommConfig,
    /// Disk parameters.
    pub disk: DiskConfig,
    /// The database layout (filled in by the workload builders).
    pub partitions: Vec<PartitionConfig>,
    /// CPU instructions for locally processing a PCL lock or unlock.
    pub pcl_local_lock_instr: f64,
    /// Enables the PCL read optimization (\[Ra86\]): read locks on pages
    /// with a valid local copy and an outstanding read authorization
    /// are processed without messages. Used for the §4.6 trace runs.
    pub pcl_read_optimization: bool,
    /// Where commit log records go (§2 extension; Table 4.1 uses log
    /// disks).
    pub log_storage: LogStorage,
    /// Lock-engine parameters (only used with
    /// [`CouplingMode::LockEngine`]).
    pub lock_engine: LockEngineConfig,
    /// Optional node-failure injection.
    pub crash: Option<CrashConfig>,
    /// Pre-size budget (entries) for each page-metadata structure —
    /// lock tables, GLA page maps, read-authorization tables. `None`
    /// keeps the historical dense pre-sizing (twice the buffer
    /// capacity per node); `Some(n)` caps every such pre-allocation at
    /// `n` entries, with entries past the budget materialized lazily
    /// on first touch. Purely a memory/allocation knob: results are
    /// bit-identical at every setting (no hash-map iteration order
    /// escapes into outputs), which the scale scenarios rely on to
    /// keep 200-node configs from pre-allocating
    /// `buffer × nodes`-sized tables up front.
    pub page_metadata_budget: Option<usize>,
    /// Run length and seeding.
    pub run: RunControl,
}

impl SystemConfig {
    /// Table 4.1 defaults for `nodes` nodes *without* the database
    /// layout (partitions are added by the workload builders in
    /// `dbshare-workload`).
    pub fn debit_credit(nodes: u16) -> Self {
        SystemConfig {
            nodes,
            arrival_tps_per_node: 100.0,
            mpl_per_node: 64,
            coupling: CouplingMode::GemLocking,
            update: UpdateStrategy::NoForce,
            routing: RoutingStrategy::Affinity,
            page_transfer: PageTransferMode::Network,
            buffer_pages_per_node: 200,
            cpu: CpuConfig::default(),
            gem: GemConfig::default(),
            comm: CommConfig::default(),
            disk: DiskConfig::default(),
            partitions: Vec::new(),
            pcl_local_lock_instr: 300.0,
            pcl_read_optimization: false,
            log_storage: LogStorage::Disk,
            lock_engine: LockEngineConfig::default(),
            crash: None,
            page_metadata_budget: None,
            run: RunControl::default(),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated
    /// constraint (zero nodes, empty database, non-positive rates...).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::new("nodes must be >= 1"));
        }
        if self.arrival_tps_per_node <= 0.0 || !self.arrival_tps_per_node.is_finite() {
            return Err(ConfigError::new("arrival rate must be positive"));
        }
        if self.mpl_per_node == 0 {
            return Err(ConfigError::new("MPL must be >= 1"));
        }
        if self.buffer_pages_per_node == 0 {
            return Err(ConfigError::new("buffer must hold at least one page"));
        }
        if self.partitions.is_empty() {
            return Err(ConfigError::new(
                "no partitions: use a workload builder to populate the database layout",
            ));
        }
        if self.cpu.cpus_per_node == 0 || self.cpu.mips_per_cpu <= 0.0 {
            return Err(ConfigError::new("CPU configuration must be positive"));
        }
        if self.gem.servers == 0 {
            return Err(ConfigError::new("GEM needs at least one server"));
        }
        if self.lock_engine.servers == 0 || self.lock_engine.op_service_us <= 0.0 {
            return Err(ConfigError::new(
                "lock engine needs servers and service time",
            ));
        }
        if self.comm.bandwidth_mb_per_s <= 0.0 {
            return Err(ConfigError::new("network bandwidth must be positive"));
        }
        for p in &self.partitions {
            if p.pages == 0 {
                return Err(ConfigError::new("partition with zero pages"));
            }
            match p.storage {
                StorageAllocation::Disk { disks: 0 } => {
                    return Err(ConfigError::new("disk array with zero disks"));
                }
                StorageAllocation::CachedDisk {
                    disks, cache_pages, ..
                } if disks == 0 || cache_pages == 0 => {
                    return Err(ConfigError::new("cached disk array needs disks and cache"));
                }
                StorageAllocation::WriteBufferedDisk {
                    disks,
                    buffer_pages,
                } if disks == 0 || buffer_pages == 0 => {
                    return Err(ConfigError::new(
                        "write-buffered disk array needs disks and a buffer",
                    ));
                }
                _ => {}
            }
        }
        if self.run.measured_txns == 0 {
            return Err(ConfigError::new("measured_txns must be positive"));
        }
        if self.run.cores == 0 {
            return Err(ConfigError::new("cores must be >= 1"));
        }
        if let Some(c) = self.crash {
            if c.node >= self.nodes {
                return Err(ConfigError::new("crash node out of range"));
            }
            if self.nodes < 2 {
                return Err(ConfigError::new("crashing the only node halts the system"));
            }
            if c.at_secs < 0.0 || c.recovery_secs <= 0.0 {
                return Err(ConfigError::new("crash times must be positive"));
            }
        }
        Ok(())
    }

    /// Offered CPU utilization from pure transaction path length (not
    /// counting I/O and message overhead): `rate × pathlength / capacity`.
    ///
    /// For Table 4.1 (100 TPS, 250k instructions, 40 MIPS) this is the
    /// paper's "at least 62.5%".
    pub fn base_cpu_utilization(&self, accesses_per_txn: f64) -> f64 {
        let path =
            self.cpu.bot_instr + self.cpu.eot_instr + accesses_per_txn * self.cpu.per_access_instr;
        self.arrival_tps_per_node * path / self.cpu.node_ips()
    }

    /// GEM page access time as a duration.
    pub fn gem_page_time(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.gem.page_access_us)
    }

    /// GEM entry access time as a duration.
    pub fn gem_entry_time(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.gem.entry_access_us)
    }
}

/// Error returned by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_partition(mut cfg: SystemConfig) -> SystemConfig {
        cfg.partitions.push(PartitionConfig {
            name: "X".into(),
            pages: 10,
            locking: true,
            storage: StorageAllocation::disk(1),
        });
        cfg
    }

    #[test]
    fn table_4_1_defaults() {
        let cfg = SystemConfig::debit_credit(10);
        assert_eq!(cfg.nodes, 10);
        assert_eq!(cfg.arrival_tps_per_node, 100.0);
        assert_eq!(cfg.cpu.cpus_per_node, 4);
        assert_eq!(cfg.cpu.mips_per_cpu, 10.0);
        assert_eq!(cfg.buffer_pages_per_node, 200);
        assert_eq!(cfg.gem.page_access_us, 50.0);
        assert_eq!(cfg.gem.entry_access_us, 2.0);
        assert_eq!(cfg.comm.short_msg_instr, 5_000.0);
        assert_eq!(cfg.comm.long_msg_instr, 8_000.0);
        assert_eq!(cfg.disk.db_disk_ms, 15.0);
        assert_eq!(cfg.disk.log_disk_ms, 5.0);
        assert_eq!(cfg.disk.io_instr_per_page, 3_000.0);
    }

    #[test]
    fn pathlength_is_250k() {
        let cpu = CpuConfig::default();
        let total = cpu.bot_instr + cpu.eot_instr + 4.0 * cpu.per_access_instr;
        assert_eq!(total, 250_000.0);
    }

    #[test]
    fn base_utilization_matches_paper() {
        let cfg = with_partition(SystemConfig::debit_credit(1));
        // 100 TPS × 250k instr / 40 MIPS = 62.5%
        let u = cfg.base_cpu_utilization(4.0);
        assert!((u - 0.625).abs() < 1e-9, "{u}");
    }

    #[test]
    fn disk_access_time_components() {
        let d = DiskConfig::default();
        // §4.1: average access time per page without queueing is
        // 16.4 ms for DB disks, 6.4 ms for log disks, 1.4 ms for cache hits.
        assert_eq!(d.db_disk_ms + d.controller_ms + d.transfer_ms, 16.4);
        assert_eq!(d.log_disk_ms + d.controller_ms + d.transfer_ms, 6.4);
        assert!((d.controller_ms + d.transfer_ms - 1.4).abs() < 1e-12);
    }

    #[test]
    fn exec_time_and_wire_time() {
        let cpu = CpuConfig::default();
        // 10k instructions at 10 MIPS = 1 ms
        assert_eq!(cpu.exec_time(10_000.0), SimDuration::from_millis(1));
        let comm = CommConfig::default();
        // 100 B at 10 MB/s = 10 µs; 4 KB = 409.6 µs
        assert_eq!(comm.wire_time(100), SimDuration::from_micros(10));
        assert_eq!(comm.wire_time(4096).as_nanos(), 409_600);
    }

    #[test]
    fn validate_accepts_good_config() {
        let cfg = with_partition(SystemConfig::debit_credit(2));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let good = with_partition(SystemConfig::debit_credit(2));

        let mut c = good.clone();
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.arrival_tps_per_node = 0.0;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.partitions.clear();
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.partitions[0].pages = 0;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.partitions[0].storage = StorageAllocation::disk(0);
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.buffer_pages_per_node = 0;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.run.measured_txns = 0;
        assert!(c.validate().is_err());

        let mut c = good;
        c.run.cores = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_error_displays() {
        let cfg = SystemConfig::debit_credit(0);
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("nodes"));
    }
}
