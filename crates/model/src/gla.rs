//! Global Lock Authority (GLA) maps for primary copy locking.
//!
//! PCL logically partitions the database and assigns each node the
//! synchronization responsibility (GLA) for one partition (\[Ra86\],
//! §3.2 of the paper). The map from page to GLA node is computed by the
//! workload builders (which know the reference distribution) and
//! consumed by the lock manager, so it lives here in the shared model.

use crate::{NodeId, PageId};
use std::collections::HashMap;

/// Per-partition GLA assignment rule.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionGla {
    /// Pages are grouped into `units` equal blocks of `unit_pages`
    /// pages each (debit-credit: one unit per branch), and unit `u` is
    /// assigned to node `u * nodes / units` — contiguous ranges, as in
    /// the paper's branch-based GLA allocation.
    Ranged {
        /// Number of logical units (branches) in the partition.
        units: u64,
        /// Pages per unit.
        unit_pages: u64,
    },
    /// Explicit per-page assignment (trace workloads); pages absent
    /// from the map fall back to hashing.
    PerPage(HashMap<u64, NodeId>),
    /// Pages of this partition are hashed across nodes.
    Hashed,
    /// Every page of this partition is assigned to one fixed node
    /// (central lock manager configurations).
    Fixed(NodeId),
}

/// Maps every page to the node holding its global lock authority.
///
/// ```rust
/// use dbshare_model::{gla::{GlaMap, PartitionGla}, PageId, PartitionId, NodeId};
/// // 100 branches of 1 page each over 4 nodes: branch 0 -> N0, branch 99 -> N3
/// let map = GlaMap::new(4, vec![PartitionGla::Ranged { units: 100, unit_pages: 1 }]);
/// assert_eq!(map.gla_of(PageId::new(PartitionId::new(0), 0)), NodeId::new(0));
/// assert_eq!(map.gla_of(PageId::new(PartitionId::new(0), 99)), NodeId::new(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlaMap {
    nodes: u16,
    rules: Vec<PartitionGla>,
}

impl GlaMap {
    /// Creates a map over `nodes` nodes with one rule per partition
    /// (indexed by partition id).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: u16, rules: Vec<PartitionGla>) -> Self {
        assert!(nodes > 0, "GLA map needs at least one node");
        GlaMap { nodes, rules }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// A map assigning *every* page of `partitions` partitions to node
    /// 0: the classic central lock manager, where one node processes
    /// the whole system's lock traffic by messages (\[Ra91b\] surveys
    /// this baseline).
    pub fn central(nodes: u16, partitions: usize) -> Self {
        GlaMap::new(nodes, vec![PartitionGla::Fixed(NodeId::new(0)); partitions])
    }

    /// The GLA node of `page`. Partitions without a rule fall back to
    /// hashing.
    pub fn gla_of(&self, page: PageId) -> NodeId {
        let rule = self.rules.get(page.partition().index());
        match rule {
            Some(PartitionGla::Ranged { units, unit_pages }) => {
                let unit = (page.number() / unit_pages).min(units - 1);
                NodeId::new((unit as u128 * self.nodes as u128 / *units as u128) as u16)
            }
            Some(PartitionGla::PerPage(map)) => map
                .get(&page.number())
                .copied()
                .unwrap_or_else(|| self.hash_node(page)),
            Some(PartitionGla::Fixed(node)) => *node,
            Some(PartitionGla::Hashed) | None => self.hash_node(page),
        }
    }

    fn hash_node(&self, page: PageId) -> NodeId {
        // FNV-1a over (partition, number) for a stable spread.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in page
            .partition()
            .raw()
            .to_le_bytes()
            .into_iter()
            .chain(page.number().to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        NodeId::new((h % self.nodes as u64) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionId;

    fn page(p: u16, n: u64) -> PageId {
        PageId::new(PartitionId::new(p), n)
    }

    #[test]
    fn ranged_assignment_contiguous_and_balanced() {
        // 100 units, 10 pages each, 4 nodes: each node owns 25 units.
        let map = GlaMap::new(
            4,
            vec![PartitionGla::Ranged {
                units: 100,
                unit_pages: 10,
            }],
        );
        let mut counts = [0u32; 4];
        for unit in 0..100u64 {
            let n = map.gla_of(page(0, unit * 10 + 3));
            counts[n.index()] += 1;
            // all pages of one unit map to the same node
            assert_eq!(n, map.gla_of(page(0, unit * 10)));
            assert_eq!(n, map.gla_of(page(0, unit * 10 + 9)));
        }
        assert_eq!(counts, [25, 25, 25, 25]);
        // contiguity: units 0..24 on node 0
        assert_eq!(map.gla_of(page(0, 0)), NodeId::new(0));
        assert_eq!(map.gla_of(page(0, 249)), NodeId::new(0));
        assert_eq!(map.gla_of(page(0, 250)), NodeId::new(1));
    }

    #[test]
    fn ranged_clamps_overflow_pages() {
        let map = GlaMap::new(
            2,
            vec![PartitionGla::Ranged {
                units: 10,
                unit_pages: 1,
            }],
        );
        // page beyond the nominal units clamps to the last unit
        assert_eq!(map.gla_of(page(0, 500)), NodeId::new(1));
    }

    #[test]
    fn per_page_with_hash_fallback() {
        let mut m = HashMap::new();
        m.insert(7u64, NodeId::new(2));
        let map = GlaMap::new(3, vec![PartitionGla::PerPage(m)]);
        assert_eq!(map.gla_of(page(0, 7)), NodeId::new(2));
        let fallback = map.gla_of(page(0, 8));
        assert!(fallback.index() < 3);
    }

    #[test]
    fn hashed_spread_is_roughly_uniform() {
        let map = GlaMap::new(4, vec![PartitionGla::Hashed]);
        let mut counts = [0u32; 4];
        for n in 0..10_000u64 {
            counts[map.gla_of(page(0, n)).index()] += 1;
        }
        for c in counts {
            assert!((2_000..3_000).contains(&c), "{c}");
        }
    }

    #[test]
    fn missing_rule_falls_back_to_hash() {
        let map = GlaMap::new(2, vec![]);
        let n = map.gla_of(page(9, 1234));
        assert!(n.index() < 2);
    }

    #[test]
    fn central_map_sends_everything_to_node_zero() {
        let map = GlaMap::central(4, 3);
        for part in 0..3u16 {
            for n in [0u64, 17, 9999] {
                assert_eq!(
                    map.gla_of(PageId::new(PartitionId::new(part), n)),
                    NodeId::new(0)
                );
            }
        }
    }

    #[test]
    fn single_node_everything_local() {
        let map = GlaMap::new(
            1,
            vec![PartitionGla::Ranged {
                units: 100,
                unit_pages: 1,
            }],
        );
        for i in 0..100 {
            assert_eq!(map.gla_of(page(0, i)), NodeId::new(0));
        }
    }
}
