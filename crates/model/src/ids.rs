//! Identifier newtypes for the simulated system.
//!
//! Newtypes (rather than raw integers) prevent mixing up node indices,
//! partition indices, and page numbers — bugs that are otherwise easy
//! to introduce in a simulator that shuffles all three constantly.

use std::fmt;

/// Identifies a processing node (0-based).
///
/// ```rust
/// use dbshare_model::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a 0-based index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }
    /// The 0-based index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
    /// The raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Identifies a database partition (a file, in the paper's terms:
/// BRANCH/TELLER, ACCOUNT, HISTORY, or one of the trace's files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(u16);

impl PartitionId {
    /// Creates a partition id from a 0-based index.
    pub const fn new(index: u16) -> Self {
        PartitionId(index)
    }
    /// The 0-based index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
    /// The raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a database page: a partition plus the page number inside
/// that partition.
///
/// ```rust
/// use dbshare_model::{PageId, PartitionId};
/// let p = PageId::new(PartitionId::new(1), 42);
/// assert_eq!(p.partition(), PartitionId::new(1));
/// assert_eq!(p.number(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    partition: PartitionId,
    number: u64,
}

impl PageId {
    /// Creates a page id.
    pub const fn new(partition: PartitionId, number: u64) -> Self {
        PageId { partition, number }
    }
    /// The partition (file) this page belongs to.
    pub const fn partition(self) -> PartitionId {
        self.partition
    }
    /// The page number within the partition.
    pub const fn number(self) -> u64 {
        self.number
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.partition, self.number)
    }
}

/// Identifies a transaction instance (unique over a simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(u64);

impl TxnId {
    /// Creates a transaction id from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        TxnId(raw)
    }
    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a transaction *type* (debit-credit has one; the trace
/// workload has twelve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnTypeId(u16);

impl TxnTypeId {
    /// Creates a type id from a 0-based index.
    pub const fn new(index: u16) -> Self {
        TxnTypeId(index)
    }
    /// The 0-based index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TT{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        // This test is mostly a compile-time statement; runtime checks
        // confirm accessor behaviour.
        assert_eq!(NodeId::new(2).index(), 2);
        assert_eq!(PartitionId::new(7).index(), 7);
        assert_eq!(TxnId::new(9).raw(), 9);
        assert_eq!(TxnTypeId::new(4).index(), 4);
    }

    #[test]
    fn page_id_hash_and_eq() {
        let a = PageId::new(PartitionId::new(0), 5);
        let b = PageId::new(PartitionId::new(0), 5);
        let c = PageId::new(PartitionId::new(1), 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<PageId> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(1).to_string(), "N1");
        assert_eq!(PageId::new(PartitionId::new(2), 30).to_string(), "P2:30");
        assert_eq!(TxnId::new(12).to_string(), "T12");
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        let a = PageId::new(PartitionId::new(0), 9);
        let b = PageId::new(PartitionId::new(1), 0);
        assert!(a < b);
    }
}
