//! # dbshare-model — shared domain model
//!
//! Identifier newtypes, database-layout descriptions, transaction
//! specifications, and the [`SystemConfig`] consumed by the simulator.
//! All crates of the `dbshare` workspace communicate through the types
//! defined here.
//!
//! The defaults in [`config`] mirror Table 4.1 of Rahm's ICDCS 1993
//! paper (debit-credit parameter settings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod txn;

pub mod config;
pub mod gla;

pub use config::{
    CommConfig, CouplingMode, CpuConfig, CrashConfig, DiskConfig, GemConfig, LockEngineConfig,
    LogStorage, PageTransferMode, PartitionConfig, RoutingStrategy, RunControl, StorageAllocation,
    SystemConfig, UpdateStrategy,
};
pub use ids::{NodeId, PageId, PartitionId, TxnId, TxnTypeId};
pub use txn::{AccessMode, PageRef, TxnSpec};
