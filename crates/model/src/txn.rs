//! Transaction specifications as produced by the workload generators.

use crate::{PageId, TxnTypeId};

/// Read or write access to a page (determines the lock mode requested
/// and whether the page becomes dirty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Shared access; requests a read lock.
    Read,
    /// Exclusive access; requests a write lock and dirties the page.
    Write,
}

impl AccessMode {
    /// True for [`AccessMode::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessMode::Write)
    }
}

/// One database page reference of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRef {
    /// The referenced page.
    pub page: PageId,
    /// Read or write.
    pub mode: AccessMode,
    /// Whether the page is appended rather than read from storage
    /// (HISTORY-style sequential inserts never need a read I/O).
    pub append: bool,
    /// Record accesses performed on this page (CPU is charged per
    /// *record* access, §3.2; clustering can put several accessed
    /// records — e.g. a BRANCH and its TELLER — on one page).
    pub records: u16,
}

impl PageRef {
    /// A normal read reference (one record).
    pub const fn read(page: PageId) -> Self {
        PageRef {
            page,
            mode: AccessMode::Read,
            append: false,
            records: 1,
        }
    }
    /// A normal write (read-modify-write) reference (one record).
    pub const fn write(page: PageId) -> Self {
        PageRef {
            page,
            mode: AccessMode::Write,
            append: false,
            records: 1,
        }
    }
    /// An append-style write (no read I/O needed if absent from the buffer).
    pub const fn append(page: PageId) -> Self {
        PageRef {
            page,
            mode: AccessMode::Write,
            append: true,
            records: 1,
        }
    }
    /// Sets the number of record accesses on this page.
    ///
    /// # Panics
    ///
    /// Panics if `records == 0`.
    pub fn with_records(mut self, records: u16) -> Self {
        assert!(records > 0, "a reference accesses at least one record");
        self.records = records;
        self
    }
}

/// A complete transaction specification: its type, the unit of affinity
/// used by affinity-based routing (the branch for debit-credit), and
/// the ordered page references it performs.
///
/// ```rust
/// use dbshare_model::{TxnSpec, TxnTypeId, PageRef, PageId, PartitionId};
/// let spec = TxnSpec::new(
///     TxnTypeId::new(0),
///     7,
///     vec![PageRef::write(PageId::new(PartitionId::new(0), 3))],
/// );
/// assert_eq!(spec.refs().len(), 1);
/// assert!(spec.is_update());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    txn_type: TxnTypeId,
    affinity_key: u64,
    refs: Vec<PageRef>,
}

impl TxnSpec {
    /// Creates a specification from its parts.
    pub fn new(txn_type: TxnTypeId, affinity_key: u64, refs: Vec<PageRef>) -> Self {
        TxnSpec {
            txn_type,
            affinity_key,
            refs,
        }
    }

    /// The transaction type.
    pub fn txn_type(&self) -> TxnTypeId {
        self.txn_type
    }

    /// The affinity key used by affinity-based routing (the branch
    /// number for debit-credit, the transaction type for traces).
    pub fn affinity_key(&self) -> u64 {
        self.affinity_key
    }

    /// The ordered page references.
    pub fn refs(&self) -> &[PageRef] {
        &self.refs
    }

    /// True if the transaction writes at least one page.
    pub fn is_update(&self) -> bool {
        self.refs.iter().any(|r| r.mode.is_write())
    }

    /// Number of write references.
    pub fn write_count(&self) -> usize {
        self.refs.iter().filter(|r| r.mode.is_write()).count()
    }

    /// Consumes the spec, returning its reference buffer for reuse
    /// (cleared). Lets workload generators recycle the per-transaction
    /// `Vec` instead of allocating a fresh one per draw.
    pub fn into_refs(self) -> Vec<PageRef> {
        let mut refs = self.refs;
        refs.clear();
        refs
    }
}

impl Default for TxnSpec {
    /// An empty placeholder spec (no references). Used when moving a
    /// spec out of retired transaction state without allocating.
    fn default() -> Self {
        TxnSpec::new(TxnTypeId::new(0), 0, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PageId, PartitionId};

    fn page(p: u16, n: u64) -> PageId {
        PageId::new(PartitionId::new(p), n)
    }

    #[test]
    fn access_mode_predicates() {
        assert!(AccessMode::Write.is_write());
        assert!(!AccessMode::Read.is_write());
    }

    #[test]
    fn page_ref_constructors() {
        let r = PageRef::read(page(0, 1));
        assert_eq!(r.mode, AccessMode::Read);
        assert!(!r.append);
        let w = PageRef::write(page(0, 1));
        assert!(w.mode.is_write());
        let a = PageRef::append(page(1, 2));
        assert!(a.mode.is_write() && a.append);
    }

    #[test]
    fn txn_spec_update_detection() {
        let read_only = TxnSpec::new(
            TxnTypeId::new(0),
            0,
            vec![PageRef::read(page(0, 1)), PageRef::read(page(0, 2))],
        );
        assert!(!read_only.is_update());
        assert_eq!(read_only.write_count(), 0);

        let update = TxnSpec::new(
            TxnTypeId::new(1),
            3,
            vec![PageRef::read(page(0, 1)), PageRef::write(page(1, 9))],
        );
        assert!(update.is_update());
        assert_eq!(update.write_count(), 1);
        assert_eq!(update.affinity_key(), 3);
        assert_eq!(update.txn_type(), TxnTypeId::new(1));
    }
}
