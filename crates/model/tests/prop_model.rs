//! Property-based tests of the shared model: GLA maps partition the
//! page space deterministically and in balance; configuration
//! validation accepts exactly the documented parameter space.

use dbshare_model::gla::{GlaMap, PartitionGla};
use dbshare_model::{PageId, PartitionConfig, PartitionId, StorageAllocation, SystemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ranged_gla_is_total_deterministic_and_balanced(
        nodes in 1u16..12,
        units in 1u64..500,
        unit_pages in 1u64..20,
        probe in prop::collection::vec(0u64..10_000, 1..50),
    ) {
        let map = GlaMap::new(nodes, vec![PartitionGla::Ranged { units, unit_pages }]);
        // total + deterministic
        for &p in &probe {
            let pg = PageId::new(PartitionId::new(0), p);
            let a = map.gla_of(pg);
            let b = map.gla_of(pg);
            prop_assert_eq!(a, b);
            prop_assert!(a.index() < nodes as usize);
        }
        // balance: unit counts per node differ by at most ceil(units/nodes)
        let mut counts = vec![0u64; nodes as usize];
        for u in 0..units {
            counts[map.gla_of(PageId::new(PartitionId::new(0), u * unit_pages)).index()] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
        // monotone: unit -> node assignment never decreases
        let mut last = 0usize;
        for u in 0..units {
            let n = map.gla_of(PageId::new(PartitionId::new(0), u * unit_pages)).index();
            prop_assert!(n >= last, "assignment must be monotone");
            last = n;
        }
    }

    #[test]
    fn hashed_gla_is_total_and_roughly_uniform(nodes in 1u16..10) {
        let map = GlaMap::new(nodes, vec![PartitionGla::Hashed]);
        let mut counts = vec![0u64; nodes as usize];
        let probes = 4_000u64;
        for p in 0..probes {
            counts[map.gla_of(PageId::new(PartitionId::new(0), p)).index()] += 1;
        }
        let expect = probes as f64 / nodes as f64;
        for &c in &counts {
            prop_assert!((c as f64) > expect * 0.7 && (c as f64) < expect * 1.3,
                "skewed hash: {counts:?}");
        }
    }

    #[test]
    fn validation_accepts_all_positive_configs(
        nodes in 1u16..16,
        tps in 1.0f64..500.0,
        buffer in 1u64..5_000,
        pages in 1u64..1_000_000,
        disks in 1u32..64,
    ) {
        let mut cfg = SystemConfig::debit_credit(nodes);
        cfg.arrival_tps_per_node = tps;
        cfg.buffer_pages_per_node = buffer;
        cfg.partitions.push(PartitionConfig {
            name: "P".into(),
            pages,
            locking: true,
            storage: StorageAllocation::disk(disks),
        });
        prop_assert!(cfg.validate().is_ok());
    }

    #[test]
    fn exec_and_wire_times_scale_linearly(instr in 1.0f64..1e7, bytes in 1u64..1_000_000) {
        let cfg = SystemConfig::debit_credit(1);
        let t1 = cfg.cpu.exec_time(instr);
        let t2 = cfg.cpu.exec_time(instr * 2.0);
        // within rounding of the nanosecond clock
        let diff = (t2.as_nanos() as i128 - 2 * t1.as_nanos() as i128).abs();
        prop_assert!(diff <= 2, "exec not linear: {t1:?} {t2:?}");

        let w1 = cfg.comm.wire_time(bytes);
        let w2 = cfg.comm.wire_time(bytes * 2);
        let wdiff = (w2.as_nanos() as i128 - 2 * w1.as_nanos() as i128).abs();
        prop_assert!(wdiff <= 2, "wire not linear");
    }
}
