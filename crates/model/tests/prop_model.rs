//! Randomized tests of the shared model: GLA maps partition the
//! page space deterministically and in balance; configuration
//! validation accepts exactly the documented parameter space.
//!
//! Cases are generated with desim's deterministic RNG (seeded,
//! reproducible) so the workspace builds and tests without any registry
//! dependency.

use dbshare_model::gla::{GlaMap, PartitionGla};
use dbshare_model::{PageId, PartitionConfig, PartitionId, StorageAllocation, SystemConfig};
use desim::Rng;

const CASES: u64 = 256;

#[test]
fn ranged_gla_is_total_deterministic_and_balanced() {
    let mut rng = Rng::seed_from_u64(0x61A1);
    for _ in 0..CASES {
        let nodes = rng.range_inclusive(1, 11) as u16;
        let units = rng.range_inclusive(1, 499);
        let unit_pages = rng.range_inclusive(1, 19);
        let map = GlaMap::new(nodes, vec![PartitionGla::Ranged { units, unit_pages }]);
        // total + deterministic
        for _ in 0..rng.range_inclusive(1, 49) {
            let pg = PageId::new(PartitionId::new(0), rng.below(10_000));
            let a = map.gla_of(pg);
            let b = map.gla_of(pg);
            assert_eq!(a, b);
            assert!(a.index() < nodes as usize);
        }
        // balance: unit counts per node differ by at most 1
        let mut counts = vec![0u64; nodes as usize];
        for u in 0..units {
            counts[map
                .gla_of(PageId::new(PartitionId::new(0), u * unit_pages))
                .index()] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        assert!(max - min <= 1, "unbalanced: {counts:?}");
        // monotone: unit -> node assignment never decreases
        let mut last = 0usize;
        for u in 0..units {
            let n = map
                .gla_of(PageId::new(PartitionId::new(0), u * unit_pages))
                .index();
            assert!(n >= last, "assignment must be monotone");
            last = n;
        }
    }
}

#[test]
fn hashed_gla_is_total_and_roughly_uniform() {
    for nodes in 1u16..10 {
        let map = GlaMap::new(nodes, vec![PartitionGla::Hashed]);
        let mut counts = vec![0u64; nodes as usize];
        let probes = 4_000u64;
        for p in 0..probes {
            counts[map.gla_of(PageId::new(PartitionId::new(0), p)).index()] += 1;
        }
        let expect = probes as f64 / nodes as f64;
        for &c in &counts {
            assert!(
                (c as f64) > expect * 0.7 && (c as f64) < expect * 1.3,
                "skewed hash: {counts:?}"
            );
        }
    }
}

#[test]
fn validation_accepts_all_positive_configs() {
    let mut rng = Rng::seed_from_u64(0x62A1);
    for _ in 0..CASES {
        let nodes = rng.range_inclusive(1, 15) as u16;
        let tps = rng.uniform(1.0, 500.0);
        let buffer = rng.range_inclusive(1, 4_999);
        let pages = rng.range_inclusive(1, 999_999);
        let disks = rng.range_inclusive(1, 63) as u32;
        let mut cfg = SystemConfig::debit_credit(nodes);
        cfg.arrival_tps_per_node = tps;
        cfg.buffer_pages_per_node = buffer;
        cfg.partitions.push(PartitionConfig {
            name: "P".into(),
            pages,
            locking: true,
            storage: StorageAllocation::disk(disks),
        });
        assert!(cfg.validate().is_ok());
    }
}

#[test]
fn exec_and_wire_times_scale_linearly() {
    let mut rng = Rng::seed_from_u64(0x63A1);
    for _ in 0..CASES {
        let instr = rng.uniform(1.0, 1e7);
        let bytes = rng.range_inclusive(1, 999_999);
        let cfg = SystemConfig::debit_credit(1);
        let t1 = cfg.cpu.exec_time(instr);
        let t2 = cfg.cpu.exec_time(instr * 2.0);
        // within rounding of the nanosecond clock
        let diff = (t2.as_nanos() as i128 - 2 * t1.as_nanos() as i128).abs();
        assert!(diff <= 2, "exec not linear: {t1:?} {t2:?}");

        let w1 = cfg.comm.wire_time(bytes);
        let w2 = cfg.comm.wire_time(bytes * 2);
        let wdiff = (w2.as_nanos() as i128 - 2 * w1.as_nanos() as i128).abs();
        assert!(wdiff <= 2, "wire not linear");
    }
}
