//! The per-node main-memory database buffer (§3.2).
//!
//! An LRU-managed page buffer with dirty tracking and sequence-number
//! based invalidation detection. Page copies remain cached beyond the
//! end of the accessing transaction, which is what makes them
//! susceptible to invalidation by other nodes — detected here by
//! comparing the cached copy's sequence number against the current one
//! from the lock table (no extra communication, §3.2).

use dbshare_model::PageId;
use desim::lru::LruCache;

/// A buffered page copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Version of the cached copy.
    pub seqno: u64,
    /// Modified since it was last written to external storage.
    pub dirty: bool,
}

/// Outcome of a buffer lookup against the current version number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Valid copy cached.
    Hit,
    /// A copy was cached but is obsolete (buffer invalidation); it has
    /// been dropped from the buffer.
    Invalidated,
    /// No copy cached.
    Miss,
}

/// Per-partition buffer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferCounters {
    /// Valid-copy hits.
    pub hits: u64,
    /// Lookups that found no copy.
    pub misses: u64,
    /// Lookups that found an obsolete copy.
    pub invalidations: u64,
}

impl BufferCounters {
    /// Hit ratio over all lookups (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses + self.invalidations;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The LRU database buffer of one processing node.
///
/// ```rust
/// use dbshare_node::buffer::{BufferManager, Lookup};
/// use dbshare_model::{PageId, PartitionId};
/// let mut buf = BufferManager::new(2, 1);
/// let p = PageId::new(PartitionId::new(0), 7);
/// assert_eq!(buf.lookup(p, 0), Lookup::Miss);
/// buf.insert(p, 0, false);
/// assert_eq!(buf.lookup(p, 0), Lookup::Hit);
/// assert_eq!(buf.lookup(p, 1), Lookup::Invalidated); // newer version exists
/// ```
#[derive(Debug)]
pub struct BufferManager {
    lru: LruCache<PageId, Frame>,
    counters: Vec<BufferCounters>,
}

impl BufferManager {
    /// Creates a buffer of `capacity` page frames for a database of
    /// `partitions` partitions (statistics are kept per partition).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `partitions == 0`.
    pub fn new(capacity: u64, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        BufferManager {
            lru: LruCache::new(capacity as usize),
            counters: vec![BufferCounters::default(); partitions],
        }
    }

    /// Looks `page` up and validates it against `current_seqno` (from
    /// the global lock table / GLA). Invalidated copies are dropped.
    pub fn lookup(&mut self, page: PageId, current_seqno: u64) -> Lookup {
        let c = &mut self.counters[page.partition().index()];
        match self.lru.get(&page) {
            Some(frame) if frame.seqno >= current_seqno => {
                c.hits += 1;
                Lookup::Hit
            }
            Some(_) => {
                c.invalidations += 1;
                self.lru.remove(&page);
                Lookup::Invalidated
            }
            None => {
                c.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Looks `page` up without version validation (partitions not under
    /// lock-based coherency, e.g. the latched HISTORY tail).
    pub fn lookup_unversioned(&mut self, page: PageId) -> Lookup {
        let c = &mut self.counters[page.partition().index()];
        if self.lru.get(&page).is_some() {
            c.hits += 1;
            Lookup::Hit
        } else {
            c.misses += 1;
            Lookup::Miss
        }
    }

    /// Inserts (or refreshes) a page copy, returning an evicted dirty
    /// page that must be written back, if any. Clean evictions are
    /// silent (their disk copy is current).
    pub fn insert(&mut self, page: PageId, seqno: u64, dirty: bool) -> Option<(PageId, Frame)> {
        self.lru
            .insert(page, Frame { seqno, dirty })
            .filter(|(_, f)| f.dirty)
    }

    /// Marks a cached page as modified with its new version number
    /// (commit time). If the page was meanwhile replaced, it is
    /// re-inserted dirty — the transaction's copy still exists
    /// conceptually. Returns an evicted dirty page if the re-insert
    /// displaced one.
    pub fn mark_dirty(&mut self, page: PageId, new_seqno: u64) -> Option<(PageId, Frame)> {
        if let Some(f) = self.lru.get_mut(&page) {
            f.seqno = new_seqno;
            f.dirty = true;
            None
        } else {
            self.insert(page, new_seqno, true)
        }
    }

    /// Marks a page clean after its write-back completed (it may have
    /// been evicted meanwhile; that is fine).
    pub fn mark_clean(&mut self, page: PageId) {
        if let Some(f) = self.lru.peek_mut(&page) {
            f.dirty = false;
        }
    }

    /// The cached copy's version, if present (does not touch recency).
    pub fn cached_seqno(&self, page: PageId) -> Option<u64> {
        self.lru.peek(&page).map(|f| f.seqno)
    }

    /// True if a dirty copy of `page` is buffered (does not touch
    /// recency). Used to avoid clearing global ownership while a newer
    /// modification is still unwritten.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.lru.peek(&page).map(|f| f.dirty).unwrap_or(false)
    }

    /// True if a valid copy (at least `current_seqno`) is cached; does
    /// not touch recency or statistics.
    pub fn has_valid(&self, page: PageId, current_seqno: u64) -> bool {
        self.lru
            .peek(&page)
            .map(|f| f.seqno >= current_seqno)
            .unwrap_or(false)
    }

    /// Drops a page (testing and recovery paths).
    pub fn discard(&mut self, page: PageId) -> Option<Frame> {
        self.lru.remove(&page)
    }

    /// Pages currently buffered.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Per-partition counters.
    pub fn counters(&self, partition: usize) -> BufferCounters {
        self.counters[partition]
    }

    /// Resets all counters (end of warm-up).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = BufferCounters::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::PartitionId;

    fn page(p: u16, n: u64) -> PageId {
        PageId::new(PartitionId::new(p), n)
    }

    #[test]
    fn miss_then_hit() {
        let mut b = BufferManager::new(4, 1);
        assert_eq!(b.lookup(page(0, 1), 0), Lookup::Miss);
        b.insert(page(0, 1), 0, false);
        assert_eq!(b.lookup(page(0, 1), 0), Lookup::Hit);
        let c = b.counters(0);
        assert_eq!((c.hits, c.misses, c.invalidations), (1, 1, 0));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidation_detected_and_dropped() {
        let mut b = BufferManager::new(4, 1);
        b.insert(page(0, 1), 3, false);
        assert_eq!(b.lookup(page(0, 1), 5), Lookup::Invalidated);
        // the obsolete copy is gone
        assert_eq!(b.lookup(page(0, 1), 5), Lookup::Miss);
        assert_eq!(b.counters(0).invalidations, 1);
    }

    #[test]
    fn newer_cached_copy_is_valid() {
        // the local copy may be newer than the requester's knowledge
        let mut b = BufferManager::new(4, 1);
        b.insert(page(0, 1), 7, true);
        assert_eq!(b.lookup(page(0, 1), 5), Lookup::Hit);
    }

    #[test]
    fn dirty_eviction_surfaces() {
        let mut b = BufferManager::new(2, 1);
        b.insert(page(0, 1), 0, true);
        b.insert(page(0, 2), 0, false);
        let evicted = b.insert(page(0, 3), 0, false);
        assert_eq!(
            evicted,
            Some((
                page(0, 1),
                Frame {
                    seqno: 0,
                    dirty: true
                }
            ))
        );
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut b = BufferManager::new(1, 1);
        b.insert(page(0, 1), 0, false);
        assert_eq!(b.insert(page(0, 2), 0, false), None);
    }

    #[test]
    fn mark_dirty_updates_version() {
        let mut b = BufferManager::new(2, 1);
        b.insert(page(0, 1), 0, false);
        assert_eq!(b.mark_dirty(page(0, 1), 1), None);
        assert_eq!(b.cached_seqno(page(0, 1)), Some(1));
        assert!(b.has_valid(page(0, 1), 1));
        assert!(!b.has_valid(page(0, 1), 2));
    }

    #[test]
    fn mark_dirty_reinserts_if_replaced() {
        let mut b = BufferManager::new(1, 1);
        b.insert(page(0, 1), 0, false);
        b.insert(page(0, 2), 0, false); // 1 evicted (clean)
        assert_eq!(b.mark_dirty(page(0, 1), 4), None); // 2 evicted, clean
        assert_eq!(b.cached_seqno(page(0, 1)), Some(4));
    }

    #[test]
    fn mark_clean_after_writeback() {
        let mut b = BufferManager::new(2, 1);
        b.insert(page(0, 1), 1, true);
        b.mark_clean(page(0, 1));
        b.insert(page(0, 2), 0, false);
        // now evicting page 1 is silent (clean)
        assert_eq!(b.insert(page(0, 3), 0, false), None);
    }

    #[test]
    fn unversioned_lookup() {
        let mut b = BufferManager::new(2, 2);
        assert_eq!(b.lookup_unversioned(page(1, 5)), Lookup::Miss);
        b.insert(page(1, 5), 0, true);
        assert_eq!(b.lookup_unversioned(page(1, 5)), Lookup::Hit);
        assert_eq!(b.counters(1).hits, 1);
        assert_eq!(b.counters(0).hits, 0);
    }

    #[test]
    fn per_partition_counters_and_reset() {
        let mut b = BufferManager::new(4, 2);
        b.lookup(page(0, 1), 0);
        b.lookup(page(1, 1), 0);
        assert_eq!(b.counters(0).misses, 1);
        assert_eq!(b.counters(1).misses, 1);
        b.reset_counters();
        assert_eq!(b.counters(0), BufferCounters::default());
    }

    #[test]
    fn lru_capacity_respected() {
        let mut b = BufferManager::new(3, 1);
        for i in 0..10 {
            b.insert(page(0, i), 0, false);
        }
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(b.has_valid(page(0, 9), 0));
        assert!(!b.has_valid(page(0, 0), 0));
    }
}
