//! The CPU cost model of a processing node (§3.2 / Table 4.1).
//!
//! The transaction manager requests CPU service at the beginning of a
//! transaction, for every record access, and at the end of a
//! transaction; each service's instruction count is exponentially
//! distributed over a configured mean. I/O initiations and message
//! sends/receives cost fixed instruction counts.

use dbshare_model::config::CpuConfig;
use desim::{Rng, SimDuration};

/// Samples the instruction counts of transaction processing steps and
/// converts them to per-processor service times.
///
/// ```rust
/// use dbshare_node::cost::CostModel;
/// use dbshare_model::config::CpuConfig;
/// use desim::Rng;
/// let mut rng = Rng::seed_from_u64(1);
/// let m = CostModel::new(CpuConfig::default());
/// let d = m.bot(&mut rng);
/// assert!(d.as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: CpuConfig,
}

impl CostModel {
    /// Creates the model from the CPU configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        CostModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    fn exec(&self, instr: f64) -> SimDuration {
        self.cfg.exec_time(instr)
    }

    /// Begin-of-transaction service (exponential mean `bot_instr`).
    pub fn bot(&self, rng: &mut Rng) -> SimDuration {
        self.exec(rng.exp(self.cfg.bot_instr))
    }

    /// One record access (exponential mean `per_access_instr`).
    pub fn access(&self, rng: &mut Rng) -> SimDuration {
        self.exec(rng.exp(self.cfg.per_access_instr))
    }

    /// End-of-transaction / commit service (exponential mean `eot_instr`).
    pub fn eot(&self, rng: &mut Rng) -> SimDuration {
        self.exec(rng.exp(self.cfg.eot_instr))
    }

    /// Fixed-cost service of `instr` instructions (I/O initiation,
    /// message handling, lock processing).
    pub fn fixed(&self, instr: f64) -> SimDuration {
        self.exec(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_converge() {
        let m = CostModel::new(CpuConfig::default());
        let mut rng = Rng::seed_from_u64(7);
        let n = 50_000;
        let mean_ms = (0..n).map(|_| m.bot(&mut rng).as_millis_f64()).sum::<f64>() / n as f64;
        // 20k instructions at 10 MIPS = 2 ms
        assert!((mean_ms - 2.0).abs() < 0.05, "{mean_ms}");
    }

    #[test]
    fn fixed_costs_are_deterministic() {
        let m = CostModel::new(CpuConfig::default());
        // 5000 instructions at 10 MIPS = 0.5 ms (a short message)
        assert_eq!(m.fixed(5_000.0), SimDuration::from_micros(500));
        // 3000 instructions = 0.3 ms (a disk I/O)
        assert_eq!(m.fixed(3_000.0), SimDuration::from_micros(300));
    }

    #[test]
    fn total_pathlength_expectation() {
        // BOT + 4 accesses + EOT should average 250k instructions = 25 ms
        // of single-CPU time at 10 MIPS.
        let m = CostModel::new(CpuConfig::default());
        let mut rng = Rng::seed_from_u64(9);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            total += m.bot(&mut rng).as_millis_f64();
            for _ in 0..4 {
                total += m.access(&mut rng).as_millis_f64();
            }
            total += m.eot(&mut rng).as_millis_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 25.0).abs() < 0.25, "{mean}");
    }
}
