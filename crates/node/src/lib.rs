//! # dbshare-node — processing-node components (§3.2)
//!
//! The pieces of a processing node that are independent of the event
//! loop: the LRU [`buffer::BufferManager`] with sequence-number
//! invalidation detection and FORCE/NOFORCE dirty tracking, and the
//! [`cost::CostModel`] that samples CPU service demands (begin of
//! transaction, per record access, end of transaction, plus fixed I/O
//! and message-handling costs).
//!
//! The transaction manager's control flow itself lives in `dbshare-sim`
//! (it is inseparable from the event loop); the multiprogramming-level
//! admission gate is a [`desim::Resource`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cost;

pub use buffer::{BufferManager, Frame, Lookup};
pub use cost::CostModel;
