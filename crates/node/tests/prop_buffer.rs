//! Randomized tests of the buffer manager: capacity is never
//! exceeded, lookups agree with a reference model of page presence and
//! versions, and dirty pages are never silently dropped.
//!
//! Cases are generated with desim's deterministic RNG (seeded,
//! reproducible) so the workspace builds and tests without any registry
//! dependency.

use dbshare_model::{PageId, PartitionId};
use dbshare_node::buffer::{BufferManager, Lookup};
use desim::Rng;
use std::collections::HashMap;

const CASES: u64 = 256;

fn page(p: u8) -> PageId {
    PageId::new(PartitionId::new(0), p as u64)
}

#[derive(Debug, Clone)]
enum Op {
    Lookup { page: u8, seqno: u8 },
    Insert { page: u8, seqno: u8, dirty: bool },
    MarkDirty { page: u8, seqno: u8 },
    MarkClean { page: u8 },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 => Op::Lookup {
            page: rng.below(30) as u8,
            seqno: rng.below(8) as u8,
        },
        1 => Op::Insert {
            page: rng.below(30) as u8,
            seqno: rng.below(8) as u8,
            dirty: rng.chance(0.5),
        },
        2 => Op::MarkDirty {
            page: rng.below(30) as u8,
            seqno: rng.below(8) as u8,
        },
        _ => Op::MarkClean {
            page: rng.below(30) as u8,
        },
    }
}

#[test]
fn buffer_agrees_with_reference_model() {
    let mut rng = Rng::seed_from_u64(0xBFF1);
    for _ in 0..CASES {
        let cap = rng.range_inclusive(1, 15);
        let n_ops = rng.range_inclusive(1, 299);
        let mut buf = BufferManager::new(cap, 1);
        // model: page -> (seqno, dirty)
        let mut model: HashMap<u8, (u8, bool)> = HashMap::new();
        let mut dirty_evictions = 0u32;
        let mut model_dirty_drops = 0u32;

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Lookup { page: p, seqno } => {
                    let expect = match model.get(&p) {
                        Some(&(s, _)) if s >= seqno => Lookup::Hit,
                        Some(_) => Lookup::Invalidated,
                        None => Lookup::Miss,
                    };
                    let got = buf.lookup(page(p), seqno as u64);
                    assert_eq!(got, expect, "lookup({p}, {seqno})");
                    if got == Lookup::Invalidated {
                        model.remove(&p); // obsolete copies are dropped
                    }
                }
                Op::Insert {
                    page: p,
                    seqno,
                    dirty,
                } => {
                    let evicted = buf.insert(page(p), seqno as u64, dirty);
                    model.insert(p, (seqno, dirty));
                    if let Some((ep, frame)) = evicted {
                        assert!(frame.dirty, "only dirty evictions surface");
                        dirty_evictions += 1;
                        let removed = model.remove(&(ep.number() as u8));
                        assert!(removed.is_some());
                        model_dirty_drops += 1;
                    } else if model.len() > cap as usize {
                        // a clean page was evicted silently; drop the LRU
                        // one from the model by syncing against the buffer
                        model.retain(|&k, _| buf.cached_seqno(page(k)).is_some());
                    }
                }
                Op::MarkDirty { page: p, seqno } => {
                    let evicted = buf.mark_dirty(page(p), seqno as u64);
                    model.insert(p, (seqno, true));
                    if let Some((ep, frame)) = evicted {
                        assert!(frame.dirty);
                        dirty_evictions += 1;
                        model.remove(&(ep.number() as u8));
                        model_dirty_drops += 1;
                    } else {
                        model.retain(|&k, _| buf.cached_seqno(page(k)).is_some());
                    }
                }
                Op::MarkClean { page: p } => {
                    buf.mark_clean(page(p));
                    if let Some(e) = model.get_mut(&p) {
                        e.1 = false;
                    }
                }
            }
            assert!(buf.len() as u64 <= cap, "capacity exceeded");
            assert_eq!(dirty_evictions, model_dirty_drops);
            // every model entry is present with the same seqno
            for (&k, &(s, d)) in &model {
                assert_eq!(buf.cached_seqno(page(k)), Some(s as u64));
                assert_eq!(buf.is_dirty(page(k)), d, "dirty flag of {k}");
            }
        }
    }
}

#[test]
fn hit_ratio_is_consistent_with_counts() {
    let mut rng = Rng::seed_from_u64(0xBFF2);
    for _ in 0..CASES {
        let n_lookups = rng.range_inclusive(1, 119);
        let mut buf = BufferManager::new(8, 1);
        let mut hits = 0u64;
        let mut total = 0u64;
        for _ in 0..n_lookups {
            let p = rng.below(10) as u8;
            let insert_after = rng.chance(0.5);
            if buf.lookup(page(p), 0) == Lookup::Hit {
                hits += 1;
            }
            total += 1;
            if insert_after {
                buf.insert(page(p), 0, false);
            }
        }
        let c = buf.counters(0);
        assert_eq!(c.hits, hits);
        assert_eq!(c.hits + c.misses + c.invalidations, total);
        let ratio = c.hit_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }
}
