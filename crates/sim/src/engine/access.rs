//! Record-access processing: lock acquisition (GEM locking or PCL),
//! buffer-invalidation detection, and page acquisition (buffer hit,
//! page request to the owner, or storage read).

use super::{Cont, Engine, Job, Msg, MsgBody, PendingWrite, Phase, ReqCtx};
use dbshare_lockmgr::{LockMode, LockReply};
use dbshare_model::{AccessMode, CouplingMode, NodeId, PageId, TxnId};
use desim::trace::TraceEventKind;
use desim::SimTime;

impl Engine {
    /// Starts the next record access, or commit when the program is done.
    pub(crate) fn begin_access(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        if t.step >= t.spec.refs().len() {
            self.commit_begin(now, id);
            return;
        }
        let node = t.node;
        let records = t.spec.refs()[t.step].records;
        // One exponentially distributed CPU service per *record* access
        // (§3.2); clustered pages carry several records.
        let svc = (0..records)
            .map(|_| self.sample(node, |c, r| c.access(r)))
            .sum();
        self.dispatch(
            now,
            node,
            Job {
                service: svc,
                gem_entries: 0,
                gem_pages: 0,
                txn: Some(id),
                cont: Cont::AccessCpuDone(id),
            },
        );
    }

    /// The access CPU slice is done: acquire the lock (protocol-specific)
    /// or go straight to the page phase for unlocked partitions.
    pub(crate) fn after_access_cpu(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let r = t.spec.refs()[t.step];
        let page = r.page;
        let mode = match r.mode {
            AccessMode::Read => LockMode::Read,
            AccessMode::Write => LockMode::Write,
        };
        if !self.locked_partition(page) {
            self.acquire_page(now, id, 0, None, false);
            return;
        }
        // Covering lock already held (trace transactions may touch a
        // page repeatedly): no new request.
        if self.holds_covering(id, page, mode) {
            let seqno = self.txn(id).page_seqnos.get(&page).copied().unwrap_or(0);
            self.acquire_page(now, id, seqno, None, true);
            return;
        }
        self.counters.lock_requests += 1;
        let node = self.txn(id).node;
        self.emit(
            now,
            TraceEventKind::LockRequest,
            node,
            Some(id),
            Some(page),
            0,
        );
        match self.cfg.coupling {
            CouplingMode::GemLocking | CouplingMode::LockEngine => {
                let svc = self.fixed(self.cfg.gem.lock_op_instr);
                self.dispatch(
                    now,
                    self.txn(id).node,
                    Job {
                        service: svc,
                        gem_entries: dbshare_lockmgr::GemLockTable::ENTRY_OPS,
                        gem_pages: 0,
                        txn: Some(id),
                        cont: Cont::GemLockExec(id),
                    },
                );
            }
            CouplingMode::Pcl => self.pcl_request(now, id, page, mode),
        }
    }

    fn holds_covering(&self, id: TxnId, page: PageId, mode: LockMode) -> bool {
        let t = self.txn(id);
        if t.held_gem.contains(&page) {
            return matches!(self.glt.held_mode(id, page), Some(m) if m.covers(mode));
        }
        if let Some(&(_, _, held)) = t.held_gla.iter().find(|&&(_, p, _)| p == page) {
            return held.covers(mode);
        }
        // Locally authorized read locks cover reads only.
        t.held_ra.contains(&page) && mode == LockMode::Read
    }

    // ------------------------------------------------------------------
    // GEM locking
    // ------------------------------------------------------------------

    /// Executes the lock request against the global lock table (the
    /// synchronous entry accesses already elapsed inside the CPU job).
    pub(crate) fn gem_lock_exec(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let r = t.spec.refs()[t.step];
        let page = r.page;
        let mode = if r.mode.is_write() {
            LockMode::Write
        } else {
            LockMode::Read
        };
        let rep = self.glt.request(id, page, mode);
        match rep.reply {
            LockReply::Granted | LockReply::AlreadyHeld => {
                let t = self.txn_mut(id);
                if !t.held_gem.contains(&page) {
                    t.held_gem.push(page);
                }
                t.page_seqnos.insert(page, rep.info.seqno);
                let _ = node;
                self.acquire_page(now, id, rep.info.seqno, rep.info.owner, true);
            }
            LockReply::Queued => {
                self.counters.lock_waits += 1;
                self.txn_mut(id)
                    .begin_wait(now, Phase::LockWait, Some(page));
                self.emit(now, TraceEventKind::LockWait, node, Some(id), Some(page), 0);
            }
        }
    }

    /// A queued GEM lock was granted and the waiter's grant-processing
    /// CPU slice (entry re-read) finished: resume the access.
    pub(crate) fn gem_grant_exec(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        let Some(page) = t.waiting_page else { return };
        let node = t.node;
        let waited = if t.phase == Phase::LockWait {
            (now - t.wait_since).as_nanos()
        } else {
            0
        };
        t.end_lock_wait(now);
        if !t.held_gem.contains(&page) {
            t.held_gem.push(page);
        }
        self.emit(
            now,
            TraceEventKind::LockGrant,
            node,
            Some(id),
            Some(page),
            waited,
        );
        let info = self.glt.info(page);
        self.txn_mut(id).page_seqnos.insert(page, info.seqno);
        self.acquire_page(now, id, info.seqno, info.owner, true);
    }

    /// Schedules grant processing at each newly granted waiter's node.
    pub(crate) fn process_gem_grants(
        &mut self,
        now: SimTime,
        grants: Vec<(PageId, TxnId, LockMode)>,
    ) {
        for (_page, t2, _mode) in grants {
            let Some(t) = self.txns.get(&t2) else {
                continue;
            };
            let node = t.node;
            let svc = self.fixed(self.cfg.gem.lock_op_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: dbshare_lockmgr::GemLockTable::ENTRY_OPS,
                    gem_pages: 0,
                    txn: Some(t2),
                    cont: Cont::GemGrantExec(t2),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // PCL
    // ------------------------------------------------------------------

    fn pcl_request(&mut self, now: SimTime, id: TxnId, page: PageId, mode: LockMode) {
        let node = self.txn(id).node;
        let gla = self.gla_map.gla_of(page);
        if gla == node {
            let svc = self.fixed(self.cfg.pcl_local_lock_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 0,
                    txn: Some(id),
                    cont: Cont::PclLocalLockExec(id),
                },
            );
            return;
        }
        // Read optimization: grant locally under a valid authorization,
        // provided a cached copy exists (the RA guarantees its currency).
        if self.cfg.pcl_read_optimization
            && mode == LockMode::Read
            && self.nodes[node.index()].ra.is_authorized(page)
            && self.nodes[node.index()].buffer.cached_seqno(page).is_some()
        {
            let svc = self.fixed(self.cfg.pcl_local_lock_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 0,
                    txn: Some(id),
                    cont: Cont::PclRaLocalExec(id),
                },
            );
            return;
        }
        // Upgrading a locally granted read lock: give the RA lock back
        // first, otherwise the write's revocation would wait on
        // ourselves.
        if self.txn(id).held_ra.contains(&page) {
            let t = self.txn_mut(id);
            t.held_ra.retain(|&p| p != page);
            if self.nodes[node.index()].ra.release(id, page) {
                self.send_deferred_ack(now, node, page);
            }
        }
        self.counters.remote_lock_requests += 1;
        let cached = self.nodes[node.index()].buffer.cached_seqno(page);
        self.txn_mut(id)
            .begin_wait(now, Phase::LockWait, Some(page));
        self.emit(now, TraceEventKind::LockWait, node, Some(id), Some(page), 0);
        self.send_msg(
            now,
            Msg {
                from: node,
                to: gla,
                body: MsgBody::LockReq {
                    txn: id,
                    page,
                    mode,
                    cached,
                },
            },
            Some(id),
            None,
        );
    }

    /// Executes a lock request at the local GLA.
    pub(crate) fn pcl_local_lock_exec(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let r = t.spec.refs()[t.step];
        let page = r.page;
        let mode = if r.mode.is_write() {
            LockMode::Write
        } else {
            LockMode::Read
        };
        let ro = self.cfg.pcl_read_optimization;
        let out = self.gla[node.index()].request(id, node, page, mode, true, ro);
        if !out.revoke.is_empty() {
            self.counters.revokes_sent += out.revoke.len() as u64;
            self.pending_writes.insert(
                id,
                PendingWrite {
                    gla: node,
                    acks_left: out.revoke.len() as u64,
                    granted: out.reply != LockReply::Queued,
                    ctx: ReqCtx {
                        from: node,
                        page,
                        mode,
                        cached: None,
                    },
                },
            );
            self.counters.lock_waits += 1;
            self.txn_mut(id)
                .begin_wait(now, Phase::LockWait, Some(page));
            self.emit(now, TraceEventKind::LockWait, node, Some(id), Some(page), 0);
            for target in out.revoke {
                self.send_msg(
                    now,
                    Msg {
                        from: node,
                        to: target,
                        body: MsgBody::Revoke { page, writer: id },
                    },
                    None,
                    None,
                );
            }
            return;
        }
        match out.reply {
            LockReply::Granted | LockReply::AlreadyHeld => {
                let t = self.txn_mut(id);
                if !t.held_gla.iter().any(|&(_, p, _)| p == page) {
                    t.held_gla.push((node, page, mode));
                } else if mode == LockMode::Write {
                    for h in t.held_gla.iter_mut() {
                        if h.1 == page {
                            h.2 = LockMode::Write;
                        }
                    }
                }
                t.page_seqnos.insert(page, out.seqno);
                self.acquire_page(now, id, out.seqno, None, true);
            }
            LockReply::Queued => {
                self.counters.lock_waits += 1;
                self.txn_mut(id)
                    .begin_wait(now, Phase::LockWait, Some(page));
                self.emit(now, TraceEventKind::LockWait, node, Some(id), Some(page), 0);
            }
        }
    }

    /// A queued local-GLA lock was granted; the waiter resumes.
    pub(crate) fn pcl_local_grant_exec(&mut self, now: SimTime, id: TxnId, page: PageId) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        let waited = if t.phase == Phase::LockWait {
            (now - t.wait_since).as_nanos()
        } else {
            0
        };
        t.end_lock_wait(now);
        let node = t.node;
        let r = t.spec.refs()[t.step];
        let mode = if r.mode.is_write() {
            LockMode::Write
        } else {
            LockMode::Read
        };
        if !t.held_gla.iter().any(|&(_, p, _)| p == page) {
            t.held_gla.push((node, page, mode));
        } else if mode == LockMode::Write {
            for h in t.held_gla.iter_mut() {
                if h.1 == page {
                    h.2 = LockMode::Write;
                }
            }
        }
        let seqno = self.gla[node.index()].seqno(page);
        self.txn_mut(id).page_seqnos.insert(page, seqno);
        self.emit(
            now,
            TraceEventKind::LockGrant,
            node,
            Some(id),
            Some(page),
            waited,
        );
        self.acquire_page(now, id, seqno, None, true);
    }

    /// Executes a locally authorized read grant (read optimization).
    pub(crate) fn pcl_ra_local_exec(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let page = t.spec.refs()[t.step].page;
        // The authorization may have been revoked or the copy evicted
        // while this slice waited for the CPU: fall back to the remote
        // path in that case.
        let have_copy = self.nodes[node.index()].buffer.cached_seqno(page).is_some();
        if have_copy && self.nodes[node.index()].ra.try_local_read(id, page) {
            self.counters.ra_local_grants += 1;
            let t = self.txn_mut(id);
            if !t.held_ra.contains(&page) {
                t.held_ra.push(page);
            }
            let seqno = self.nodes[node.index()]
                .buffer
                .cached_seqno(page)
                .expect("checked above");
            self.txn_mut(id).page_seqnos.insert(page, seqno);
            self.acquire_page(now, id, seqno, None, true);
        } else {
            self.pcl_request(now, id, page, LockMode::Read);
        }
    }

    // ------------------------------------------------------------------
    // Page acquisition (common)
    // ------------------------------------------------------------------

    /// With the lock held and the current version known, obtain the
    /// page: buffer hit, page request to the owner (GEM locking,
    /// NOFORCE), or storage read.
    pub(crate) fn acquire_page(
        &mut self,
        now: SimTime,
        id: TxnId,
        seqno: u64,
        owner: Option<NodeId>,
        versioned: bool,
    ) {
        use dbshare_node::Lookup;
        let t = self.txn(id);
        let node = t.node;
        let r = t.spec.refs()[t.step];
        let page = r.page;
        let lookup = if versioned {
            self.nodes[node.index()].buffer.lookup(page, seqno)
        } else {
            self.nodes[node.index()].buffer.lookup_unversioned(page)
        };
        match lookup {
            Lookup::Hit => self.finish_access(now, id),
            miss => {
                if miss == Lookup::Invalidated {
                    self.counters.invalidations += 1;
                }
                if r.append {
                    // Sequential insert: the page is created in the
                    // buffer; no read I/O is ever needed.
                    let evicted = self.nodes[node.index()].buffer.insert(page, seqno, false);
                    if let Some((p, _)) = evicted {
                        self.start_evict_write(now, node, p);
                    }
                    self.finish_access(now, id);
                } else if self.is_gem_coupling()
                    && self.is_noforce()
                    && owner.is_some()
                    && owner != Some(node)
                {
                    // Request the current version from its owner.
                    self.counters.page_requests += 1;
                    self.txn_mut(id)
                        .begin_wait(now, Phase::PageWait, Some(page));
                    self.send_msg(
                        now,
                        Msg {
                            from: node,
                            to: owner.expect("checked above"),
                            body: MsgBody::PageReq { txn: id, page },
                        },
                        Some(id),
                        None,
                    );
                } else {
                    self.start_storage_read(now, id, page);
                }
            }
        }
    }

    /// Starts a storage read for the current access: I/O-initiation CPU,
    /// then the device access (synchronously for GEM-resident pages).
    fn start_storage_read(&mut self, now: SimTime, id: TxnId, page: PageId) {
        let node = self.txn(id).node;
        if self.storage.is_gem_resident(page) {
            let svc = self.fixed(self.cfg.gem.io_init_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 1,
                    txn: Some(id),
                    cont: Cont::GemPageAccessDone(id),
                },
            );
        } else {
            let svc = self.fixed(self.cfg.disk.io_instr_per_page);
            let now_ = now;
            self.txn_mut(id).begin_wait(now_, Phase::PageWait, None);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 0,
                    txn: Some(id),
                    cont: Cont::StorageReadIssue(id),
                },
            );
        }
    }

    /// The I/O-initiation CPU finished: issue the device read.
    pub(crate) fn storage_read_issue(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let page = t.spec.refs()[t.step].page;
        self.counters.storage_reads += 1;
        self.emit(now, TraceEventKind::PageRead, node, Some(id), Some(page), 0);
        let served = self.storage.read_page(now, page);
        self.cal.schedule(
            served.done,
            super::Event::IoDone {
                cont: Cont::StorageReadDone(id),
            },
        );
    }

    /// A page read completed (disk or synchronous GEM): install the
    /// copy and finish the access.
    pub(crate) fn storage_read_done(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let page = t.spec.refs()[t.step].page;
        let seqno = t.page_seqnos.get(&page).copied().unwrap_or(0);
        let waited = if matches!(t.phase, Phase::PageWait | Phase::CommitIo) && now >= t.wait_since
        {
            (now - t.wait_since).as_nanos()
        } else {
            0
        };
        if self.storage.is_gem_resident(page) {
            // accounted as a storage read for statistics parity
            self.counters.storage_reads += 1;
            self.emit(now, TraceEventKind::PageRead, node, Some(id), Some(page), 0);
        }
        let evicted = self.nodes[node.index()].buffer.insert(page, seqno, false);
        if let Some((p, _)) = evicted {
            self.start_evict_write(now, node, p);
        }
        self.txn_mut(id).end_io_wait(now);
        self.emit(
            now,
            TraceEventKind::PageReadDone,
            node,
            Some(id),
            Some(page),
            waited,
        );
        self.finish_access(now, id);
    }

    /// Access complete: note modifications, advance to the next
    /// reference.
    pub(crate) fn finish_access(&mut self, now: SimTime, id: TxnId) {
        let t = self.txn_mut(id);
        let r = t.spec.refs()[t.step];
        if r.mode.is_write() {
            t.note_modified(r.page);
        }
        t.step += 1;
        t.phase = Phase::Running;
        self.begin_access(now, id);
    }
}
