//! Commit processing (§3.2): phase 1 writes log data (and, under
//! FORCE, all modified pages) to non-volatile storage; phase 2 releases
//! the transaction's locks and publishes its modifications.

use super::events::ReleasePages;
use super::txn::CommitWrite;
use super::{Cont, Engine, Job, Msg, MsgBody, Phase};
use dbshare_lockmgr::LockMode;
use dbshare_model::{NodeId, PageId, TxnId, UpdateStrategy};
use desim::trace::TraceEventKind;
use desim::SimTime;

impl Engine {
    /// Last access done: run the end-of-transaction CPU slice.
    pub(crate) fn commit_begin(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let svc = self.sample(node, |c, r| c.eot(r));
        self.dispatch(
            now,
            node,
            Job {
                service: svc,
                gem_entries: 0,
                gem_pages: 0,
                txn: Some(id),
                cont: Cont::CommitInit(id),
            },
        );
    }

    /// Builds the commit-write list (phase 1) and starts the write
    /// chain. Force-writes and the log write are performed one after
    /// another (sequential device operations, as in the paper's FORCE
    /// model — this is what makes the force-write latency of each
    /// individual file visible, §4.4).
    pub(crate) fn commit_init(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        let force = self.cfg.update == UpdateStrategy::Force;
        t.commit_writes.clear();
        if force {
            for i in 0..t.modified.len() {
                let p = t.modified[i];
                t.commit_writes.push(CommitWrite { page: Some(p) });
            }
        }
        if !t.modified.is_empty() {
            // One log page per update transaction (§3.2), written after
            // the force-writes.
            t.commit_writes.push(CommitWrite { page: None });
        }
        if t.commit_writes.is_empty() {
            self.phase2_begin(now, id);
        } else {
            self.commit_write_init(now, id, 0);
        }
    }

    /// Initiates the `idx`-th commit write: CPU for the I/O initiation,
    /// performed synchronously for GEM-resident pages.
    pub(crate) fn commit_write_init(&mut self, now: SimTime, id: TxnId, idx: usize) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        if idx >= t.commit_writes.len() {
            self.phase2_begin(now, id);
            return;
        }
        let node = t.node;
        let w = t.commit_writes[idx];
        match w.page {
            Some(p) if self.storage.is_gem_resident(p) => {
                // Synchronous force-write into GEM: CPU held for the
                // 50 µs page write; nothing asynchronous to wait for.
                self.counters.commit_writes += 1;
                let svc = self.fixed(self.cfg.gem.io_init_instr);
                self.dispatch(
                    now,
                    node,
                    Job {
                        service: svc,
                        gem_entries: 0,
                        gem_pages: 1,
                        txn: Some(id),
                        cont: Cont::CommitWriteInit {
                            txn: id,
                            idx: idx + 1,
                        },
                    },
                );
            }
            _ => {
                // GEM-buffered targets (write-buffered partitions, GEM
                // log) have the cheap 300-instruction initiation.
                let gem_target = match w.page {
                    Some(p) => self.storage.write_goes_to_gem(p),
                    None => self.storage.log_is_gem(),
                };
                let instr = if gem_target {
                    self.cfg.gem.io_init_instr
                } else {
                    self.cfg.disk.io_instr_per_page
                };
                let svc = self.fixed(instr);
                self.dispatch(
                    now,
                    node,
                    Job {
                        service: svc,
                        gem_entries: 0,
                        gem_pages: 0,
                        txn: Some(id),
                        cont: Cont::CommitWriteIssue { txn: id, idx },
                    },
                );
            }
        }
    }

    /// Issues the `idx`-th commit write to its device; the next write
    /// is initiated when this one completes (sequential chain).
    pub(crate) fn commit_write_issue(&mut self, now: SimTime, id: TxnId, idx: usize) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        let node = t.node;
        let w = t.commit_writes[idx];
        let served = match w.page {
            None => {
                self.counters.log_writes += 1;
                self.storage.write_log(now, node)
            }
            Some(p) => {
                self.counters.commit_writes += 1;
                self.storage.write_page(now, p)
            }
        };
        self.txn_mut(id).begin_wait(now, Phase::CommitIo, None);
        self.emit(now, TraceEventKind::CommitIo, node, Some(id), w.page, 0);
        self.cal.schedule(
            served.done,
            super::Event::IoDone {
                cont: Cont::CommitIoChain { txn: id, idx },
            },
        );
    }

    /// A commit write finished: initiate the next one (or phase 2).
    pub(crate) fn commit_io_chain(&mut self, now: SimTime, id: TxnId, idx: usize) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        let node = t.node;
        let waited = if t.phase == Phase::CommitIo && now >= t.wait_since {
            (now - t.wait_since).as_nanos()
        } else {
            0
        };
        t.end_io_wait(now);
        self.emit(
            now,
            TraceEventKind::CommitIoDone,
            node,
            Some(id),
            None,
            waited,
        );
        self.commit_write_init(now, id, idx + 1);
    }

    /// Begins phase 2: the lock-release CPU slice.
    fn phase2_begin(&mut self, now: SimTime, id: TxnId) {
        let t = self.txn_mut(id);
        t.phase = Phase::Running;
        let node = t.node;
        match self.cfg.coupling {
            dbshare_model::CouplingMode::GemLocking | dbshare_model::CouplingMode::LockEngine => {
                let k = self.txn(id).held_gem.len().max(1) as u32;
                let svc = self.fixed(self.cfg.gem.lock_op_instr * k as f64);
                self.dispatch(
                    now,
                    node,
                    Job {
                        service: svc,
                        gem_entries: dbshare_lockmgr::GemLockTable::ENTRY_OPS * k,
                        gem_pages: 0,
                        txn: Some(id),
                        cont: Cont::GemReleaseExec(id),
                    },
                );
            }
            dbshare_model::CouplingMode::Pcl => {
                let t = self.txn(id);
                let locals =
                    t.held_gla.iter().filter(|&&(g, _, _)| g == node).count() + t.held_ra.len();
                let svc = self.fixed(self.cfg.pcl_local_lock_instr * locals.max(1) as f64);
                self.dispatch(
                    now,
                    node,
                    Job {
                        service: svc,
                        gem_entries: 0,
                        gem_pages: 0,
                        txn: Some(id),
                        cont: Cont::PclReleaseExec(id),
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2 — GEM locking
    // ------------------------------------------------------------------

    /// Publishes modifications in the GLT and releases all locks.
    pub(crate) fn gem_release_exec(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let force = self.cfg.update == UpdateStrategy::Force;
        // Publish new versions: sequence numbers bump; the owner is this
        // node (NOFORCE) or storage (FORCE). Indexed loop: the modified
        // list stays put while `&mut self` methods run.
        for i in 0..self.txn(id).modified.len() {
            let p = self.txn(id).modified[i];
            let new_seq = if self.locked_partition(p) {
                self.glt.record_modification(p, node, force);
                self.glt.info(p).seqno
            } else {
                0
            };
            let evicted = if force {
                self.nodes[node.index()].buffer.insert(p, new_seq, false)
            } else {
                self.nodes[node.index()].buffer.mark_dirty(p, new_seq)
            };
            if let Some((victim, _)) = evicted {
                self.start_evict_write(now, node, victim);
            }
        }
        let released = self.txn(id).held_gem.len() as u64;
        let grants = self.glt.release_all(id);
        self.txn_mut(id).held_gem.clear();
        self.emit(
            now,
            TraceEventKind::LockRelease,
            node,
            Some(id),
            None,
            released,
        );
        self.process_gem_grants(now, grants);
        self.txn_complete(now, id);
    }

    // ------------------------------------------------------------------
    // Phase 2 — PCL
    // ------------------------------------------------------------------

    /// Local releases, buffer publication, and release messages to
    /// remote authorities (modified pages ride along, §3.2).
    pub(crate) fn pcl_release_exec(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let released = (t.held_gla.len() + t.held_ra.len()) as u64;
        let noforce = self.is_noforce();

        // Publish modifications in the local buffer. Ownership of pages
        // with a remote authority transfers to the GLA node (the copy
        // here stays clean); locally-authorized pages stay dirty here
        // under NOFORCE. Indexed loop: the modified list stays put while
        // `&mut self` methods run.
        for i in 0..self.txn(id).modified.len() {
            let p = self.txn(id).modified[i];
            let local_authority = !self.locked_partition(p) // latched partitions are node-local
                || self.gla_map.gla_of(p) == node;
            let new_seq = if !self.locked_partition(p) {
                0
            } else if local_authority {
                self.gla[node.index()].record_modification(p)
            } else {
                self.txn(id).page_seqnos.get(&p).copied().unwrap_or(0) + 1
            };
            let keep_dirty = noforce && local_authority;
            let evicted = if keep_dirty {
                self.nodes[node.index()].buffer.mark_dirty(p, new_seq)
            } else {
                self.nodes[node.index()].buffer.insert(p, new_seq, false)
            };
            if let Some((victim, _)) = evicted {
                self.start_evict_write(now, node, victim);
            }
        }

        // Local lock releases. (These never touch this transaction's
        // held lists: grants go to *waiters* of the released locks.)
        let grants = self.gla[node.index()].release_all(id);
        self.process_gla_grants(now, node, grants);
        for i in 0..self.txn(id).held_ra.len() {
            let p = self.txn(id).held_ra[i];
            if self.nodes[node.index()].ra.release(id, p) {
                self.send_deferred_ack(now, node, p);
            }
        }
        self.txn_mut(id).held_ra.clear();
        self.emit(
            now,
            TraceEventKind::LockRelease,
            node,
            Some(id),
            None,
            released,
        );

        // Release messages to remote authorities, one per authority in
        // NodeId order, pages riding along in held-lock order. The
        // distinct-authority scratch is engine-owned and the page lists
        // are inline, so the steady state does not allocate. The last
        // send closes the transaction (no replies are needed).
        let mut authorities = std::mem::take(&mut self.scratch_nodes);
        authorities.clear();
        for &(g, _, _) in self.txn(id).held_gla.iter() {
            if g != node && !authorities.contains(&g) {
                authorities.push(g);
            }
        }
        if authorities.is_empty() {
            self.scratch_nodes = authorities;
            self.txn_mut(id).held_gla.clear();
            self.txn_complete(now, id);
            return;
        }
        authorities.sort_unstable();
        let last = authorities.len() - 1;
        for (i, &g) in authorities.iter().enumerate() {
            let mut pages: ReleasePages = self.release_pool.pop().unwrap_or_default();
            debug_assert!(pages.is_empty(), "pooled release buffer not cleared");
            let t = self.txn(id);
            for &(a, p, _) in t.held_gla.iter() {
                if a == g {
                    pages.push((p, t.modified.contains(&p)));
                }
            }
            let last_of = if i == last { Some(id) } else { None };
            self.send_msg(
                now,
                Msg {
                    from: node,
                    to: g,
                    body: MsgBody::Release { txn: id, pages },
                },
                Some(id),
                last_of,
            );
        }
        // The release messages now carry every remote page; the held
        // list is done (a crash abort in the final-send window must not
        // release these locks a second time).
        self.txn_mut(id).held_gla.clear();
        self.scratch_nodes = authorities;
    }

    /// Processes grants produced at a GLA node: wake local waiters, send
    /// remote grant replies, and progress pending writes.
    pub(crate) fn process_gla_grants(
        &mut self,
        now: SimTime,
        gla_node: NodeId,
        grants: Vec<(PageId, TxnId, LockMode)>,
    ) {
        for (page, t2, mode) in grants {
            if self.pending_writes.contains_key(&t2) {
                let ready = {
                    let pw = self.pending_writes.get_mut(&t2).expect("checked");
                    pw.granted = true;
                    pw.acks_left == 0
                };
                if ready {
                    self.finish_pending_write(now, t2);
                }
                continue;
            }
            if let Some(ctx) = self.remote_ctx.remove(&t2) {
                self.send_pcl_grant(now, gla_node, t2, ctx);
                continue;
            }
            // A local waiter at the GLA node.
            if self.txns.contains_key(&t2) {
                let svc = self.fixed(self.cfg.pcl_local_lock_instr);
                let _ = mode;
                self.dispatch(
                    now,
                    gla_node,
                    Job {
                        service: svc,
                        gem_entries: 0,
                        gem_pages: 0,
                        txn: Some(t2),
                        cont: Cont::PclLocalGrantExec { txn: t2, page },
                    },
                );
            }
        }
    }

    /// A pending write has its lock and all revocation acks: grant it.
    pub(crate) fn finish_pending_write(&mut self, now: SimTime, writer: TxnId) {
        let Some(pw) = self.pending_writes.remove(&writer) else {
            return;
        };
        self.remote_ctx.remove(&writer);
        if pw.ctx.from == pw.gla {
            // Local writer at the GLA node.
            if self.txns.contains_key(&writer) {
                let svc = self.fixed(self.cfg.pcl_local_lock_instr);
                self.dispatch(
                    now,
                    pw.gla,
                    Job {
                        service: svc,
                        gem_entries: 0,
                        gem_pages: 0,
                        txn: Some(writer),
                        cont: Cont::PclLocalGrantExec {
                            txn: writer,
                            page: pw.ctx.page,
                        },
                    },
                );
            }
        } else {
            self.send_pcl_grant(now, pw.gla, writer, pw.ctx);
        }
    }

    /// Sends a lock grant from `gla_node` back to the requester,
    /// piggybacking the current page version when the requester's copy
    /// is stale and this node still buffers it (NOFORCE).
    pub(crate) fn send_pcl_grant(
        &mut self,
        now: SimTime,
        gla_node: NodeId,
        txn: TxnId,
        ctx: super::ReqCtx,
    ) {
        let seqno = self.gla[gla_node.index()].seqno(ctx.page);
        let requester_stale = ctx.cached.is_none_or(|c| c < seqno);
        let with_page = self.is_noforce()
            && requester_stale
            && self.nodes[gla_node.index()]
                .buffer
                .has_valid(ctx.page, seqno);
        let ra = self.cfg.pcl_read_optimization && ctx.mode == LockMode::Read;
        if ra {
            self.gla[gla_node.index()].grant_ra(ctx.page, ctx.from);
        }
        if with_page {
            self.counters.page_transfers += 1;
            self.emit(
                now,
                TraceEventKind::PageTransfer,
                gla_node,
                Some(txn),
                Some(ctx.page),
                u64::from(ctx.from.raw()),
            );
        }
        self.send_msg(
            now,
            Msg {
                from: gla_node,
                to: ctx.from,
                body: MsgBody::LockGrant {
                    txn,
                    page: ctx.page,
                    mode: ctx.mode,
                    seqno,
                    with_page,
                    ra,
                },
            },
            None,
            None,
        );
    }
}
