//! Event, continuation, and message types of the simulation engine.

use dbshare_lockmgr::LockMode;
use dbshare_model::{NodeId, PageId, TxnId, TxnSpec};
use desim::{SimDuration, SimTime};

/// Page list carried by a commit-time [`MsgBody::Release`]. A plain
/// `Vec` keeps the `Event` enum small (every calendar slot pays for
/// the largest variant); the engine recycles these buffers through
/// `Engine::release_pool`, so the steady state still does not
/// allocate: the receiver returns the emptied buffer to the pool and
/// commit phase 2 takes its buffers from it.
pub(crate) type ReleasePages = Vec<(PageId, bool)>;

/// A calendar event.
#[derive(Debug)]
pub(crate) enum Event {
    /// Next transaction arrives from the SOURCE.
    Arrival,
    /// A previously aborted transaction re-enters the system.
    Restart {
        /// Target node (unchanged across restarts).
        node: NodeId,
        /// The transaction program.
        spec: TxnSpec,
        /// Original arrival time (response time spans restarts).
        arrival: SimTime,
        /// Restart count.
        restarts: u32,
    },
    /// A CPU service slice completed on `node`.
    CpuDone {
        /// The node whose CPU ran the job.
        node: NodeId,
        /// The job that finished its pure-CPU part.
        job: Job,
    },
    /// A synchronous GEM access performed while holding a CPU finished.
    GemHeldDone {
        /// The node whose CPU was held.
        node: NodeId,
        /// Transaction for wait attribution, if any.
        txn: Option<TxnId>,
        /// What to do next.
        cont: Cont,
    },
    /// An asynchronous storage operation completed.
    IoDone {
        /// What to do next.
        cont: Cont,
    },
    /// A message finished its network transmission.
    Delivered {
        /// The message.
        msg: Msg,
    },
    /// Periodic deadlock / timeout scan.
    DeadlockScan,
    /// Periodic timeline sampling tick (scheduled only when a timeline
    /// is requested — an unobserved run never sees this event).
    TimelineSample,
    /// Injected node failure.
    NodeCrash {
        /// The failing node.
        node: NodeId,
    },
    /// The crashed node finished log-based recovery and rejoins.
    NodeRecovered {
        /// The recovered node.
        node: NodeId,
    },
}

/// A unit of CPU work on one node. The job may end with synchronous GEM
/// accesses (entry or page operations) that keep the CPU busy beyond
/// the instruction execution itself.
#[derive(Debug)]
pub(crate) struct Job {
    /// Pure instruction-execution time.
    pub service: SimDuration,
    /// Synchronous GEM entry accesses performed at the end of the slice.
    pub gem_entries: u32,
    /// Synchronous GEM page accesses performed at the end of the slice.
    pub gem_pages: u32,
    /// Transaction this work is attributed to (None for system jobs
    /// like dirty-page write-backs).
    pub txn: Option<TxnId>,
    /// Continuation fired when the job (including GEM holds) finishes.
    pub cont: Cont,
}

/// Continuations: where control flow resumes after a CPU slice, device
/// completion, or message delivery. Together with the per-transaction
/// state these encode the transaction manager's state machine (§3.2).
#[derive(Debug)]
pub(crate) enum Cont {
    /// Begin-of-transaction processing finished: start the first access.
    BotDone(TxnId),
    /// The record-access CPU slice finished: request the lock (or skip
    /// to the page phase for unlocked partitions).
    AccessCpuDone(TxnId),
    /// Perform the GEM lock-table request now (entries already timed).
    GemLockExec(TxnId),
    /// A queued GEM lock was granted; the waiter processes the grant.
    GemGrantExec(TxnId),
    /// Perform commit phase 2 against the GEM lock table now.
    GemReleaseExec(TxnId),
    /// Perform the local-GLA lock request now.
    PclLocalLockExec(TxnId),
    /// A queued local-GLA lock was granted; the waiter resumes.
    PclLocalGrantExec {
        /// The resumed transaction.
        txn: TxnId,
        /// Page that was granted.
        page: PageId,
    },
    /// A read lock was granted locally under a read authorization.
    PclRaLocalExec(TxnId),
    /// Perform PCL commit phase 2 (local releases) now.
    PclReleaseExec(TxnId),
    /// A send-CPU slice finished: put the message on the wire. If
    /// `last_of` is set, that transaction's response ends here (release
    /// messages are fire-and-forget).
    SendDone {
        /// Message to transmit.
        msg: Msg,
        /// Transaction completing with this send, if any.
        last_of: Option<TxnId>,
    },
    /// A receive-CPU slice finished: act on the message.
    RecvDone {
        /// The received message.
        msg: Msg,
    },
    /// Issue the storage read for the current access now (I/O
    /// initiation CPU done).
    StorageReadIssue(TxnId),
    /// A storage read for the current access completed: install the
    /// page and finish the access.
    StorageReadDone(TxnId),
    /// GEM-resident page read/written synchronously for the current
    /// access: install and finish.
    GemPageAccessDone(TxnId),
    /// End-of-transaction CPU finished: begin commit phase 1.
    CommitInit(TxnId),
    /// Initiate the `idx`-th commit write (CPU for I/O initiation).
    CommitWriteInit {
        /// Committing transaction.
        txn: TxnId,
        /// Index into its commit write list.
        idx: usize,
    },
    /// Issue the `idx`-th commit write to storage now.
    CommitWriteIssue {
        /// Committing transaction.
        txn: TxnId,
        /// Index into its commit write list.
        idx: usize,
    },
    /// One sequential commit write finished; continue the chain.
    CommitIoChain {
        /// Committing transaction.
        txn: TxnId,
        /// Index of the completed write.
        idx: usize,
    },
    /// Issue the dirty-page write-back to storage now (system job).
    EvictWriteIssue {
        /// Node that evicted the page.
        node: NodeId,
        /// The dirty page.
        page: PageId,
    },
    /// A dirty-page write-back completed.
    EvictWriteDone {
        /// Node that evicted the page.
        node: NodeId,
        /// The written page.
        page: PageId,
    },
    /// The GLT entry update clearing page ownership executed (after the
    /// write-back of an owned page, GEM locking / NOFORCE).
    GemOwnerClear {
        /// Former owner.
        node: NodeId,
        /// The page.
        page: PageId,
    },
    /// Owner-side handling of a page request: page stored into GEM
    /// (PageTransferMode::Gem); notify the requester.
    GemTransferStored {
        /// The original page request.
        msg: Msg,
        /// Version stored.
        seqno: u64,
    },
    /// Requester-side GEM fetch of a transferred page completed.
    GemTransferFetched(TxnId),
}

/// A message between nodes.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub body: MsgBody,
}

/// Message payloads of the two protocols.
#[derive(Debug, Clone)]
pub(crate) enum MsgBody {
    /// PCL: remote lock request to the GLA node.
    LockReq {
        /// Requesting transaction.
        txn: TxnId,
        /// Page to lock.
        page: PageId,
        /// Requested mode.
        mode: LockMode,
        /// Version of the requester's cached copy, if any (lets the GLA
        /// decide whether to piggyback the current page).
        cached: Option<u64>,
    },
    /// PCL: lock grant back to the requester, possibly carrying the
    /// current page version (NOFORCE) and/or a read authorization.
    LockGrant {
        /// Granted transaction.
        txn: TxnId,
        /// Granted page.
        page: PageId,
        /// Mode granted.
        mode: LockMode,
        /// Page sequence number at the GLA.
        seqno: u64,
        /// Whether the current page version travels with the grant
        /// (makes this a "long" message).
        with_page: bool,
        /// Whether a read authorization was granted.
        ra: bool,
    },
    /// PCL: commit-time lock release to a remote GLA node; modified
    /// pages of that authority travel along (NOFORCE), making the
    /// message "long".
    Release {
        /// Releasing transaction.
        txn: TxnId,
        /// Pages released at this authority, with their modified flag.
        pages: ReleasePages,
    },
    /// PCL read optimization: revoke a read authorization.
    Revoke {
        /// Page whose authorization is revoked.
        page: PageId,
        /// The writer whose lock waits on the revocation.
        writer: TxnId,
    },
    /// PCL read optimization: revocation acknowledged.
    RevokeAck {
        /// The page.
        page: PageId,
        /// The writer waiting for this acknowledgement.
        writer: TxnId,
    },
    /// GEM locking / NOFORCE: request the current page version from its
    /// owner.
    PageReq {
        /// Requesting transaction.
        txn: TxnId,
        /// The wanted page.
        page: PageId,
    },
    /// Reply to a page request. `found = true` makes this a "long"
    /// message carrying the page (network transfer mode); with GEM
    /// transfer mode the page travels through GEM and this stays short.
    PageReply {
        /// Requesting transaction.
        txn: TxnId,
        /// The page.
        page: PageId,
        /// Version supplied.
        seqno: u64,
        /// Whether the owner still had the page.
        found: bool,
        /// Whether the page was deposited in GEM instead of the message
        /// (GEM transfer mode).
        via_gem: bool,
    },
}

impl MsgBody {
    /// True if the message carries a page (a "long" message).
    pub fn is_long(&self) -> bool {
        match self {
            MsgBody::LockGrant { with_page, .. } => *with_page,
            MsgBody::Release { pages, .. } => pages.iter().any(|&(_, m)| m),
            MsgBody::PageReply { found, via_gem, .. } => *found && !via_gem,
            _ => false,
        }
    }
}
