//! Background machinery: dirty-page write-backs, deadlock detection /
//! lock timeouts with abort-and-restart, and end-of-run report
//! assembly.

use super::{Cont, Engine, Event, Job, Phase, LOCK_TIMEOUT, RESTART_DELAY_MS};
use crate::metrics::RunReport;
use dbshare_lockmgr::deadlock::{choose_victim, find_cycle};
use dbshare_model::{CouplingMode, NodeId, PageId, TxnId};
use dbshare_node::buffer::BufferCounters;
use desim::trace::TraceEventKind;
use desim::{SimDuration, SimTime};

/// Why a victim was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AbortReason {
    Deadlock,
    Timeout,
    Crash,
}

impl Engine {
    // ------------------------------------------------------------------
    // Dirty-page write-backs (NOFORCE replacement, §3.2)
    // ------------------------------------------------------------------

    /// A dirty page fell out of a buffer: write it back (a system job —
    /// no transaction waits for it).
    pub(crate) fn start_evict_write(&mut self, now: SimTime, node: NodeId, page: PageId) {
        self.counters.evict_writes += 1;
        self.emit(now, TraceEventKind::PageFlush, node, None, Some(page), 0);
        if self.storage.is_gem_resident(page) {
            let svc = self.fixed(self.cfg.gem.io_init_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 1,
                    txn: None,
                    cont: Cont::EvictWriteDone { node, page },
                },
            );
        } else {
            let instr = if self.storage.write_goes_to_gem(page) {
                self.cfg.gem.io_init_instr
            } else {
                self.cfg.disk.io_instr_per_page
            };
            let svc = self.fixed(instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 0,
                    txn: None,
                    cont: Cont::EvictWriteIssue { node, page },
                },
            );
        }
    }

    /// The write-back's I/O-initiation CPU finished: issue the device
    /// write.
    pub(crate) fn evict_write_issue(&mut self, now: SimTime, node: NodeId, page: PageId) {
        let served = self.storage.write_page(now, page);
        self.cal.schedule(
            served.done,
            Event::IoDone {
                cont: Cont::EvictWriteDone { node, page },
            },
        );
    }

    /// The write-back completed: under GEM locking / NOFORCE the GLT
    /// ownership entry is cleared (an entry update), unless the node's
    /// buffer meanwhile holds a *newer* dirty version of the page.
    pub(crate) fn evict_write_done(&mut self, now: SimTime, node: NodeId, page: PageId) {
        if self.is_gem_coupling() && self.is_noforce() && self.locked_partition(page) {
            if self.nodes[node.index()].buffer.is_dirty(page) {
                return; // a newer version exists; ownership stands
            }
            let svc = self.fixed(self.cfg.gem.lock_op_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: dbshare_lockmgr::GemLockTable::ENTRY_OPS,
                    gem_pages: 0,
                    txn: None,
                    cont: Cont::GemOwnerClear { node, page },
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Deadlock detection and aborts (§3.2)
    // ------------------------------------------------------------------

    /// Audit (env `DBSHARE_AUDIT`): no live transaction may be in
    /// LockWait on a page it already holds — that means a grant was
    /// lost. Panics with details at the first violation.
    pub(crate) fn audit_grants(&self, now: SimTime) {
        for t in self.txns.values() {
            if t.phase != Phase::LockWait {
                continue;
            }
            let Some(p) = t.waiting_page else { continue };
            let holds = match self.cfg.coupling {
                CouplingMode::GemLocking | CouplingMode::LockEngine => {
                    self.glt.held_mode(t.id, p).is_some()
                }
                CouplingMode::Pcl => self.gla[self.gla_map.gla_of(p).index()]
                    .holders_of(p)
                    .iter()
                    .any(|&(h, _)| h == t.id),
            };
            if holds {
                panic!(
                    "AUDIT at {now}: {:?} waits on {p} which it already holds                      (step {}, wait since {})",
                    t.id, t.step, t.wait_since
                );
            }
        }
    }

    /// Periodic scan: break *every* waits-for cycle (abort the youngest
    /// member of each, re-collecting edges after every abort since an
    /// abort wakes waiters) and abort any waiter past the lock timeout.
    pub(crate) fn deadlock_scan(&mut self, now: SimTime) {
        if std::env::var_os("DBSHARE_AUDIT").is_some() {
            self.audit_grants(now);
        }
        self.check_watchdog(now);
        let mut guard = 0u32;
        loop {
            let mut edges = match self.cfg.coupling {
                CouplingMode::GemLocking | CouplingMode::LockEngine => self.glt.waits_for_edges(),
                CouplingMode::Pcl => {
                    let mut e = Vec::new();
                    for g in &self.gla {
                        e.extend(g.waits_for_edges());
                    }
                    e
                }
            };
            // Pending writers wait for locally authorized readers at
            // other nodes (read optimization).
            for (&writer, pw) in &self.pending_writes {
                for ctx in &self.nodes {
                    for reader in ctx.ra.readers(pw.ctx.page) {
                        if reader != writer {
                            edges.push((writer, reader));
                        }
                    }
                }
            }
            // The edge list is assembled from hash maps; sort it so
            // victim selection (and thus the whole run) is reproducible.
            edges.sort_unstable();
            edges.dedup();
            let Some(cycle) = find_cycle(&edges) else {
                break;
            };
            let victim = choose_victim(&cycle);
            self.abort(now, victim, AbortReason::Deadlock);
            guard += 1;
            if guard > 10_000 {
                break; // unreachable in practice; bounds a scan
            }
        }
        // Timeout safety net.
        let mut stuck: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, t)| t.phase == Phase::LockWait && now - t.wait_since > LOCK_TIMEOUT)
            .map(|(id, _)| id)
            .collect();
        stuck.sort_unstable();
        for id in stuck {
            if std::env::var_os("DBSHARE_DEBUG_TIMEOUTS").is_some() {
                let t = self.txn(id);
                let page = t.waiting_page;
                let holders = page
                    .map(|p| match self.cfg.coupling {
                        CouplingMode::GemLocking | CouplingMode::LockEngine => self.glt.holders(p),
                        CouplingMode::Pcl => self.gla[self.gla_map.gla_of(p).index()].holders_of(p),
                    })
                    .unwrap_or_default();
                let holder_info: Vec<String> = holders
                    .iter()
                    .map(|&(h, m)| match self.txns.get(&h) {
                        Some(ht) => format!(
                            "{h:?}:{m:?} phase={:?} step={} waiting={:?}",
                            ht.phase, ht.step, ht.waiting_page
                        ),
                        None => format!("{h:?}:{m:?} NOT-LIVE(LEAK)"),
                    })
                    .collect();
                eprintln!(
                    "TIMEOUT {:?} node={} step={} page={:?} queue={} holders=[{}]",
                    id,
                    t.node,
                    t.step,
                    page,
                    page.map(|p| match self.cfg.coupling {
                        CouplingMode::GemLocking | CouplingMode::LockEngine => {
                            self.glt.queue_len(p)
                        }
                        CouplingMode::Pcl =>
                            self.gla[self.gla_map.gla_of(p).index()].queue_len_of(p),
                    })
                    .unwrap_or(0),
                    holder_info.join(" | ")
                );
                if std::env::var_os("DBSHARE_DEBUG_STUCK").is_some() {
                    self.dump_stuck(now);
                    panic!("first timeout dumped");
                }
            }
            self.abort(now, id, AbortReason::Timeout);
        }
    }

    /// No-progress watchdog: when `RunControl::watchdog_secs` is set
    /// and no transaction has committed for that long while some are
    /// live, emit a `Watchdog` trace event and dump diagnostic state
    /// to stderr. Firing rearms the quiet-period clock, so a fully
    /// wedged run produces one dump per threshold interval, not one
    /// per scan.
    fn check_watchdog(&mut self, now: SimTime) {
        let Some(secs) = self.cfg.run.watchdog_secs else {
            return;
        };
        if self.txns.is_empty() {
            return;
        }
        let since = self.last_commit_at.max(self.last_watchdog);
        if (now - since).as_secs_f64() < secs {
            return;
        }
        self.last_watchdog = now;
        let live = self.txns.len() as u64;
        self.emit(
            now,
            TraceEventKind::Watchdog,
            NodeId::new(0),
            None,
            None,
            live,
        );
        eprintln!(
            "WATCHDOG at {now}: no commit for {:.1}s with {live} live transactions",
            (now - self.last_commit_at).as_secs_f64()
        );
        self.dump_stuck(now);
    }

    /// Aborts `victim` (it is lock-waiting): all protocol state is
    /// cleaned up, waiters it blocked are woken, and the transaction
    /// restarts after a short delay. State cleanup at remote lock
    /// tables is immediate (the message costs of the rare abort paths
    /// are not modelled — aborts do not occur at all for debit-credit).
    pub(crate) fn abort(&mut self, now: SimTime, victim: TxnId, reason: AbortReason) {
        let Some(t) = self.txns.remove(&victim) else {
            return;
        };
        match reason {
            AbortReason::Deadlock => self.counters.deadlock_aborts += 1,
            AbortReason::Timeout => self.counters.timeout_aborts += 1,
            AbortReason::Crash => self.counters.crash_aborts += 1,
        }
        let reason_arg = match reason {
            AbortReason::Deadlock => 0,
            AbortReason::Timeout => 1,
            AbortReason::Crash => 2,
        };
        self.emit(
            now,
            TraceEventKind::TxnAbort,
            t.node,
            Some(victim),
            t.waiting_page,
            reason_arg,
        );
        match self.cfg.coupling {
            CouplingMode::GemLocking | CouplingMode::LockEngine => {
                if let Some(p) = t.waiting_page {
                    let grants = self.glt.release(victim, p);
                    let grants = grants.into_iter().map(|(t2, m)| (p, t2, m)).collect();
                    self.process_gem_grants(now, grants);
                }
                let grants = self.glt.release_all(victim);
                self.process_gem_grants(now, grants);
            }
            CouplingMode::Pcl => {
                self.remote_ctx.remove(&victim);
                self.pending_writes.remove(&victim);
                if let Some(p) = t.waiting_page {
                    let g = self.gla_map.gla_of(p);
                    let grants = self.gla[g.index()].release(victim, p);
                    let grants = grants.into_iter().map(|(t2, m)| (p, t2, m)).collect();
                    self.process_gla_grants(now, g, grants);
                }
                let mut authorities: Vec<NodeId> = t.held_gla.iter().map(|&(g, _, _)| g).collect();
                authorities.sort_unstable();
                authorities.dedup();
                for g in authorities {
                    let grants = self.gla[g.index()].release_all(victim);
                    self.process_gla_grants(now, g, grants);
                }
                for &p in &t.held_ra {
                    if self.nodes[t.node.index()].ra.release(victim, p) {
                        self.send_deferred_ack(now, t.node, p);
                    }
                }
            }
        }
        // Free the MPL slot (admit the next queued transaction).
        if let Some((next, _)) = self.nodes[t.node.index()].mpl.release(now) {
            if let Some(n) = self.txns.get_mut(&next) {
                n.admitted = now;
                n.phase = Phase::Running;
                self.start_txn(now, next);
            }
        }
        // Restart after a short randomized delay.
        let delay = SimDuration::from_millis_f64(self.restart_rng.exp(RESTART_DELAY_MS));
        self.cal.schedule(
            now + delay,
            Event::Restart {
                node: t.node,
                spec: t.spec,
                arrival: t.arrival,
                restarts: t.restarts + 1,
            },
        );
    }

    /// Diagnostic dump: every live transaction's phase, and for lock
    /// waiters the holders of the page they wait for (env
    /// `DBSHARE_DEBUG_STUCK`).
    pub(crate) fn dump_stuck(&self, now: SimTime) {
        // Phase counts in a fixed order so the dump is reproducible
        // (a map printed in iteration order is not).
        const PHASES: [(&str, Phase); 5] = [
            ("input", Phase::InputQueue),
            ("running", Phase::Running),
            ("lockwait", Phase::LockWait),
            ("pagewait", Phase::PageWait),
            ("commitio", Phase::CommitIo),
        ];
        // One extra bucket for phases the table doesn't know: a stuck
        // run's diagnostic must degrade to "other", never panic.
        let mut counts = [0usize; PHASES.len() + 1];
        for t in self.txns.values() {
            let bucket = PHASES
                .iter()
                .position(|&(_, p)| p == t.phase)
                .unwrap_or(PHASES.len());
            counts[bucket] += 1;
        }
        let summary: Vec<String> = PHASES
            .iter()
            .map(|&(label, _)| label)
            .chain(std::iter::once("other"))
            .zip(counts)
            .filter(|&(_, c)| c > 0)
            .map(|(label, c)| format!("{label}: {c}"))
            .collect();
        eprintln!(
            "STUCK phases: {{{}}} live={}",
            summary.join(", "),
            self.txns.len()
        );
        for (i, ctx) in self.nodes.iter().enumerate() {
            // Per-node wait-class depths and the oldest live arrival:
            // shows *where* a stalled node's transactions sit.
            let mut input = 0usize;
            let mut lockwait = 0usize;
            let mut iowait = 0usize;
            let mut oldest: Option<SimTime> = None;
            for t in self.txns.values() {
                if t.node.index() != i {
                    continue;
                }
                match t.phase {
                    Phase::InputQueue => input += 1,
                    Phase::LockWait => lockwait += 1,
                    Phase::PageWait | Phase::CommitIo => iowait += 1,
                    Phase::Running => {}
                }
                oldest = Some(oldest.map_or(t.arrival, |o| o.min(t.arrival)));
            }
            let oldest_age = oldest.map_or(0.0, |a| (now - a).as_secs_f64());
            eprintln!(
                "  NODE {i}: cpus in_use={} queue={} mpl in_use={} queue={} input={input} lockwait={lockwait} iowait={iowait} oldest_txn_age={oldest_age:.1}s",
                ctx.cpus.in_use(),
                ctx.cpus.queue_len(),
                ctx.mpl.in_use(),
                ctx.mpl.queue_len(),
            );
        }
        if self.is_gem_coupling() {
            for part in 0..self.part_names.len() {
                for pno in 0..16u64 {
                    let pg = PageId::new(dbshare_model::PartitionId::new(part as u16), pno);
                    let hs = self.glt.holders(pg);
                    if !hs.is_empty() {
                        let live: Vec<String> = hs
                            .iter()
                            .map(|&(h, m)| {
                                format!(
                                    "{h:?}:{m:?}:{}",
                                    if self.txns.contains_key(&h) {
                                        "live"
                                    } else {
                                        "LEAKED"
                                    }
                                )
                            })
                            .collect();
                        eprintln!(
                            "  PAGE {pg} holders=[{}] queue={}",
                            live.join(","),
                            self.glt.queue_len(pg)
                        );
                    }
                }
            }
        }
        if self.is_gem_coupling() {
            let mut edges = self.glt.waits_for_edges();
            edges.sort_unstable();
            edges.dedup();
            eprintln!(
                "  EDGES({}): {:?}",
                edges.len(),
                &edges[..edges.len().min(60)]
            );
            eprintln!("  CYCLE: {:?}", find_cycle(&edges));
            let mut lw: Vec<_> = self
                .txns
                .values()
                .filter(|t| t.phase == Phase::LockWait)
                .map(|t| (t.id, t.held_gem.clone(), t.waiting_page))
                .collect();
            lw.sort_by_key(|x| x.0);
            for (id, held, wait) in lw.iter().take(40) {
                eprintln!("  LW {id:?} holds={held:?} waits={wait:?}");
            }
        }
        for t in self.txns.values() {
            if matches!(t.phase, Phase::Running | Phase::PageWait | Phase::CommitIo) {
                eprintln!(
                    "  ACTIVE {:?} node={} phase={:?} step={}/{} waiting={:?} held_gem={:?} held_gla={:?} modified={:?} commit_writes={}",
                    t.id, t.node, t.phase, t.step, t.spec.refs().len(),
                    t.waiting_page, t.held_gem, t.held_gla, t.modified,
                    t.commit_writes.len(),
                );
            }
        }
        let mut waits: Vec<_> = self
            .txns
            .values()
            .filter(|t| t.phase == Phase::LockWait)
            .collect();
        waits.sort_by_key(|t| t.wait_since);
        for t in waits.iter().take(12) {
            eprintln!(
                "  {:?} node={} phase={:?} step={}/{} waiting={:?} since={:.1}s held_gem={} held_gla={}",
                t.id,
                t.node,
                t.phase,
                t.step,
                t.spec.refs().len(),
                t.waiting_page,
                (now - t.wait_since).as_secs_f64(),
                t.held_gem.len(),
                t.held_gla.len(),
            );
            if let Some(p) = t.waiting_page {
                let (holders, qlen) = match self.cfg.coupling {
                    CouplingMode::GemLocking | CouplingMode::LockEngine => {
                        (self.glt.holders(p), self.glt.queue_len(p))
                    }
                    CouplingMode::Pcl => {
                        let g = self.gla_map.gla_of(p).index();
                        (self.gla[g].holders_of(p), self.gla[g].queue_len_of(p))
                    }
                };
                eprintln!("    holders={holders:?} queue={qlen}");
                for (h, _) in holders.iter().take(3) {
                    if let Some(ht) = self.txns.get(h) {
                        eprintln!(
                            "    -> holder {:?} phase={:?} step={}/{} waiting={:?} node={}",
                            h,
                            ht.phase,
                            ht.step,
                            ht.spec.refs().len(),
                            ht.waiting_page,
                            ht.node
                        );
                    } else {
                        eprintln!("    -> holder {h:?} NOT LIVE (leaked lock!)");
                    }
                }
            }
        }
        // Pipeline diagnostics (`--cores > 1`): stage-lane delivery
        // counters and the calendar depth, so a stuck pipelined run
        // shows whether a lane stalled or the event queue drained.
        for &(label, ref watch) in &self.pipe_watches {
            let s = watch.stats();
            eprintln!(
                "  PIPE {label}: batches={} items={} occupancy={:.1} partial={} locks={} stalls={}",
                s.batches,
                s.items,
                s.occupancy(),
                s.partial,
                s.locks,
                s.stalls,
            );
        }
        if self.cfg.run.cores > 1 {
            eprintln!(
                "  CAL depth={} scheduled={}",
                self.cal.len(),
                self.cal.total_scheduled()
            );
        }
    }

    // ------------------------------------------------------------------
    // Failure injection (reproduction extension)
    // ------------------------------------------------------------------

    /// The node fails: its volatile state is lost. Every transaction it
    /// was running aborts (restarting on a survivor); under GEM locking
    /// the non-volatile global lock table survives, only page
    /// ownerships pointing into the dead buffer are cleared; under PCL
    /// the node's lock-authority tables are volatile, so every
    /// transaction with state at that authority must abort as well, and
    /// requests to the authority stall until recovery (messages are
    /// delivered after the recovery point, see `deliver`).
    ///
    /// Modelling note: CPU jobs already queued on the failing node when
    /// it crashes still run to completion (their continuations are
    /// no-ops once their transactions are gone). This slightly
    /// understates the crash's disruption; the work involved is a few
    /// milliseconds of in-flight slices.
    pub(crate) fn node_crash(&mut self, now: SimTime, node: NodeId) {
        self.down[node.index()] = true;
        // Arrivals waiting for an MPL slot restart on a survivor. The
        // drain reuses the engine-owned scratch buffer.
        let mut queued = std::mem::take(&mut self.scratch_queue);
        queued.clear();
        self.nodes[node.index()]
            .mpl
            .drain_queue_into(now, &mut queued);
        for &id in &queued {
            if let Some(t) = self.txns.remove(&id) {
                self.counters.crash_aborts += 1;
                self.schedule_restart(now, &t);
            }
        }
        self.scratch_queue = queued;
        // Every live transaction executing on the node aborts.
        let mut victims: Vec<TxnId> = self
            .txns
            .values()
            .filter(|t| t.node == node)
            .map(|t| t.id)
            .collect();
        victims.sort_unstable();
        for v in victims {
            self.abort(now, v, AbortReason::Crash);
        }
        // The buffer content is gone.
        let parts = self.part_names.len();
        self.nodes[node.index()].buffer =
            dbshare_node::BufferManager::new(self.cfg.buffer_pages_per_node, parts);
        match self.cfg.coupling {
            CouplingMode::GemLocking | CouplingMode::LockEngine => {
                // GEM is non-volatile: the GLT survives. Pages owned by
                // the dead buffer are recovered from the log to the
                // permanent database (modelled as instantaneous within
                // the recovery window); ownership reverts to storage.
                self.glt.clear_node_ownership(node);
            }
            CouplingMode::Pcl => {
                // The node's lock-authority state was volatile: every
                // transaction holding or waiting at it loses its locks.
                let mut txns = self.gla[node.index()].all_txns();
                txns.sort_unstable();
                for v in txns {
                    self.abort(now, v, AbortReason::Crash);
                }
            }
        }
    }

    /// The node rejoins with a cold buffer.
    pub(crate) fn node_recovered(&mut self, now: SimTime, node: NodeId) {
        let _ = now;
        self.down[node.index()] = false;
    }

    /// Schedules a restart of `t` (used by crash handling; deadlock
    /// aborts go through [`abort`](Engine::abort)).
    pub(crate) fn schedule_restart(&mut self, now: SimTime, t: &super::Txn) {
        let delay = SimDuration::from_millis_f64(self.restart_rng.exp(RESTART_DELAY_MS));
        self.cal.schedule(
            now + delay,
            Event::Restart {
                node: t.node,
                spec: t.spec.clone(),
                arrival: t.arrival,
                restarts: t.restarts + 1,
            },
        );
    }

    // ------------------------------------------------------------------
    // Report assembly
    // ------------------------------------------------------------------

    /// Builds the end-of-run report at `now`. Also constructs and
    /// validates the merged global log (§2 / \[Ra91a\]) — an internal
    /// consistency check on commit ordering.
    pub(crate) fn build_report(&mut self, now: SimTime) -> RunReport {
        let global_log = dbshare_storage::globallog::merge(&self.local_logs);
        let global_log_records = dbshare_storage::globallog::validate(&global_log)
            .expect("global log must merge consistently") as u64;
        let c = self.counters.since(&self.base);
        let n = self.measured.max(1) as f64;
        let dev = self.storage.report(now);
        let span = (now - self.metrics.started).as_secs_f64().max(1e-9);

        let mut cpu_per_node = Vec::with_capacity(self.nodes.len());
        for ctx in self.nodes.iter_mut() {
            cpu_per_node.push(ctx.cpus.utilization(now));
        }
        let cpu_avg = cpu_per_node.iter().sum::<f64>() / cpu_per_node.len() as f64;
        let cpu_max = cpu_per_node.iter().cloned().fold(0.0, f64::max);

        // Aggregate buffer counters per partition across nodes.
        let mut hit_ratios = Vec::new();
        for (pi, name) in self.part_names.iter().enumerate() {
            let mut agg = BufferCounters::default();
            for ctx in &self.nodes {
                let cnt = ctx.buffer.counters(pi);
                agg.hits += cnt.hits;
                agg.misses += cnt.misses;
                agg.invalidations += cnt.invalidations;
            }
            hit_ratios.push((name.clone(), agg.hit_ratio()));
        }

        let local_lock_fraction = match self.cfg.coupling {
            CouplingMode::GemLocking | CouplingMode::LockEngine => None,
            CouplingMode::Pcl => {
                let mut local = 0u64;
                let mut remote = 0u64;
                for (i, g) in self.gla.iter().enumerate() {
                    let (l, r) = g.request_counts();
                    local += l - self.base_gla[i].0;
                    remote += r - self.base_gla[i].1;
                }
                for (i, ctx) in self.nodes.iter().enumerate() {
                    local += ctx.ra.local_grants() - self.base_ra[i];
                }
                let total = local + remote;
                Some(if total == 0 {
                    1.0
                } else {
                    local as f64 / total as f64
                })
            }
        };

        let avg_refs = self.metrics.refs_completed as f64 / n;
        let norm_response_ms = self.metrics.resp_per_ref.mean() * avg_refs;

        RunReport {
            nodes: self.cfg.nodes,
            measured_txns: self.measured,
            truncated: self.truncated,
            sim_seconds: span,
            throughput_tps: self.measured as f64 / span,
            throughput_timeline: std::mem::take(&mut self.metrics.timeline),
            timeline_bucket_secs: self.metrics.timeline_bucket_secs,
            mean_response_ms: self.metrics.resp.mean(),
            response_ci95_ms: self.metrics.resp_batches.ci95_half_width(),
            p50_response_ms: self.metrics.resp_hist.percentile(50.0).as_millis_f64(),
            p95_response_ms: self.metrics.resp_hist.percentile(95.0).as_millis_f64(),
            norm_response_ms,
            input_wait_ms: self.metrics.input_wait.mean(),
            lock_wait_ms: self.metrics.lock_wait.mean(),
            io_wait_ms: self.metrics.io_wait.mean(),
            cpu_wait_ms: self.metrics.cpu_wait.mean(),
            cpu_service_ms: self.metrics.cpu_service.mean(),
            cpu_utilization: cpu_avg,
            cpu_utilization_max: cpu_max,
            cpu_utilization_per_node: cpu_per_node,
            gem_utilization: dev.gem_utilization,
            lock_engine_utilization: dev.lock_engine_utilization,
            network_utilization: dev.network_utilization,
            messages_per_txn: dev.messages as f64 / n,
            gem_entries_per_txn: dev.gem_entry_ops as f64 / n,
            page_requests_per_txn: c.page_requests as f64 / n,
            page_transfers_per_txn: c.page_transfers as f64 / n,
            revokes_per_txn: c.revokes_sent as f64 / n,
            page_req_delay_ms: self.metrics.page_req_delay.mean(),
            lock_requests_per_txn: c.lock_requests as f64 / n,
            local_lock_fraction,
            lock_waits_per_txn: c.lock_waits as f64 / n,
            invalidations_per_txn: c.invalidations as f64 / n,
            reads_per_txn: c.storage_reads as f64 / n,
            writes_per_txn: (c.commit_writes + c.log_writes) as f64 / n,
            evict_writes_per_txn: c.evict_writes as f64 / n,
            hit_ratios,
            disk_utilizations: self
                .part_names
                .iter()
                .cloned()
                .zip(dev.partitions.iter().map(|p| p.disk_utilization))
                .collect(),
            log_utilization_max: dev.log_utilization.iter().cloned().fold(0.0, f64::max),
            deadlock_aborts: c.deadlock_aborts,
            timeout_aborts: c.timeout_aborts,
            crash_aborts: c.crash_aborts,
            global_log_records,
            events_processed: self.cal.total_scheduled(),
            profile: self.profile.clone(),
            tps_per_node_at_80pct_cpu: if cpu_avg > 1e-9 {
                self.cfg.arrival_tps_per_node * 0.8 / cpu_avg
            } else {
                0.0
            },
        }
    }
}
