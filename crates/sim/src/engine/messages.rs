//! Message handling: the communication subsystem (§3.2) plus the
//! receiver-side protocol actions of PCL and the page-transfer paths.

use super::{Cont, Engine, Job, Msg, MsgBody, PendingWrite, Phase, ReqCtx};
use dbshare_lockmgr::pcl::RevokeAction;
use dbshare_lockmgr::{LockMode, LockReply};
use dbshare_model::{NodeId, PageId, PageTransferMode, TxnId};
use dbshare_node::Lookup;
use desim::trace::TraceEventKind;
use desim::SimTime;

/// Transaction a message is about, for trace attribution.
fn msg_txn(body: &MsgBody) -> Option<TxnId> {
    match body {
        MsgBody::LockReq { txn, .. }
        | MsgBody::LockGrant { txn, .. }
        | MsgBody::Release { txn, .. }
        | MsgBody::PageReq { txn, .. }
        | MsgBody::PageReply { txn, .. } => Some(*txn),
        MsgBody::Revoke { writer, .. } | MsgBody::RevokeAck { writer, .. } => Some(*writer),
    }
}

impl Engine {
    /// Queues the send-side CPU work for `msg` on the sending node.
    /// `attributed` charges the CPU to a transaction's statistics;
    /// `last_of` completes that transaction once the message is on the
    /// wire (used for fire-and-forget release messages).
    pub(crate) fn send_msg(
        &mut self,
        now: SimTime,
        msg: Msg,
        attributed: Option<TxnId>,
        last_of: Option<TxnId>,
    ) {
        let instr = if msg.body.is_long() {
            self.cfg.comm.long_msg_instr
        } else {
            self.cfg.comm.short_msg_instr
        };
        let svc = self.fixed(instr);
        let node = msg.from;
        self.dispatch(
            now,
            node,
            Job {
                service: svc,
                gem_entries: 0,
                gem_pages: 0,
                txn: attributed,
                cont: Cont::SendDone { msg, last_of },
            },
        );
    }

    /// Send CPU finished: transmit, and complete the sender if this was
    /// its final action.
    pub(crate) fn send_done(&mut self, now: SimTime, msg: Msg, last_of: Option<TxnId>) {
        let bytes = if msg.body.is_long() {
            self.cfg.comm.long_msg_bytes
        } else {
            self.cfg.comm.short_msg_bytes
        };
        let delivered = self.storage.send(now, bytes);
        self.emit(
            now,
            TraceEventKind::MsgSend,
            msg.from,
            msg_txn(&msg.body),
            None,
            u64::from(msg.to.raw()),
        );
        self.cal
            .schedule(delivered, super::Event::Delivered { msg });
        if let Some(id) = last_of {
            self.txn_complete(now, id);
        }
    }

    /// Transmission finished: queue the receive-side CPU work. A
    /// message for a *down* node sits in its receive queue until the
    /// node recovers (failure injection).
    pub(crate) fn deliver(&mut self, now: SimTime, msg: Msg) {
        if self.down[msg.to.index()] {
            if let Some(crash) = self.cfg.crash {
                let back = SimTime::ZERO
                    + desim::SimDuration::from_secs_f64(crash.at_secs + crash.recovery_secs);
                if back > now {
                    self.cal.schedule(back, super::Event::Delivered { msg });
                    return;
                }
            }
        }
        let mut instr = if msg.body.is_long() {
            self.cfg.comm.long_msg_instr
        } else {
            self.cfg.comm.short_msg_instr
        };
        // Protocol processing folded into the receive slice.
        match &msg.body {
            MsgBody::LockReq { .. } | MsgBody::Revoke { .. } | MsgBody::RevokeAck { .. } => {
                instr += self.cfg.pcl_local_lock_instr;
            }
            MsgBody::Release { pages, .. } => {
                instr += self.cfg.pcl_local_lock_instr * pages.len().max(1) as f64;
            }
            _ => {}
        }
        let attributed = match &msg.body {
            MsgBody::LockGrant { txn, .. } | MsgBody::PageReply { txn, .. } => Some(*txn),
            _ => None,
        };
        let svc = self.fixed(instr);
        let node = msg.to;
        self.emit(
            now,
            TraceEventKind::MsgRecv,
            node,
            msg_txn(&msg.body),
            None,
            u64::from(msg.from.raw()),
        );
        self.dispatch(
            now,
            node,
            Job {
                service: svc,
                gem_entries: 0,
                gem_pages: 0,
                txn: attributed,
                cont: Cont::RecvDone { msg },
            },
        );
    }

    /// Receive CPU finished: act on the message.
    pub(crate) fn handle_msg(&mut self, now: SimTime, msg: Msg) {
        // Take the body apart by value: cloning it would copy the
        // Release page list (a heap allocation whenever it spilled).
        let Msg { from, to, body } = msg;
        match body {
            MsgBody::LockReq {
                txn,
                page,
                mode,
                cached,
            } => self.gla_lock_req(now, to, from, txn, page, mode, cached),
            MsgBody::LockGrant {
                txn,
                page,
                mode,
                seqno,
                with_page,
                ra,
            } => self.requester_grant(now, to, txn, page, mode, seqno, with_page, ra),
            MsgBody::Release { txn, pages } => self.gla_release(now, to, txn, pages),
            MsgBody::Revoke { page, writer } => match self.nodes[to.index()].ra.revoke(page) {
                RevokeAction::AckNow => self.send_msg(
                    now,
                    Msg {
                        from: to,
                        to: from,
                        body: MsgBody::RevokeAck { page, writer },
                    },
                    None,
                    None,
                ),
                RevokeAction::Deferred => {
                    self.nodes[to.index()]
                        .pending_acks
                        .insert(page, (from, writer));
                }
            },
            MsgBody::RevokeAck { page, writer } => {
                let ready = if let Some(pw) = self.pending_writes.get_mut(&writer) {
                    debug_assert_eq!(pw.ctx.page, page, "ack for the wrong page");
                    pw.acks_left = pw.acks_left.saturating_sub(1);
                    pw.acks_left == 0 && pw.granted
                } else {
                    false // writer aborted meanwhile
                };
                if ready {
                    self.finish_pending_write(now, writer);
                }
            }
            MsgBody::PageReq { txn, page } => self.owner_page_req(now, to, from, txn, page),
            MsgBody::PageReply {
                txn,
                page,
                seqno,
                found,
                via_gem,
            } => self.requester_page_reply(now, to, txn, page, seqno, found, via_gem),
        }
    }

    // ------------------------------------------------------------------
    // PCL receiver-side actions
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn gla_lock_req(
        &mut self,
        now: SimTime,
        gla_node: NodeId,
        from: NodeId,
        txn: TxnId,
        page: PageId,
        mode: LockMode,
        cached: Option<u64>,
    ) {
        let ro = self.cfg.pcl_read_optimization;
        let out = self.gla[gla_node.index()].request(txn, from, page, mode, false, ro);
        let ctx = ReqCtx {
            from,
            page,
            mode,
            cached,
        };
        if !out.revoke.is_empty() {
            self.counters.revokes_sent += out.revoke.len() as u64;
            self.counters.lock_waits += 1;
            self.pending_writes.insert(
                txn,
                PendingWrite {
                    gla: gla_node,
                    acks_left: out.revoke.len() as u64,
                    granted: out.reply != LockReply::Queued,
                    ctx,
                },
            );
            for target in out.revoke {
                self.send_msg(
                    now,
                    Msg {
                        from: gla_node,
                        to: target,
                        body: MsgBody::Revoke { page, writer: txn },
                    },
                    None,
                    None,
                );
            }
            return;
        }
        match out.reply {
            LockReply::Granted | LockReply::AlreadyHeld => {
                self.send_pcl_grant(now, gla_node, txn, ctx);
            }
            LockReply::Queued => {
                self.counters.lock_waits += 1;
                self.remote_ctx.insert(txn, ctx);
            }
        }
    }

    /// The requester processes a lock grant from a remote GLA.
    #[allow(clippy::too_many_arguments)]
    fn requester_grant(
        &mut self,
        now: SimTime,
        node: NodeId,
        txn: TxnId,
        page: PageId,
        mode: LockMode,
        seqno: u64,
        with_page: bool,
        ra: bool,
    ) {
        let Some(t) = self.txns.get_mut(&txn) else {
            return; // aborted while the grant was in flight
        };
        let waited = if t.phase == Phase::LockWait {
            (now - t.wait_since).as_nanos()
        } else {
            0
        };
        t.end_lock_wait(now);
        if let Some(h) = t.held_gla.iter_mut().find(|h| h.1 == page) {
            if mode == LockMode::Write {
                h.2 = LockMode::Write;
            }
        } else {
            let gla = self.gla_map.gla_of(page);
            t.held_gla.push((gla, page, mode));
        }
        t.page_seqnos.insert(page, seqno);
        self.emit(
            now,
            TraceEventKind::LockGrant,
            node,
            Some(txn),
            Some(page),
            waited,
        );
        if ra {
            self.nodes[node.index()].ra.grant_authorization(page);
        }
        if with_page {
            // The current version travelled with the grant: install it.
            let lookup = self.nodes[node.index()].buffer.lookup(page, seqno);
            if lookup == Lookup::Invalidated {
                self.counters.invalidations += 1;
            }
            if lookup != Lookup::Hit {
                let evicted = self.nodes[node.index()].buffer.insert(page, seqno, false);
                if let Some((victim, _)) = evicted {
                    self.start_evict_write(now, node, victim);
                }
            }
            self.finish_access(now, txn);
        } else {
            self.acquire_page(now, txn, seqno, None, true);
        }
    }

    /// The GLA processes a commit-time release: record modifications
    /// (receiving the new versions under NOFORCE), release the locks,
    /// and wake waiters.
    fn gla_release(
        &mut self,
        now: SimTime,
        gla_node: NodeId,
        txn: TxnId,
        mut pages: super::events::ReleasePages,
    ) {
        let noforce = self.is_noforce();
        for (page, modified) in &pages {
            if *modified {
                let new_seq = self.gla[gla_node.index()].record_modification(*page);
                if noforce {
                    // The GLA node owns its partition's pages: the new
                    // version now lives (dirty) in its buffer.
                    let evicted = self.nodes[gla_node.index()]
                        .buffer
                        .mark_dirty(*page, new_seq);
                    if let Some((victim, _)) = evicted {
                        self.start_evict_write(now, gla_node, victim);
                    }
                }
            }
        }
        // The emptied buffer goes back to the pool for the next commit.
        pages.clear();
        self.release_pool.push(pages);
        let grants = self.gla[gla_node.index()].release_all(txn);
        self.process_gla_grants(now, gla_node, grants);
    }

    // ------------------------------------------------------------------
    // GEM-locking page transfers (NOFORCE)
    // ------------------------------------------------------------------

    /// The owner answers a page request: from its buffer (long reply),
    /// through GEM (transfer mode), or "not found" after it already
    /// wrote the page back.
    fn owner_page_req(
        &mut self,
        now: SimTime,
        owner: NodeId,
        from: NodeId,
        txn: TxnId,
        page: PageId,
    ) {
        let cached = self.nodes[owner.index()].buffer.cached_seqno(page);
        match cached {
            Some(seqno) if self.cfg.page_transfer == PageTransferMode::Gem => {
                // Deposit the page in GEM (synchronous, CPU held), then
                // notify the requester with a short message.
                let svc = self.fixed(self.cfg.gem.io_init_instr);
                self.dispatch(
                    now,
                    owner,
                    Job {
                        service: svc,
                        gem_entries: 0,
                        gem_pages: 1,
                        txn: None,
                        cont: Cont::GemTransferStored {
                            msg: Msg {
                                from: owner,
                                to: from,
                                body: MsgBody::PageReq { txn, page },
                            },
                            seqno,
                        },
                    },
                );
            }
            Some(seqno) => {
                self.counters.page_transfers += 1;
                self.emit(
                    now,
                    TraceEventKind::PageTransfer,
                    owner,
                    Some(txn),
                    Some(page),
                    u64::from(from.raw()),
                );
                self.send_msg(
                    now,
                    Msg {
                        from: owner,
                        to: from,
                        body: MsgBody::PageReply {
                            txn,
                            page,
                            seqno,
                            found: true,
                            via_gem: false,
                        },
                    },
                    None,
                    None,
                );
            }
            None => {
                // Already replaced and written back: the requester reads
                // the permanent database (its read queues behind the
                // write-back on the same disk, so it sees the new
                // version).
                self.send_msg(
                    now,
                    Msg {
                        from: owner,
                        to: from,
                        body: MsgBody::PageReply {
                            txn,
                            page,
                            seqno: 0,
                            found: false,
                            via_gem: false,
                        },
                    },
                    None,
                    None,
                );
            }
        }
    }

    /// Owner finished storing the transferred page in GEM: notify.
    pub(crate) fn gem_transfer_stored(&mut self, now: SimTime, msg: Msg, seqno: u64) {
        self.counters.gem_transfers += 1;
        let MsgBody::PageReq { txn, page } = msg.body else {
            return;
        };
        self.emit(
            now,
            TraceEventKind::PageTransfer,
            msg.from,
            Some(txn),
            Some(page),
            u64::from(msg.to.raw()),
        );
        self.send_msg(
            now,
            Msg {
                from: msg.from,
                to: msg.to,
                body: MsgBody::PageReply {
                    txn,
                    page,
                    seqno,
                    found: true,
                    via_gem: true,
                },
            },
            None,
            None,
        );
    }

    /// The requester processes a page reply.
    #[allow(clippy::too_many_arguments)]
    fn requester_page_reply(
        &mut self,
        now: SimTime,
        node: NodeId,
        txn: TxnId,
        page: PageId,
        seqno: u64,
        found: bool,
        via_gem: bool,
    ) {
        let Some(t) = self.txns.get(&txn) else { return };
        debug_assert_eq!(t.node, node);
        if !found {
            self.start_storage_read_for(now, txn, page);
            return;
        }
        if via_gem {
            // Fetch the page from GEM (synchronous).
            let svc = self.fixed(self.cfg.gem.io_init_instr);
            self.dispatch(
                now,
                node,
                Job {
                    service: svc,
                    gem_entries: 0,
                    gem_pages: 1,
                    txn: Some(txn),
                    cont: Cont::GemTransferFetched(txn),
                },
            );
            return;
        }
        self.install_transferred_page(now, txn, page, seqno);
    }

    /// Requester finished reading the transferred page out of GEM.
    pub(crate) fn gem_transfer_fetched(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let page = t.spec.refs()[t.step].page;
        let seqno = t.page_seqnos.get(&page).copied().unwrap_or(0);
        self.install_transferred_page(now, id, page, seqno);
    }

    fn install_transferred_page(&mut self, now: SimTime, id: TxnId, page: PageId, seqno: u64) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        let node = t.node;
        let waited = (now - t.wait_since).as_nanos();
        let delay_ms = (now - t.wait_since).as_millis_f64();
        t.end_io_wait(now);
        self.stats_page_req_delay(delay_ms);
        let evicted = self.nodes[node.index()].buffer.insert(page, seqno, false);
        if let Some((victim, _)) = evicted {
            self.start_evict_write(now, node, victim);
        }
        self.emit(
            now,
            TraceEventKind::PageReadDone,
            node,
            Some(id),
            Some(page),
            waited,
        );
        self.finish_access(now, id);
    }

    /// Delayed storage read used by the not-found page-reply path (the
    /// transaction is mid-access; the page identity is explicit).
    fn start_storage_read_for(&mut self, now: SimTime, id: TxnId, page: PageId) {
        debug_assert_eq!(self.txn(id).spec.refs()[self.txn(id).step].page, page);
        let node = self.txn(id).node;
        let svc = self.fixed(self.cfg.disk.io_instr_per_page);
        self.dispatch(
            now,
            node,
            Job {
                service: svc,
                gem_entries: 0,
                gem_pages: 0,
                txn: Some(id),
                cont: Cont::StorageReadIssue(id),
            },
        );
    }

    /// Sends a deferred revocation acknowledgement for `page`, if one
    /// is owed by `node`.
    pub(crate) fn send_deferred_ack(&mut self, now: SimTime, node: NodeId, page: PageId) {
        if let Some((gla, writer)) = self.nodes[node.index()].pending_acks.remove(&page) {
            self.send_msg(
                now,
                Msg {
                    from: node,
                    to: gla,
                    body: MsgBody::RevokeAck { page, writer },
                },
                None,
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::PartitionId;

    /// Regression for the `out.revoke.len() as u32` truncation: a
    /// revoke set one wider than `u32::MAX` used to wrap `acks_left`
    /// to 1, granting the write lock after a single acknowledgement
    /// with ~4 billion revocations still outstanding. The counter is
    /// `u64` now; walk it across the old boundary and check it
    /// neither wraps nor reaches zero early.
    #[test]
    fn acks_left_counts_past_the_u32_boundary() {
        let wide = u64::from(u32::MAX) + 2;
        let mut pw = PendingWrite {
            gla: NodeId::new(0),
            acks_left: wide,
            granted: true,
            ctx: ReqCtx {
                from: NodeId::new(0),
                page: PageId::new(PartitionId::new(0), 0),
                mode: LockMode::Write,
                cached: None,
            },
        };
        // The ack handler's exact arithmetic (messages.rs RevokeAck).
        for acked in 1..=3u64 {
            pw.acks_left = pw.acks_left.saturating_sub(1);
            assert_eq!(pw.acks_left, wide - acked);
            assert_ne!(pw.acks_left, 0, "granted with acks outstanding");
        }
        // And the conversion from a usize revoke-set length is
        // lossless for every representable length (64-bit hosts).
        let len: usize = 5_000_000_000usize;
        assert_eq!(len as u64, 5_000_000_000u64);
    }
}
