//! The simulation engine: event loop, CPU dispatch, and transaction
//! lifecycle (the transaction manager of §3.2).

mod access;
mod commit;
mod events;
mod maintenance;
mod messages;
mod parallel;
mod telemetry;
mod txn;
mod txntable;

pub(crate) use events::{Cont, Event, Job, Msg, MsgBody};
pub(crate) use parallel::{ArrivalSource, StatsStage, TraceStage};
pub(crate) use telemetry::TimelineState;
pub(crate) use txn::{Phase, Txn};
pub(crate) use txntable::TxnTable;

use crate::metrics::{Counters, Metrics, RunProfile, RunReport};
use crate::observe::Observe;
use dbshare_lockmgr::pcl::{GlaState, RaTable};
use dbshare_lockmgr::{GemLockTable, LockMode};
use dbshare_model::config::ConfigError;
use dbshare_model::gla::GlaMap;
use dbshare_model::{CouplingMode, NodeId, PageId, SystemConfig, TxnId, TxnSpec, UpdateStrategy};
use dbshare_node::{BufferManager, CostModel};
use dbshare_storage::globallog::LocalLog;
use dbshare_storage::StorageSubsystem;
use dbshare_workload::Workload;
use desim::fxhash::{self, FxHashMap};
use desim::trace::{TraceEventKind, TraceSink};
use desim::{Calendar, Resource, Rng, SimDuration, SimTime};

/// Interval between deadlock / timeout scans.
pub(crate) const DEADLOCK_SCAN_EVERY: SimDuration = SimDuration::from_millis(250);
/// Lock waits longer than this abort the waiter (safety net; expected
/// not to trigger for the paper's workloads).
pub(crate) const LOCK_TIMEOUT: SimDuration = SimDuration::from_secs(30);
/// Mean restart delay after a deadlock abort.
pub(crate) const RESTART_DELAY_MS: f64 = 50.0;

/// Per-node runtime context.
pub(crate) struct NodeCtx {
    pub cpus: Resource<Job>,
    pub mpl: Resource<TxnId>,
    pub buffer: BufferManager,
    pub ra: RaTable,
    pub cost: CostModel,
    pub rng: Rng,
    /// Deferred revocation acknowledgements: page → (GLA node, writer).
    pub pending_acks: FxHashMap<PageId, (NodeId, TxnId)>,
}

/// A remote lock request context kept at the GLA side until the grant
/// can be sent (queued requests and pending writes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqCtx {
    pub from: NodeId,
    pub page: PageId,
    pub mode: LockMode,
    pub cached: Option<u64>,
}

/// A write lock waiting for read-authorization revocations.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingWrite {
    pub gla: NodeId,
    /// Revocation acks still outstanding. `u64`: the revoke set can
    /// hold every node in the system, and a `u32` cast of a `usize`
    /// length would wrap silently rather than fail.
    pub acks_left: u64,
    pub granted: bool,
    pub ctx: ReqCtx,
}

/// The discrete-event simulation of one configuration.
///
/// Build with [`Engine::new`], run with [`Engine::run`]; the returned
/// [`RunReport`] carries every metric the paper's figures use.
pub struct Engine {
    pub(crate) cfg: SystemConfig,
    pub(crate) cal: Calendar<Event>,
    /// The workload generator. `None` only while a pipeline run's
    /// producer stage owns it (`cores >= 2`); the serial arrival path
    /// draws from it in place.
    pub(crate) workload: Option<Box<dyn Workload + Send>>,
    pub(crate) storage: StorageSubsystem,
    pub(crate) nodes: Vec<NodeCtx>,
    pub(crate) glt: GemLockTable,
    pub(crate) gla: Vec<GlaState>,
    pub(crate) gla_map: GlaMap,
    pub(crate) txns: TxnTable,
    pub(crate) next_txn: u64,
    pub(crate) remote_ctx: FxHashMap<TxnId, ReqCtx>,
    pub(crate) pending_writes: FxHashMap<TxnId, PendingWrite>,
    pub(crate) counters: Counters,
    pub(crate) base: Counters,
    pub(crate) base_gla: Vec<(u64, u64)>,
    pub(crate) base_ra: Vec<u64>,
    pub(crate) metrics: Metrics,
    /// Always-on event-loop profile (whole run, incl. warm-up).
    pub(crate) profile: RunProfile,
    pub(crate) arrival_rng: Rng,
    pub(crate) wl_rng: Rng,
    pub(crate) restart_rng: Rng,
    pub(crate) warmed: bool,
    pub(crate) done: bool,
    pub(crate) truncated: bool,
    /// Nodes currently down (failure injection).
    pub(crate) down: Vec<bool>,
    pub(crate) measured: u64,
    pub(crate) part_locking: Vec<bool>,
    pub(crate) part_names: Vec<String>,
    /// Reusable scratch: distinct remote authorities of a committing
    /// transaction (commit phase 2 builds release messages from it
    /// without allocating).
    pub(crate) scratch_nodes: Vec<NodeId>,
    /// Recycled page-list buffers for release messages: commit phase 2
    /// takes buffers here, the receiving GLA returns them emptied.
    pub(crate) release_pool: Vec<events::ReleasePages>,
    /// Reusable scratch: transactions drained from a crashed node's
    /// MPL input queue.
    pub(crate) scratch_queue: Vec<TxnId>,
    /// Specs of retired transactions; the workload generator reuses
    /// their reference buffers for new draws.
    pub(crate) spare_specs: Vec<TxnSpec>,
    /// Per-node commit logs, merged into the global log at end of run
    /// (§2 / \[Ra91a\]).
    pub(crate) local_logs: Vec<LocalLog>,
    pub(crate) mean_arrival_gap_us: f64,
    /// Observation configuration (default: observe nothing).
    pub(crate) observe: Observe,
    /// Trace sink, installed only when tracing is enabled; every
    /// emission is behind a single `is_some()` branch.
    pub(crate) tracer: Option<Box<dyn TraceSink + Send>>,
    /// Arrival generation mode (inline, or fed by a producer thread
    /// when `RunControl::cores >= 2`).
    pub(crate) source: ArrivalSource,
    /// Metric recording mode (inline, or folded by a sink thread when
    /// `RunControl::cores >= 3`).
    pub(crate) stats: StatsStage,
    /// Engine-side endpoint of the trace-sink thread, present only
    /// while a pipeline run with `cores >= 4` has tracing on.
    pub(crate) trace_stage: Option<TraceStage>,
    /// Timeline sampler state, armed at end of warm-up when requested.
    pub(crate) timeline: Option<TimelineState>,
    /// Instant of the most recent commit (any node) — the no-progress
    /// watchdog's progress signal.
    pub(crate) last_commit_at: SimTime,
    /// When the watchdog last fired (suppresses re-firing every scan).
    pub(crate) last_watchdog: SimTime,
    /// Live progress gauge, observer-only (the harness ticker samples
    /// it). `None` keeps the event loop on the exact unobserved path.
    pub(crate) progress: Option<std::sync::Arc<crate::progress::ProgressGauge>>,
    /// Watches over this run's pipeline lanes (`cores > 1` only),
    /// labelled by stage — read by the watchdog dump and mirrored into
    /// the progress gauge.
    pub(crate) pipe_watches: Vec<(&'static str, desim::pipe::LaneWatch)>,
}

impl Engine {
    /// Builds the engine from a configuration and a workload. The
    /// workload's database layout is copied into the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first configuration violation found.
    pub fn new(
        mut cfg: SystemConfig,
        workload: Box<dyn Workload + Send>,
    ) -> Result<Self, ConfigError> {
        if cfg.partitions.is_empty() {
            cfg.partitions = workload.partitions().to_vec();
        }
        cfg.validate()?;
        let master = Rng::seed_from_u64(cfg.run.seed);
        let storage = StorageSubsystem::new(&cfg);
        // Hot maps are pre-sized from the configuration so the steady
        // state never rehashes: the MPL bounds live transactions, the
        // buffer capacity bounds hot page-table entries. A
        // `page_metadata_budget` caps every page-keyed pre-allocation;
        // entries past the cap are materialized lazily on first touch,
        // which trades a few early rehashes for not committing
        // `buffer × nodes` entries of RAM up front on 200-node runs.
        let live = cfg.mpl_per_node as usize * cfg.nodes as usize;
        let admissions = (cfg.run.warmup_txns + cfg.run.measured_txns) as usize + live;
        let hot_pages = cfg.buffer_pages_per_node as usize * 2;
        let budget = cfg.page_metadata_budget;
        let page_cap = |req: usize| budget.map_or(req, |b| req.min(b));
        let nodes = (0..cfg.nodes)
            .map(|i| NodeCtx {
                cpus: Resource::new(cfg.cpu.cpus_per_node),
                mpl: Resource::new(cfg.mpl_per_node),
                buffer: BufferManager::new(cfg.buffer_pages_per_node, cfg.partitions.len()),
                ra: RaTable::new(),
                cost: CostModel::new(cfg.cpu.clone()),
                rng: master.derive(100 + i as u64),
                pending_acks: fxhash::map_with_capacity(16),
            })
            .collect();
        let gla = (0..cfg.nodes)
            .map(|_| GlaState::with_capacity(page_cap(hot_pages), live))
            .collect();
        let gla_map = workload.gla_map();
        let part_locking = cfg.partitions.iter().map(|p| p.locking).collect();
        let part_names = cfg.partitions.iter().map(|p| p.name.clone()).collect();
        let mean_arrival_gap_us = 1e6 / (cfg.arrival_tps_per_node * cfg.nodes as f64);
        Ok(Engine {
            cal: Calendar::new(),
            workload: Some(workload),
            storage,
            nodes,
            glt: GemLockTable::with_capacity(page_cap(hot_pages * cfg.nodes as usize), live),
            gla,
            gla_map,
            txns: TxnTable::with_capacity(live, admissions),
            next_txn: 0,
            remote_ctx: fxhash::map_with_capacity(live),
            pending_writes: fxhash::map_with_capacity(live),
            counters: Counters::default(),
            base: Counters::default(),
            base_gla: vec![(0, 0); cfg.nodes as usize],
            base_ra: vec![0; cfg.nodes as usize],
            metrics: Metrics::default(),
            profile: RunProfile::default(),
            arrival_rng: master.derive(1),
            wl_rng: master.derive(2),
            restart_rng: master.derive(3),
            warmed: false,
            done: false,
            truncated: false,
            down: vec![false; cfg.nodes as usize],
            measured: 0,
            part_locking,
            part_names,
            scratch_nodes: Vec::new(),
            scratch_queue: Vec::new(),
            release_pool: Vec::new(),
            spare_specs: Vec::new(),
            local_logs: (0..cfg.nodes)
                .map(|i| LocalLog::new(NodeId::new(i)))
                .collect(),
            cfg,
            mean_arrival_gap_us,
            observe: Observe::default(),
            tracer: None,
            source: ArrivalSource::Inline,
            stats: StatsStage::Inline,
            trace_stage: None,
            timeline: None,
            last_commit_at: SimTime::ZERO,
            last_watchdog: SimTime::ZERO,
            progress: None,
            pipe_watches: Vec::new(),
        })
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> RunReport {
        let now = self.run_to_end();
        self.build_report(now)
    }

    /// Overrides the host-thread budget for this run (equivalent to
    /// setting `RunControl::cores` in the configuration; values below
    /// one are clamped). Results are bit-identical at every setting.
    pub fn set_cores(&mut self, cores: u32) {
        self.cfg.run.cores = cores.max(1);
    }

    /// Attaches a live progress gauge. The engine publishes event
    /// count, simulated time, and commit count into it with relaxed
    /// stores once every few thousand events and never reads it back,
    /// so an attached gauge cannot perturb the simulation (reports are
    /// bit-identical with and without one).
    pub fn set_progress(&mut self, gauge: std::sync::Arc<crate::progress::ProgressGauge>) {
        self.progress = Some(gauge);
    }

    /// The event loop shared by [`run`](Engine::run) and
    /// [`run_observed`](Engine::run_observed); returns the final
    /// simulated instant.
    pub(crate) fn run_loop(&mut self) -> SimTime {
        self.cal.schedule(SimTime::ZERO, Event::Arrival);
        self.cal
            .schedule(SimTime::ZERO + DEADLOCK_SCAN_EVERY, Event::DeadlockScan);
        if let Some(crash) = self.cfg.crash {
            let node = NodeId::new(crash.node);
            let at = SimTime::ZERO + SimDuration::from_secs_f64(crash.at_secs);
            self.cal.schedule(at, Event::NodeCrash { node });
            self.cal.schedule(
                at + SimDuration::from_secs_f64(crash.recovery_secs),
                Event::NodeRecovered { node },
            );
        }
        // If there is no warm-up, measurement starts immediately.
        if self.cfg.run.warmup_txns == 0 {
            self.warmed = true;
            self.arm_timeline(SimTime::ZERO);
        }
        let deadline = self
            .cfg
            .run
            .max_sim_secs
            .map(|s| SimTime::ZERO + SimDuration::from_secs_f64(s));
        if let Some(gauge) = &self.progress {
            gauge.set_target(self.cfg.run.warmup_txns + self.cfg.run.measured_txns);
        }
        let mut progress_tick: u64 = 0;
        while !self.done {
            let Some((now, ev)) = self.cal.pop() else {
                break;
            };
            if let Some(limit) = deadline {
                if now > limit {
                    self.truncated = true;
                    break;
                }
            }
            self.on_event(now, ev);
            // Observer-only telemetry: a handful of relaxed stores once
            // per 4096 events, and nothing at all without a gauge.
            if let Some(gauge) = &self.progress {
                progress_tick += 1;
                if progress_tick & 0xFFF == 0 {
                    gauge.publish(
                        self.cal.total_scheduled(),
                        now.as_nanos(),
                        self.counters.committed,
                    );
                }
            }
        }
        let now = self.cal.now();
        if let Some(gauge) = &self.progress {
            gauge.publish(
                self.cal.total_scheduled(),
                now.as_nanos(),
                self.counters.committed,
            );
        }
        if std::env::var_os("DBSHARE_DEBUG_STUCK").is_some() {
            self.dump_stuck(now);
        }
        now
    }

    fn on_event(&mut self, now: SimTime, ev: Event) {
        match &ev {
            Event::Arrival => self.profile.arrivals += 1,
            Event::Restart { .. } => self.profile.restarts += 1,
            Event::CpuDone { .. } => self.profile.cpu_done += 1,
            Event::GemHeldDone { .. } => self.profile.gem_held_done += 1,
            Event::IoDone { .. } => self.profile.io_done += 1,
            Event::Delivered { .. } => self.profile.delivered += 1,
            Event::DeadlockScan => self.profile.deadlock_scans += 1,
            Event::NodeCrash { .. } | Event::NodeRecovered { .. } => self.profile.crash_events += 1,
            Event::TimelineSample => self.profile.timeline_samples += 1,
        }
        match ev {
            Event::Arrival => {
                let (gap, node, spec) = self.next_arrival();
                self.cal.schedule(now + gap, Event::Arrival);
                self.admit(now, node, spec, now, 0);
            }
            Event::Restart {
                node,
                spec,
                arrival,
                restarts,
            } => self.admit(now, node, spec, arrival, restarts),
            Event::CpuDone { node, job } => self.cpu_done(now, node, job),
            Event::GemHeldDone { node, txn, cont } => {
                let _ = txn;
                self.release_cpu(now, node);
                self.fire(now, cont);
            }
            Event::IoDone { cont } => self.fire(now, cont),
            Event::Delivered { msg } => self.deliver(now, msg),
            Event::DeadlockScan => {
                self.deadlock_scan(now);
                if !self.done {
                    self.cal
                        .schedule(now + DEADLOCK_SCAN_EVERY, Event::DeadlockScan);
                }
            }
            Event::NodeCrash { node } => self.node_crash(now, node),
            Event::NodeRecovered { node } => self.node_recovered(now, node),
            Event::TimelineSample => self.timeline_tick(now),
        }
    }

    // ------------------------------------------------------------------
    // CPU dispatch
    // ------------------------------------------------------------------

    /// Submits a CPU job on `node`: runs immediately if a processor is
    /// free, otherwise queues FIFO.
    pub(crate) fn dispatch(&mut self, now: SimTime, node: NodeId, job: Job) {
        if let Some(job) = self.nodes[node.index()].cpus.acquire(now, job) {
            self.cal
                .schedule(now + job.service, Event::CpuDone { node, job });
        }
    }

    /// A job's instruction execution finished; perform its synchronous
    /// GEM tail (holding the CPU) or release the CPU and continue.
    fn cpu_done(&mut self, now: SimTime, node: NodeId, job: Job) {
        if let Some(id) = job.txn {
            if let Some(t) = self.txns.get_mut(&id) {
                t.cpu_service += job.service;
            }
        }
        if job.gem_entries > 0 || job.gem_pages > 0 {
            let mut done = now;
            if job.gem_entries > 0 {
                done = if self.is_lock_engine() {
                    self.storage.lock_engine_ops(now, job.gem_entries / 2)
                } else {
                    self.storage.gem_entries(now, job.gem_entries)
                };
            }
            if job.gem_pages > 0 {
                done = self.storage.gem_pages(now, job.gem_pages).max(done);
            }
            if let Some(id) = job.txn {
                if let Some(t) = self.txns.get_mut(&id) {
                    t.cpu_service += done - now;
                }
            }
            self.cal.schedule(
                done,
                Event::GemHeldDone {
                    node,
                    txn: job.txn,
                    cont: job.cont,
                },
            );
        } else {
            self.release_cpu(now, node);
            self.fire(now, job.cont);
        }
    }

    /// Releases one CPU of `node`, starting the next queued job if any.
    fn release_cpu(&mut self, now: SimTime, node: NodeId) {
        if let Some((job, since)) = self.nodes[node.index()].cpus.release(now) {
            if let Some(id) = job.txn {
                if let Some(t) = self.txns.get_mut(&id) {
                    t.cpu_wait += now - since;
                }
            }
            self.cal
                .schedule(now + job.service, Event::CpuDone { node, job });
        }
    }

    /// The continuation dispatcher: transfers control to the
    /// appropriate protocol/lifecycle step.
    pub(crate) fn fire(&mut self, now: SimTime, cont: Cont) {
        match &cont {
            Cont::BotDone(_) | Cont::AccessCpuDone(_) | Cont::CommitInit(_) => {
                self.profile.cont_lifecycle += 1
            }
            Cont::GemLockExec(_)
            | Cont::GemGrantExec(_)
            | Cont::GemReleaseExec(_)
            | Cont::PclLocalLockExec(_)
            | Cont::PclLocalGrantExec { .. }
            | Cont::PclRaLocalExec(_)
            | Cont::PclReleaseExec(_) => self.profile.cont_locking += 1,
            Cont::SendDone { .. } | Cont::RecvDone { .. } => self.profile.cont_messaging += 1,
            _ => self.profile.cont_storage += 1,
        }
        match cont {
            Cont::BotDone(t) => self.begin_access(now, t),
            Cont::AccessCpuDone(t) => self.after_access_cpu(now, t),
            Cont::GemLockExec(t) => self.gem_lock_exec(now, t),
            Cont::GemGrantExec(t) => self.gem_grant_exec(now, t),
            Cont::GemReleaseExec(t) => self.gem_release_exec(now, t),
            Cont::PclLocalLockExec(t) => self.pcl_local_lock_exec(now, t),
            Cont::PclLocalGrantExec { txn, page } => self.pcl_local_grant_exec(now, txn, page),
            Cont::PclRaLocalExec(t) => self.pcl_ra_local_exec(now, t),
            Cont::PclReleaseExec(t) => self.pcl_release_exec(now, t),
            Cont::SendDone { msg, last_of } => self.send_done(now, msg, last_of),
            Cont::RecvDone { msg } => self.handle_msg(now, msg),
            Cont::StorageReadIssue(t) => self.storage_read_issue(now, t),
            Cont::StorageReadDone(t) => self.storage_read_done(now, t),
            Cont::GemPageAccessDone(t) => self.storage_read_done(now, t),
            Cont::CommitInit(t) => self.commit_init(now, t),
            Cont::CommitWriteInit { txn, idx } => self.commit_write_init(now, txn, idx),
            Cont::CommitWriteIssue { txn, idx } => self.commit_write_issue(now, txn, idx),
            Cont::CommitIoChain { txn, idx } => self.commit_io_chain(now, txn, idx),
            Cont::EvictWriteIssue { node, page } => self.evict_write_issue(now, node, page),
            Cont::EvictWriteDone { node, page } => self.evict_write_done(now, node, page),
            Cont::GemOwnerClear { node, page } => {
                self.glt.record_writeback(page, node);
            }
            Cont::GemTransferStored { msg, seqno } => self.gem_transfer_stored(now, msg, seqno),
            Cont::GemTransferFetched(t) => self.gem_transfer_fetched(now, t),
        }
    }

    // ------------------------------------------------------------------
    // Admission and completion
    // ------------------------------------------------------------------

    /// The next node at or after `preferred` that is up (the TP monitor
    /// re-routes arrivals around failed nodes).
    pub(crate) fn alive_node(&self, preferred: NodeId) -> NodeId {
        let n = self.nodes.len();
        for off in 0..n {
            let cand = (preferred.index() + off) % n;
            if !self.down[cand] {
                return NodeId::new(cand as u16);
            }
        }
        preferred // unreachable: validation forbids crashing the only node
    }

    fn admit(
        &mut self,
        now: SimTime,
        node: NodeId,
        spec: TxnSpec,
        arrival: SimTime,
        restarts: u32,
    ) {
        let node = self.alive_node(node);
        let id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let granted = self.nodes[node.index()].mpl.acquire(now, id).is_some();
        self.txns.admit(id, node, spec, arrival, restarts);
        if granted {
            if let Some(t) = self.txns.get_mut(&id) {
                t.admitted = now;
                t.phase = Phase::Running;
            }
            self.emit(
                now,
                TraceEventKind::TxnAdmit,
                node,
                Some(id),
                None,
                (now - arrival).as_nanos(),
            );
            self.start_txn(now, id);
        }
    }

    pub(crate) fn start_txn(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get(&id) else { return };
        let node = t.node;
        let svc = self.sample(node, |c, r| c.bot(r));
        self.dispatch(
            now,
            node,
            Job {
                service: svc,
                gem_entries: 0,
                gem_pages: 0,
                txn: Some(id),
                cont: Cont::BotDone(id),
            },
        );
    }

    /// Ends a transaction: statistics, MPL hand-over, run termination.
    /// (A transaction may have been killed by a node crash while its
    /// final send was in flight; completion is then a no-op.)
    pub(crate) fn txn_complete(&mut self, now: SimTime, id: TxnId) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        debug_assert_eq!(t.id, id);
        // Retire the storage in place: the spec's reference buffer
        // feeds the next workload draw, the Txn's collections (still
        // sitting in their slab slot) the next admission.
        let spec = std::mem::take(&mut t.spec);
        let node = t.node;
        let modified = t.modified.len() as u32;
        let arrival = t.arrival;
        let admitted = t.admitted;
        let (lock_wait, io_wait) = (t.lock_wait, t.io_wait);
        let (cpu_wait, cpu_service) = (t.cpu_wait, t.cpu_service);
        self.txns.retire(&id);
        if modified > 0 {
            self.local_logs[node.index()].append(now, id, modified);
        }
        self.counters.committed += 1;
        self.last_commit_at = now;
        self.emit(
            now,
            TraceEventKind::TxnCommit,
            node,
            Some(id),
            None,
            (now - arrival).as_nanos(),
        );
        if self.warmed {
            self.measured += 1;
            self.stats_commit(
                now,
                now - arrival,
                spec.refs().len(),
                admitted - arrival,
                lock_wait,
                io_wait,
                cpu_wait,
                cpu_service,
            );
            self.timeline_note_commit(
                now - arrival,
                admitted - arrival,
                lock_wait,
                io_wait,
                cpu_wait,
                cpu_service,
            );
            if self.measured >= self.cfg.run.measured_txns {
                self.done = true;
            }
        } else if self.counters.committed >= self.cfg.run.warmup_txns {
            self.end_warmup(now);
        }
        self.recycle_spec(spec);
        if let Some((next, since)) = self.nodes[node.index()].mpl.release(now) {
            let _ = since;
            let mut next_arrival = None;
            if let Some(n) = self.txns.get_mut(&next) {
                n.admitted = now;
                n.phase = Phase::Running;
                next_arrival = Some(n.arrival);
            }
            if let Some(arr) = next_arrival {
                self.emit(
                    now,
                    TraceEventKind::TxnAdmit,
                    node,
                    Some(next),
                    None,
                    (now - arr).as_nanos(),
                );
                self.start_txn(now, next);
            }
        }
    }

    fn end_warmup(&mut self, now: SimTime) {
        self.warmed = true;
        self.stats_rebase(now);
        self.base = self.counters.clone();
        self.storage.reset_stats(now);
        for (i, ctx) in self.nodes.iter_mut().enumerate() {
            ctx.cpus.reset_stats(now);
            ctx.mpl.reset_stats(now);
            ctx.buffer.reset_counters();
            self.base_gla[i] = self.gla[i].request_counts();
            self.base_ra[i] = ctx.ra.local_grants();
        }
        self.arm_timeline(now);
    }

    // ------------------------------------------------------------------
    // Small helpers shared by the submodules
    // ------------------------------------------------------------------

    pub(crate) fn txn(&self, id: TxnId) -> &Txn {
        self.txns.get(&id).expect("live transaction")
    }

    pub(crate) fn txn_mut(&mut self, id: TxnId) -> &mut Txn {
        self.txns.get_mut(&id).expect("live transaction")
    }

    /// Samples a cost on `node`'s stream.
    pub(crate) fn sample<F>(&mut self, node: NodeId, f: F) -> SimDuration
    where
        F: FnOnce(&CostModel, &mut Rng) -> SimDuration,
    {
        let ctx = &mut self.nodes[node.index()];
        f(&ctx.cost, &mut ctx.rng)
    }

    /// Fixed-instruction service time (identical on all nodes).
    pub(crate) fn fixed(&self, instr: f64) -> SimDuration {
        self.cfg.cpu.exec_time(instr)
    }

    pub(crate) fn is_noforce(&self) -> bool {
        self.cfg.update == UpdateStrategy::NoForce
    }

    /// True if the configuration runs the global-lock-table protocol
    /// (GEM locking or the \[Yu87\]-style central lock engine — identical
    /// protocol, different lock-operation timing).
    pub(crate) fn is_gem_coupling(&self) -> bool {
        matches!(
            self.cfg.coupling,
            CouplingMode::GemLocking | CouplingMode::LockEngine
        )
    }

    /// True if lock operations go to the central lock engine instead of
    /// GEM entries.
    pub(crate) fn is_lock_engine(&self) -> bool {
        self.cfg.coupling == CouplingMode::LockEngine
    }

    /// Whether `page`'s partition uses page locking.
    pub(crate) fn locked_partition(&self, page: PageId) -> bool {
        self.part_locking
            .get(page.partition().index())
            .copied()
            .unwrap_or(false)
    }
}
