//! The parallel (`cores > 1`) engine: deterministic pipeline stages.
//!
//! The serial event loop is the repo's correctness oracle — stdout,
//! metric fingerprints, and trace exports are pinned byte-for-byte by
//! golden tests. True node-partitioned execution cannot reproduce those
//! bytes: the calendar breaks timestamp ties by global insertion order,
//! so any change to the *order in which handlers schedule* changes tie
//! resolution, and the model's shared synchronous resources (GEM
//! served while the requester holds its CPU, shared disk arrays, the
//! global lock table) leave µs-scale conservative windows against
//! ~280ns handlers. See DESIGN.md for the full analysis.
//!
//! What *can* run on other cores without perturbing the event stream
//! is everything that feeds the loop or folds its output:
//!
//! * **Arrival source** (`cores >= 2`) — a producer thread owns the
//!   workload generator and the arrival/workload RNG streams and
//!   pre-generates `(gap, node, spec)` triples in exactly the inline
//!   draw order. Those streams are private to the arrival path, so
//!   pre-drawing them is invisible to every other consumer of
//!   randomness.
//! * **Statistics sink** (`cores >= 3`) — a consumer thread owns the
//!   [`Metrics`] accumulator and folds [`StatsShard`] deltas in strict
//!   FIFO order, preserving the floating-point fold order.
//! * **Trace sink** (`cores >= 4`, only when tracing is on) — a
//!   consumer thread owns the installed [`TraceSink`] and records
//!   events in emission order.
//!
//! Every stage boundary is *batched* (`desim::pipe::lane` or a shard
//! channel): the hot path appends to a thread-local buffer and the
//! mutex is taken once per batch, not once per event; emptied buffers
//! recirculate through the channel's free list so steady state is
//! allocation-free. The producer-side counters (batches, items, lock
//! acquisitions, stalls) are aggregated into `RunProfile::pipe_*` at
//! teardown and surface through `--profile`.
//!
//! All calendar scheduling stays on the engine thread in unchanged
//! order, so bit-identity holds *by construction* at every `cores`
//! value; the cross-`cores` invariance tests enforce it.

use super::Engine;
use crate::metrics::{CommitSample, Metrics, StatsShard};
use dbshare_model::{NodeId, TxnSpec};
use dbshare_workload::Workload;
use desim::pipe::{self, LaneReceiver, LaneSender, LaneStats, Receiver, Sender, TrySendError};
use desim::trace::{TraceEvent, TraceSink};
use desim::{Rng, SimDuration, SimTime};

/// Arrivals per batch sent from the producer to the engine.
const ARRIVAL_BATCH: usize = 256;
/// Batches buffered in the arrival lane (bounds producer run-ahead).
const ARRIVAL_DEPTH: usize = 8;
/// Spare-spec batches returned to the producer for buffer recycling.
const SPARE_DEPTH: usize = 8;
/// Spare specs accumulated engine-side before a return attempt.
const SPARE_BATCH: usize = 64;
/// Statistics samples per shard.
const STATS_BATCH: usize = 256;
/// Shards buffered in the statistics channel.
const STATS_DEPTH: usize = 16;
/// Trace events per batch.
const TRACE_BATCH: usize = 1024;
/// Batches buffered in the trace lane.
const TRACE_DEPTH: usize = 16;

/// One pre-generated arrival: the inter-arrival gap drawn from the
/// arrival stream and the routed transaction drawn from the workload
/// stream, in exactly the order the serial loop draws them.
pub(crate) struct PreArrival {
    gap: SimDuration,
    node: NodeId,
    spec: TxnSpec,
}

/// Where `Event::Arrival` gets its next transaction from.
pub(crate) enum ArrivalSource {
    /// Serial mode: draw inline from the engine-owned RNG streams.
    Inline,
    /// Pipeline mode: consume pre-generated arrivals from the producer.
    Staged(StagedArrivals),
}

/// Engine-side endpoint of the arrival stage.
pub(crate) struct StagedArrivals {
    rx: LaneReceiver<PreArrival>,
    spare_tx: Sender<Vec<TxnSpec>>,
    /// Current batch, *reversed* so `next` pops from the back in O(1)
    /// while keeping the buffer intact for recycling.
    batch: Vec<PreArrival>,
    spare_buf: Vec<TxnSpec>,
}

impl StagedArrivals {
    fn next(&mut self) -> (SimDuration, NodeId, TxnSpec) {
        loop {
            if let Some(a) = self.batch.pop() {
                return (a.gap, a.node, a.spec);
            }
            let spent = std::mem::take(&mut self.batch);
            let recycle = (spent.capacity() > 0).then_some(spent);
            let mut batch = self
                .rx
                .recv(recycle)
                .expect("arrival producer exited early");
            batch.reverse();
            self.batch = batch;
        }
    }

    /// Offers a retired spec's buffers back to the producer. Purely an
    /// allocation optimization: spares never change generated values
    /// (the `Workload::next_with` contract), so dropping a batch when
    /// the return channel is full is harmless.
    fn return_spare(&mut self, spec: TxnSpec) {
        self.spare_buf.push(spec);
        if self.spare_buf.len() >= SPARE_BATCH {
            let batch = std::mem::replace(&mut self.spare_buf, Vec::with_capacity(SPARE_BATCH));
            let _ = self.spare_tx.try_send(batch);
        }
    }
}

/// Where metric record calls go.
pub(crate) enum StatsStage {
    /// Serial mode: apply to `self.metrics` directly.
    Inline,
    /// Pipeline mode: accumulate a [`StatsShard`] and ship it whole.
    Staged {
        tx: Sender<StatsShard>,
        /// Emptied shards coming back from the sink for reuse.
        spare_rx: Receiver<StatsShard>,
        shard: StatsShard,
        sent: LaneStats,
    },
}

/// Engine-side endpoint of the trace stage: batches emitted events
/// toward the thread that owns the sink.
pub(crate) struct TraceStage {
    tx: LaneSender<TraceEvent>,
}

impl TraceStage {
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.tx.push(ev).expect("trace stage exited early");
    }
}

/// The producer thread: pre-generates arrivals until the engine drops
/// its receiver (run over), then exits, reporting its lane counters.
fn produce_arrivals(
    mut workload: Box<dyn Workload + Send>,
    mut arrival_rng: Rng,
    mut wl_rng: Rng,
    mean_gap_us: f64,
    mut tx: LaneSender<PreArrival>,
    spare_rx: Receiver<Vec<TxnSpec>>,
) -> LaneStats {
    let mut spares: Vec<TxnSpec> = Vec::new();
    loop {
        if spares.is_empty() {
            while let Some(more) = spare_rx.try_recv() {
                spares.extend(more);
            }
        }
        // Draw order per arrival matches the serial loop: gap from the
        // arrival stream, then the spec from the workload stream. The
        // streams are independent generators, so batch pre-drawing
        // yields the very same values.
        let gap = SimDuration::from_micros_f64(arrival_rng.exp(mean_gap_us));
        let (node, spec) = workload.next_with(&mut wl_rng, spares.pop());
        if tx.push(PreArrival { gap, node, spec }).is_err() {
            // Engine finished; surplus arrivals are discarded.
            return tx.stats();
        }
    }
}

/// The statistics thread: folds shard deltas in arrival order and
/// hands the finished accumulator back at join. Shards are cleared by
/// `apply` and offered back to the engine for reuse (dropped, not
/// blocked on, when the return channel is full).
fn consume_stats(rx: Receiver<StatsShard>, spare_tx: Sender<StatsShard>) -> Metrics {
    let mut m = Metrics::default();
    while let Some(mut shard) = rx.recv() {
        shard.apply(&mut m);
        let _ = spare_tx.try_send(shard);
    }
    m
}

/// The trace thread: records emitted events in order and hands the
/// sink back at join.
fn consume_trace(
    mut sink: Box<dyn TraceSink + Send>,
    rx: LaneReceiver<TraceEvent>,
) -> Box<dyn TraceSink + Send> {
    let mut spent: Option<Vec<TraceEvent>> = None;
    while let Some(batch) = rx.recv(spent.take()) {
        for ev in &batch {
            sink.record(ev);
        }
        spent = Some(batch);
    }
    sink
}

impl Engine {
    /// Runs the event loop, serial or staged per `RunControl::cores`,
    /// and returns the final simulated instant.
    pub(crate) fn run_to_end(&mut self) -> SimTime {
        if self.cfg.run.cores <= 1 {
            return self.run_loop();
        }
        self.run_staged()
    }

    /// The pipeline orchestrator: spins up the stages the `cores`
    /// budget affords, runs the unchanged event loop, then tears the
    /// stages down in dependency order, reclaims their state, and
    /// folds every stage's lane counters into the run profile.
    fn run_staged(&mut self) -> SimTime {
        let cores = self.cfg.run.cores;
        let stage_source = cores >= 2;
        let stage_stats = cores >= 3;
        // The trace stage only exists when there is a sink to feed;
        // otherwise a `cores >= 4` request clamps to three stages.
        let stage_trace = cores >= 4 && self.tracer.is_some();
        self.pipe_watches.clear();
        std::thread::scope(|s| {
            let arrival_handle = if stage_source {
                let (mut tx, rx) = pipe::lane(ARRIVAL_BATCH, ARRIVAL_DEPTH);
                // Observer handle taken before the producer thread owns
                // the sender: the watchdog dump and the progress ticker
                // read it without touching the lane.
                self.pipe_watches.push(("arrival", tx.watch()));
                let (spare_tx, spare_rx) = pipe::channel(SPARE_DEPTH);
                let workload = self.workload.take().expect("workload installed");
                let arrival_rng = std::mem::replace(&mut self.arrival_rng, Rng::seed_from_u64(0));
                let wl_rng = std::mem::replace(&mut self.wl_rng, Rng::seed_from_u64(0));
                let gap = self.mean_arrival_gap_us;
                self.source = ArrivalSource::Staged(StagedArrivals {
                    rx,
                    spare_tx,
                    batch: Vec::new(),
                    spare_buf: Vec::with_capacity(SPARE_BATCH),
                });
                Some(s.spawn(move || {
                    produce_arrivals(workload, arrival_rng, wl_rng, gap, tx, spare_rx)
                }))
            } else {
                None
            };
            let stats_handle = if stage_stats {
                let (tx, rx) = pipe::channel(STATS_DEPTH);
                let (spare_tx, spare_rx) = pipe::channel(STATS_DEPTH);
                self.stats = StatsStage::Staged {
                    tx,
                    spare_rx,
                    shard: StatsShard::default(),
                    sent: LaneStats::default(),
                };
                Some(s.spawn(move || consume_stats(rx, spare_tx)))
            } else {
                None
            };
            let trace_handle = if stage_trace {
                let (mut tx, rx) = pipe::lane(TRACE_BATCH, TRACE_DEPTH);
                self.pipe_watches.push(("trace", tx.watch()));
                let sink = self.tracer.take().expect("tracing enabled");
                self.trace_stage = Some(TraceStage { tx });
                Some(s.spawn(move || consume_trace(sink, rx)))
            } else {
                None
            };
            if let Some(gauge) = &self.progress {
                for &(label, ref watch) in &self.pipe_watches {
                    gauge.add_lane(label, watch.clone());
                }
            }

            let now = self.run_loop();

            // Teardown. Dropping the arrival receiver fails the
            // producer's next push, so it exits even if it ran ahead
            // of a truncated run.
            self.source = ArrivalSource::Inline;
            if let Some(h) = arrival_handle {
                let stats = h.join().expect("arrival producer panicked");
                self.profile_pipe_merge(&stats);
            }
            if let StatsStage::Staged {
                tx,
                spare_rx,
                shard,
                mut sent,
            } = std::mem::replace(&mut self.stats, StatsStage::Inline)
            {
                if !shard.is_empty() {
                    sent.batches += 1;
                    sent.items += shard.len() as u64;
                    sent.partial += 1;
                    sent.locks += 1;
                    assert!(tx.send(shard).is_ok(), "stats stage exited early");
                }
                drop(spare_rx);
                self.profile_pipe_merge(&sent);
            }
            if let Some(h) = stats_handle {
                self.metrics = h.join().expect("stats stage panicked");
            }
            if let Some(TraceStage { mut tx }) = self.trace_stage.take() {
                tx.flush().expect("trace stage exited early");
                self.profile_pipe_merge(&tx.stats());
            }
            if let Some(h) = trace_handle {
                self.tracer = Some(h.join().expect("trace stage panicked"));
            }
            now
        })
    }

    /// Folds one stage's lane counters into the run profile.
    fn profile_pipe_merge(&mut self, stats: &LaneStats) {
        self.profile.pipe_batches += stats.batches;
        self.profile.pipe_items += stats.items;
        self.profile.pipe_locks += stats.locks;
        self.profile.pipe_stalls += stats.stalls;
    }

    /// Draws the next arrival — inline in serial mode, from the
    /// producer in pipeline mode. Identical values either way.
    pub(crate) fn next_arrival(&mut self) -> (SimDuration, NodeId, TxnSpec) {
        match &mut self.source {
            ArrivalSource::Inline => {
                let gap =
                    SimDuration::from_micros_f64(self.arrival_rng.exp(self.mean_arrival_gap_us));
                let spare = self.spare_specs.pop();
                let (node, spec) = self
                    .workload
                    .as_mut()
                    .expect("workload installed")
                    .next_with(&mut self.wl_rng, spare);
                (gap, node, spec)
            }
            ArrivalSource::Staged(src) => src.next(),
        }
    }

    /// Recycles a retired transaction's spec buffers into the next
    /// workload draw (engine-local stack in serial mode, returned to
    /// the producer in pipeline mode).
    pub(crate) fn recycle_spec(&mut self, spec: TxnSpec) {
        match &mut self.source {
            ArrivalSource::Inline => self.spare_specs.push(spec),
            ArrivalSource::Staged(src) => src.return_spare(spec),
        }
    }

    /// Records a measured commit's metrics (directly or via the sink).
    #[allow(clippy::too_many_arguments)] // one bucket per wait class
    pub(crate) fn stats_commit(
        &mut self,
        at: SimTime,
        resp: SimDuration,
        refs: usize,
        input: SimDuration,
        lock: SimDuration,
        io: SimDuration,
        cpu_wait: SimDuration,
        cpu_service: SimDuration,
    ) {
        match &mut self.stats {
            StatsStage::Inline => {
                self.metrics.record_commit_time(at);
                self.metrics
                    .record_completion(resp, refs, input, lock, io, cpu_wait, cpu_service);
                return;
            }
            StatsStage::Staged { shard, .. } => {
                shard.commits.push(CommitSample {
                    at,
                    resp,
                    refs: refs as u32,
                    input,
                    lock,
                    io,
                    cpu_wait,
                    cpu_service,
                });
                if shard.len() < STATS_BATCH {
                    return;
                }
            }
        }
        self.stats_flush();
    }

    /// Records one remote-page wait (directly or via the sink).
    pub(crate) fn stats_page_req_delay(&mut self, ms: f64) {
        match &mut self.stats {
            StatsStage::Inline => return self.metrics.page_req_delay.record(ms),
            StatsStage::Staged { shard, .. } => {
                shard.delays.push(ms);
                if shard.len() < STATS_BATCH {
                    return;
                }
            }
        }
        self.stats_flush();
    }

    /// Resets the metrics accumulator at end of warm-up (directly or
    /// via the sink). The rebase is a shard sequence point: the
    /// current shard is sealed and shipped first, so no pre-rebase
    /// sample ever shares a shard with the rebase that discards it.
    pub(crate) fn stats_rebase(&mut self, started: SimTime) {
        if let StatsStage::Inline = self.stats {
            self.metrics = Metrics {
                started,
                ..Metrics::default()
            };
            return;
        }
        let needs_flush =
            matches!(&self.stats, StatsStage::Staged { shard, .. } if !shard.is_empty());
        if needs_flush {
            self.stats_flush();
        }
        let StatsStage::Staged { shard, .. } = &mut self.stats else {
            unreachable!("stats_rebase outside staged mode");
        };
        shard.rebase = Some(started);
    }

    /// Ships the current shard to the statistics sink and replaces it
    /// with a recycled (or fresh) one. One lock for the spare pickup,
    /// one for the hand-off; a stall adds the blocking wait.
    fn stats_flush(&mut self) {
        let StatsStage::Staged {
            tx,
            spare_rx,
            shard,
            sent,
        } = &mut self.stats
        else {
            unreachable!("stats_flush outside staged mode");
        };
        let n = shard.len() as u64;
        sent.batches += 1;
        sent.items += n;
        if (n as usize) < STATS_BATCH {
            sent.partial += 1;
        }
        sent.locks += 2; // spare pickup + hand-off
        let fresh = spare_rx.try_recv().unwrap_or_default();
        let full = std::mem::replace(shard, fresh);
        match tx.try_send(full) {
            Ok(()) => {}
            Err(TrySendError::Full(full)) => {
                sent.stalls += 1;
                sent.locks += 1;
                assert!(tx.send(full).is_ok(), "stats stage exited early");
            }
            Err(TrySendError::Closed(_)) => panic!("stats stage exited early"),
        }
    }
}
