//! The parallel (`cores > 1`) engine: deterministic pipeline stages.
//!
//! The serial event loop is the repo's correctness oracle — stdout,
//! metric fingerprints, and trace exports are pinned byte-for-byte by
//! golden tests. True node-partitioned execution cannot reproduce those
//! bytes: the calendar breaks timestamp ties by global insertion order,
//! so any change to the *order in which handlers schedule* changes tie
//! resolution, and the model's shared synchronous resources (GEM
//! served while the requester holds its CPU, shared disk arrays, the
//! global lock table) leave µs-scale conservative windows against
//! ~280ns handlers. See DESIGN.md for the full analysis.
//!
//! What *can* run on other cores without perturbing the event stream
//! is everything that feeds the loop or folds its output:
//!
//! * **Arrival source** (`cores >= 2`) — a producer thread owns the
//!   workload generator and the arrival/workload RNG streams and
//!   pre-generates `(gap, node, spec)` triples in exactly the inline
//!   draw order. Those streams are private to the arrival path, so
//!   pre-drawing them is invisible to every other consumer of
//!   randomness.
//! * **Statistics sink** (`cores >= 3`) — a consumer thread owns the
//!   [`Metrics`] accumulator and applies the engine's record calls in
//!   strict FIFO order, preserving the floating-point fold order.
//! * **Trace sink** (`cores >= 4`, only when tracing is on) — a
//!   consumer thread owns the installed [`TraceSink`] and records
//!   events in emission order.
//!
//! All calendar scheduling stays on the engine thread in unchanged
//! order, so bit-identity holds *by construction* at every `cores`
//! value; the cross-`cores` invariance tests enforce it.

use super::Engine;
use crate::metrics::Metrics;
use dbshare_model::{NodeId, TxnSpec};
use dbshare_workload::Workload;
use desim::pipe::{self, Receiver, Sender};
use desim::trace::{TraceEvent, TraceSink};
use desim::{Rng, SimDuration, SimTime};

/// Arrivals per batch sent from the producer to the engine.
const ARRIVAL_BATCH: usize = 256;
/// Batches buffered in the arrival channel (bounds producer run-ahead).
const ARRIVAL_DEPTH: usize = 8;
/// Spare-spec batches returned to the producer for buffer recycling.
const SPARE_DEPTH: usize = 8;
/// Spare specs accumulated engine-side before a return attempt.
const SPARE_BATCH: usize = 64;
/// Statistics messages per batch.
const STATS_BATCH: usize = 256;
/// Batches buffered in the statistics channel.
const STATS_DEPTH: usize = 16;
/// Trace events per batch.
const TRACE_BATCH: usize = 1024;
/// Batches buffered in the trace channel.
const TRACE_DEPTH: usize = 16;

/// One pre-generated arrival: the inter-arrival gap drawn from the
/// arrival stream and the routed transaction drawn from the workload
/// stream, in exactly the order the serial loop draws them.
pub(crate) struct PreArrival {
    gap: SimDuration,
    node: NodeId,
    spec: TxnSpec,
}

/// Where `Event::Arrival` gets its next transaction from.
pub(crate) enum ArrivalSource {
    /// Serial mode: draw inline from the engine-owned RNG streams.
    Inline,
    /// Pipeline mode: consume pre-generated arrivals from the producer.
    Staged(StagedArrivals),
}

/// Engine-side endpoint of the arrival stage.
pub(crate) struct StagedArrivals {
    rx: Receiver<Vec<PreArrival>>,
    spare_tx: Sender<Vec<TxnSpec>>,
    batch: std::vec::IntoIter<PreArrival>,
    spare_buf: Vec<TxnSpec>,
}

impl StagedArrivals {
    fn next(&mut self) -> (SimDuration, NodeId, TxnSpec) {
        loop {
            if let Some(a) = self.batch.next() {
                return (a.gap, a.node, a.spec);
            }
            let batch = self.rx.recv().expect("arrival producer exited early");
            self.batch = batch.into_iter();
        }
    }

    /// Offers a retired spec's buffers back to the producer. Purely an
    /// allocation optimization: spares never change generated values
    /// (the `Workload::next_with` contract), so dropping a batch when
    /// the return channel is full is harmless.
    fn return_spare(&mut self, spec: TxnSpec) {
        self.spare_buf.push(spec);
        if self.spare_buf.len() >= SPARE_BATCH {
            let batch = std::mem::replace(&mut self.spare_buf, Vec::with_capacity(SPARE_BATCH));
            let _ = self.spare_tx.try_send(batch);
        }
    }
}

/// One deferred statistics operation, applied by the sink in FIFO
/// order — the same call sequence, hence the same floating-point fold
/// order, as the serial engine.
pub(crate) enum StatsMsg {
    /// A measured commit: `record_commit_time` + `record_completion`.
    Commit {
        at: SimTime,
        resp: SimDuration,
        refs: u32,
        input: SimDuration,
        lock: SimDuration,
        io: SimDuration,
        cpu_wait: SimDuration,
        cpu_service: SimDuration,
    },
    /// A remote-page wait ended (recorded in warm-up too, exactly like
    /// the inline path; the rebase discards the pre-measurement ones).
    PageReqDelay(f64),
    /// End of warm-up: replace the accumulator with a fresh one.
    Rebase { started: SimTime },
}

/// Where metric record calls go.
pub(crate) enum StatsStage {
    /// Serial mode: apply to `self.metrics` directly.
    Inline,
    /// Pipeline mode: batch onto the statistics channel.
    Staged {
        tx: Sender<Vec<StatsMsg>>,
        buf: Vec<StatsMsg>,
    },
}

/// Engine-side endpoint of the trace stage: batches emitted events
/// toward the thread that owns the sink.
pub(crate) struct TraceStage {
    tx: Sender<Vec<TraceEvent>>,
    buf: Vec<TraceEvent>,
}

impl TraceStage {
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.buf.push(ev);
        if self.buf.len() >= TRACE_BATCH {
            let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(TRACE_BATCH));
            self.tx.send(batch).expect("trace stage exited early");
        }
    }
}

/// The producer thread: pre-generates arrivals until the engine drops
/// its receiver (run over), then exits.
fn produce_arrivals(
    mut workload: Box<dyn Workload + Send>,
    mut arrival_rng: Rng,
    mut wl_rng: Rng,
    mean_gap_us: f64,
    tx: Sender<Vec<PreArrival>>,
    spare_rx: Receiver<Vec<TxnSpec>>,
) {
    let mut spares: Vec<TxnSpec> = Vec::new();
    loop {
        let mut batch = Vec::with_capacity(ARRIVAL_BATCH);
        for _ in 0..ARRIVAL_BATCH {
            if spares.is_empty() {
                while let Some(more) = spare_rx.try_recv() {
                    spares.extend(more);
                }
            }
            // Draw order per arrival matches the serial loop: gap from
            // the arrival stream, then the spec from the workload
            // stream. The streams are independent generators, so batch
            // pre-drawing yields the very same values.
            let gap = SimDuration::from_micros_f64(arrival_rng.exp(mean_gap_us));
            let (node, spec) = workload.next_with(&mut wl_rng, spares.pop());
            batch.push(PreArrival { gap, node, spec });
        }
        if tx.send(batch).is_err() {
            return; // engine finished; surplus arrivals are discarded
        }
    }
}

/// The statistics thread: folds record calls in arrival order and
/// hands the finished accumulator back at join.
fn consume_stats(rx: Receiver<Vec<StatsMsg>>) -> Metrics {
    let mut m = Metrics::default();
    while let Some(batch) = rx.recv() {
        for msg in batch {
            match msg {
                StatsMsg::Commit {
                    at,
                    resp,
                    refs,
                    input,
                    lock,
                    io,
                    cpu_wait,
                    cpu_service,
                } => {
                    m.record_commit_time(at);
                    m.record_completion(
                        resp,
                        refs as usize,
                        input,
                        lock,
                        io,
                        cpu_wait,
                        cpu_service,
                    );
                }
                StatsMsg::PageReqDelay(ms) => m.page_req_delay.record(ms),
                StatsMsg::Rebase { started } => {
                    m = Metrics {
                        started,
                        ..Metrics::default()
                    }
                }
            }
        }
    }
    m
}

/// The trace thread: records emitted events in order and hands the
/// sink back at join.
fn consume_trace(
    mut sink: Box<dyn TraceSink + Send>,
    rx: Receiver<Vec<TraceEvent>>,
) -> Box<dyn TraceSink + Send> {
    while let Some(batch) = rx.recv() {
        for ev in &batch {
            sink.record(ev);
        }
    }
    sink
}

impl Engine {
    /// Runs the event loop, serial or staged per `RunControl::cores`,
    /// and returns the final simulated instant.
    pub(crate) fn run_to_end(&mut self) -> SimTime {
        if self.cfg.run.cores <= 1 {
            return self.run_loop();
        }
        self.run_staged()
    }

    /// The pipeline orchestrator: spins up the stages the `cores`
    /// budget affords, runs the unchanged event loop, then tears the
    /// stages down in dependency order and reclaims their state.
    fn run_staged(&mut self) -> SimTime {
        let cores = self.cfg.run.cores;
        let stage_source = cores >= 2;
        let stage_stats = cores >= 3;
        // The trace stage only exists when there is a sink to feed;
        // otherwise a `cores >= 4` request clamps to three stages.
        let stage_trace = cores >= 4 && self.tracer.is_some();
        std::thread::scope(|s| {
            if stage_source {
                let (tx, rx) = pipe::channel(ARRIVAL_DEPTH);
                let (spare_tx, spare_rx) = pipe::channel(SPARE_DEPTH);
                let workload = self.workload.take().expect("workload installed");
                let arrival_rng = std::mem::replace(&mut self.arrival_rng, Rng::seed_from_u64(0));
                let wl_rng = std::mem::replace(&mut self.wl_rng, Rng::seed_from_u64(0));
                let gap = self.mean_arrival_gap_us;
                s.spawn(move || produce_arrivals(workload, arrival_rng, wl_rng, gap, tx, spare_rx));
                self.source = ArrivalSource::Staged(StagedArrivals {
                    rx,
                    spare_tx,
                    batch: Vec::new().into_iter(),
                    spare_buf: Vec::with_capacity(SPARE_BATCH),
                });
            }
            let stats_handle = if stage_stats {
                let (tx, rx) = pipe::channel(STATS_DEPTH);
                self.stats = StatsStage::Staged {
                    tx,
                    buf: Vec::with_capacity(STATS_BATCH),
                };
                Some(s.spawn(move || consume_stats(rx)))
            } else {
                None
            };
            let trace_handle = if stage_trace {
                let (tx, rx) = pipe::channel(TRACE_DEPTH);
                let sink = self.tracer.take().expect("tracing enabled");
                self.trace_stage = Some(TraceStage {
                    tx,
                    buf: Vec::with_capacity(TRACE_BATCH),
                });
                Some(s.spawn(move || consume_trace(sink, rx)))
            } else {
                None
            };

            let now = self.run_loop();

            // Teardown. Dropping the arrival receiver fails the
            // producer's next send, so it exits even if it ran ahead
            // of a truncated run.
            self.source = ArrivalSource::Inline;
            if let StatsStage::Staged { tx, buf } =
                std::mem::replace(&mut self.stats, StatsStage::Inline)
            {
                if !buf.is_empty() {
                    assert!(tx.send(buf).is_ok(), "stats stage exited early");
                }
            }
            if let Some(h) = stats_handle {
                self.metrics = h.join().expect("stats stage panicked");
            }
            if let Some(TraceStage { tx, buf }) = self.trace_stage.take() {
                if !buf.is_empty() {
                    tx.send(buf).expect("trace stage exited early");
                }
            }
            if let Some(h) = trace_handle {
                self.tracer = Some(h.join().expect("trace stage panicked"));
            }
            now
        })
    }

    /// Draws the next arrival — inline in serial mode, from the
    /// producer in pipeline mode. Identical values either way.
    pub(crate) fn next_arrival(&mut self) -> (SimDuration, NodeId, TxnSpec) {
        match &mut self.source {
            ArrivalSource::Inline => {
                let gap =
                    SimDuration::from_micros_f64(self.arrival_rng.exp(self.mean_arrival_gap_us));
                let spare = self.spare_specs.pop();
                let (node, spec) = self
                    .workload
                    .as_mut()
                    .expect("workload installed")
                    .next_with(&mut self.wl_rng, spare);
                (gap, node, spec)
            }
            ArrivalSource::Staged(src) => src.next(),
        }
    }

    /// Recycles a retired transaction's spec buffers into the next
    /// workload draw (engine-local stack in serial mode, returned to
    /// the producer in pipeline mode).
    pub(crate) fn recycle_spec(&mut self, spec: TxnSpec) {
        match &mut self.source {
            ArrivalSource::Inline => self.spare_specs.push(spec),
            ArrivalSource::Staged(src) => src.return_spare(spec),
        }
    }

    /// Records a measured commit's metrics (directly or via the sink).
    #[allow(clippy::too_many_arguments)] // one bucket per wait class
    pub(crate) fn stats_commit(
        &mut self,
        at: SimTime,
        resp: SimDuration,
        refs: usize,
        input: SimDuration,
        lock: SimDuration,
        io: SimDuration,
        cpu_wait: SimDuration,
        cpu_service: SimDuration,
    ) {
        match &mut self.stats {
            StatsStage::Inline => {
                self.metrics.record_commit_time(at);
                self.metrics
                    .record_completion(resp, refs, input, lock, io, cpu_wait, cpu_service);
            }
            StatsStage::Staged { .. } => self.stats_push(StatsMsg::Commit {
                at,
                resp,
                refs: refs as u32,
                input,
                lock,
                io,
                cpu_wait,
                cpu_service,
            }),
        }
    }

    /// Records one remote-page wait (directly or via the sink).
    pub(crate) fn stats_page_req_delay(&mut self, ms: f64) {
        match &mut self.stats {
            StatsStage::Inline => self.metrics.page_req_delay.record(ms),
            StatsStage::Staged { .. } => self.stats_push(StatsMsg::PageReqDelay(ms)),
        }
    }

    /// Resets the metrics accumulator at end of warm-up (directly or
    /// via the sink).
    pub(crate) fn stats_rebase(&mut self, started: SimTime) {
        match &mut self.stats {
            StatsStage::Inline => {
                self.metrics = Metrics {
                    started,
                    ..Metrics::default()
                };
            }
            StatsStage::Staged { .. } => self.stats_push(StatsMsg::Rebase { started }),
        }
    }

    fn stats_push(&mut self, msg: StatsMsg) {
        let StatsStage::Staged { tx, buf } = &mut self.stats else {
            unreachable!("stats_push outside staged mode");
        };
        buf.push(msg);
        if buf.len() >= STATS_BATCH {
            let batch = std::mem::replace(buf, Vec::with_capacity(STATS_BATCH));
            assert!(tx.send(batch).is_ok(), "stats stage exited early");
        }
    }
}
