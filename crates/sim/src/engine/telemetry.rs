//! Observation plumbing: trace emission and timeline sampling.
//!
//! Everything here is gated on the engine's [`Observe`] configuration.
//! With observation off (the default), [`Engine::emit`] is a single
//! `Option` branch and no `TimelineSample` event is ever scheduled, so
//! the event stream, the allocation profile, and every report of an
//! unobserved run are byte-identical to a build without this module.

use super::{Engine, Event, Phase};
use crate::metrics::Counters;
use crate::observe::{Observations, Observe, TimelineWindow};
use dbshare_model::{NodeId, PageId, TxnId};
use dbshare_storage::DeviceBusySnapshot;
use desim::trace::{pack_page, TraceEvent, TraceEventKind, TraceSink, VecSink, NO_PAGE, NO_TXN};
use desim::{SimDuration, SimTime};

/// Baselines and accumulators of the timeline sampler between ticks.
pub(crate) struct TimelineState {
    every: SimDuration,
    window_start: SimTime,
    last: Counters,
    last_buffer: (u64, u64),
    last_cpu_busy: Vec<f64>,
    last_dev: DeviceBusySnapshot,
    resp_ns: u64,
    input_ns: u64,
    lock_ns: u64,
    io_ns: u64,
    cpu_wait_ns: u64,
    cpu_service_ns: u64,
    windows: Vec<TimelineWindow>,
}

impl Engine {
    /// Configures observation for this run. Must be called before
    /// [`run`](Engine::run) / [`run_observed`](Engine::run_observed).
    pub fn set_observe(&mut self, observe: Observe) {
        self.observe = observe;
    }

    /// Installs a custom trace sink (implies trace emission). The
    /// default sink when [`Observe::trace`] is set is a collecting
    /// [`VecSink`] whose events come back in the run's
    /// [`Observations`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.tracer = Some(sink);
    }

    /// Emits one trace record if a sink is installed (directly, or via
    /// the trace stage of a pipeline run). Integer-only arguments and
    /// a cheap early-out: free when tracing is off.
    #[inline]
    pub(crate) fn emit(
        &mut self,
        at: SimTime,
        kind: TraceEventKind,
        node: NodeId,
        txn: Option<TxnId>,
        page: Option<PageId>,
        arg: u64,
    ) {
        if self.tracer.is_none() && self.trace_stage.is_none() {
            return;
        }
        let ev = TraceEvent {
            at,
            kind,
            node: node.raw(),
            txn: txn.map_or(NO_TXN, |t| t.raw()),
            page: page.map_or(NO_PAGE, |p| pack_page(p.partition().raw(), p.number())),
            arg,
        };
        match self.trace_stage.as_mut() {
            Some(stage) => stage.push(ev),
            None => self.tracer.as_mut().expect("sink installed").record(&ev),
        }
    }

    /// Cumulative buffer hits and misses across all nodes and
    /// partitions.
    fn buffer_totals(&self) -> (u64, u64) {
        let parts = self.part_names.len();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for ctx in &self.nodes {
            for pi in 0..parts {
                let c = ctx.buffer.counters(pi);
                hits += c.hits;
                misses += c.misses;
            }
        }
        (hits, misses)
    }

    /// Starts the timeline sampler at `now` (the beginning of the
    /// measurement window) if one was requested and none is armed yet.
    pub(crate) fn arm_timeline(&mut self, now: SimTime) {
        let Some(every) = self.observe.timeline_every else {
            return;
        };
        if self.timeline.is_some() {
            return;
        }
        self.timeline = Some(TimelineState {
            every,
            window_start: now,
            last: self.counters.clone(),
            last_buffer: self.buffer_totals(),
            last_cpu_busy: self
                .nodes
                .iter()
                .map(|c| c.cpus.busy_integral_at(now))
                .collect(),
            last_dev: self.storage.busy_snapshot(),
            resp_ns: 0,
            input_ns: 0,
            lock_ns: 0,
            io_ns: 0,
            cpu_wait_ns: 0,
            cpu_service_ns: 0,
            windows: Vec::new(),
        });
        self.cal.schedule(now + every, Event::TimelineSample);
    }

    /// Adds one committed transaction's response-time components to the
    /// open window. Called from `txn_complete` for measured commits.
    #[inline]
    #[allow(clippy::too_many_arguments)] // one bucket per wait class
    pub(crate) fn timeline_note_commit(
        &mut self,
        resp: SimDuration,
        input: SimDuration,
        lock: SimDuration,
        io: SimDuration,
        cpu_wait: SimDuration,
        cpu_service: SimDuration,
    ) {
        let Some(tl) = self.timeline.as_mut() else {
            return;
        };
        tl.resp_ns += resp.as_nanos();
        tl.input_ns += input.as_nanos();
        tl.lock_ns += lock.as_nanos();
        tl.io_ns += io.as_nanos();
        tl.cpu_wait_ns += cpu_wait.as_nanos();
        tl.cpu_service_ns += cpu_service.as_nanos();
    }

    /// Handles a `TimelineSample` event: closes the current window and
    /// schedules the next tick.
    pub(crate) fn timeline_tick(&mut self, now: SimTime) {
        if self.timeline.is_none() {
            return;
        }
        self.close_timeline_window(now);
        if !self.done {
            let every = self.timeline.as_ref().expect("timeline armed").every;
            self.cal.schedule(now + every, Event::TimelineSample);
        }
    }

    /// Closes the sampler and returns its windows, flushing a final
    /// partial window covering `[last tick, now)`.
    pub(crate) fn flush_timeline(&mut self, now: SimTime) -> Vec<TimelineWindow> {
        if self.timeline.is_none() {
            return Vec::new();
        }
        if now > self.timeline.as_ref().expect("timeline armed").window_start {
            self.close_timeline_window(now);
        }
        self.timeline
            .take()
            .map(|tl| tl.windows)
            .unwrap_or_default()
    }

    /// Snapshots state at `now`, appends the finished window, and
    /// rebases the accumulators for the next one. Read-only with
    /// respect to simulation state: no RNG draws, no statistic resets.
    fn close_timeline_window(&mut self, now: SimTime) {
        let Some(mut tl) = self.timeline.take() else {
            return;
        };
        let width = now - tl.window_start;
        let span = width.as_secs_f64();
        let d = self.counters.since(&tl.last);
        let (hits, misses) = self.buffer_totals();
        let dev = self.storage.busy_snapshot();
        let util = |busy: SimDuration, base: SimDuration, servers: u32| {
            if span > 0.0 && servers > 0 {
                (busy - base).as_secs_f64() / (span * servers as f64)
            } else {
                0.0
            }
        };
        let mut cpu_util = Vec::with_capacity(self.nodes.len());
        let mut mpl_in_use = 0u64;
        let mut mpl_queue = 0u64;
        for (i, ctx) in self.nodes.iter().enumerate() {
            let busy = ctx.cpus.busy_integral_at(now) - tl.last_cpu_busy[i];
            cpu_util.push(if span > 0.0 {
                busy / (span * f64::from(ctx.cpus.total()))
            } else {
                0.0
            });
            tl.last_cpu_busy[i] = ctx.cpus.busy_integral_at(now);
            mpl_in_use += u64::from(ctx.mpl.in_use());
            mpl_queue += ctx.mpl.queue_len() as u64;
        }
        let lock_wait_depth = self
            .txns
            .values()
            .filter(|t| t.phase == Phase::LockWait)
            .count() as u64;
        tl.windows.push(TimelineWindow {
            start: tl.window_start,
            width,
            committed: d.committed,
            lock_requests: d.lock_requests,
            lock_waits: d.lock_waits,
            storage_reads: d.storage_reads,
            commit_writes: d.commit_writes,
            log_writes: d.log_writes,
            evict_writes: d.evict_writes,
            page_transfers: d.page_transfers,
            aborts: d.deadlock_aborts + d.timeout_aborts + d.crash_aborts,
            buffer_hits: hits - tl.last_buffer.0,
            buffer_misses: misses - tl.last_buffer.1,
            resp_ns: tl.resp_ns,
            input_ns: tl.input_ns,
            lock_ns: tl.lock_ns,
            io_ns: tl.io_ns,
            cpu_wait_ns: tl.cpu_wait_ns,
            cpu_service_ns: tl.cpu_service_ns,
            mpl_in_use,
            mpl_queue,
            lock_wait_depth,
            cpu_util,
            gem_util: util(dev.gem_busy, tl.last_dev.gem_busy, dev.gem_servers),
            disk_util: util(dev.disk_busy, tl.last_dev.disk_busy, dev.disk_servers),
            net_util: util(
                dev.network_busy,
                tl.last_dev.network_busy,
                dev.network_servers,
            ),
            log_util: util(dev.log_busy, tl.last_dev.log_busy, dev.log_servers),
        });
        tl.window_start = now;
        tl.last = self.counters.clone();
        tl.last_buffer = (hits, misses);
        tl.last_dev = dev;
        tl.resp_ns = 0;
        tl.input_ns = 0;
        tl.lock_ns = 0;
        tl.io_ns = 0;
        tl.cpu_wait_ns = 0;
        tl.cpu_service_ns = 0;
        self.timeline = Some(tl);
    }

    /// Runs the simulation and returns the report together with
    /// everything observation collected. With a default [`Observe`]
    /// the report is identical to [`run`](Engine::run) and the
    /// observations are empty.
    pub fn run_observed(mut self) -> (crate::RunReport, Observations) {
        if self.observe.trace && self.tracer.is_none() {
            self.tracer = Some(Box::new(VecSink::new()));
        }
        let now = self.run_to_end();
        let timeline = self.flush_timeline(now);
        let trace = self
            .tracer
            .as_mut()
            .map(|s| s.take_events())
            .unwrap_or_default();
        let report = self.build_report(now);
        (report, Observations { timeline, trace })
    }
}
