//! Per-transaction runtime state.

use dbshare_lockmgr::LockMode;
use dbshare_model::{NodeId, PageId, TxnId, TxnSpec};
use desim::fxhash::FxHashMap;
use desim::smallvec::InlineVec;
use desim::{SimDuration, SimTime};

/// Where a transaction currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Waiting for a multiprogramming slot.
    InputQueue,
    /// Executing (CPU, storage, or protocol processing).
    Running,
    /// Waiting for a lock (queued locally or at a remote GLA, or a
    /// pending write awaiting revocation acks).
    LockWait,
    /// Waiting for a page (storage read or page transfer).
    PageWait,
    /// Commit phase 1: waiting for log/force writes.
    CommitIo,
}

/// A commit-time page write (phase 1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommitWrite {
    /// The page to write (None = the log record, which goes to the
    /// node's log disks).
    pub page: Option<PageId>,
}

/// Runtime state of one transaction instance.
#[derive(Debug)]
pub(crate) struct Txn {
    /// Identity.
    pub id: TxnId,
    /// Executing node.
    pub node: NodeId,
    /// The program (page references in order).
    pub spec: TxnSpec,
    /// First arrival (restarts keep the original for response times).
    pub arrival: SimTime,
    /// When it obtained its MPL slot.
    pub admitted: SimTime,
    /// Current reference index.
    pub step: usize,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Pages locked via the GEM global lock table.
    pub held_gem: InlineVec<PageId, 8>,
    /// Locks held at GLA nodes: (authority, page, mode).
    pub held_gla: InlineVec<(NodeId, PageId, LockMode), 8>,
    /// Pages read-locked locally under a read authorization.
    pub held_ra: InlineVec<PageId, 8>,
    /// Page version numbers learned at lock time (used to predict the
    /// post-commit version for remote authorities).
    pub page_seqnos: FxHashMap<PageId, u64>,
    /// Pages modified (ordered, deduplicated).
    pub modified: InlineVec<PageId, 8>,
    /// Commit phase 1 write list (performed as a sequential chain).
    pub commit_writes: InlineVec<CommitWrite, 8>,
    /// The page a lock is being waited on.
    pub waiting_page: Option<PageId>,
    /// When the current wait began.
    pub wait_since: SimTime,
    /// Times restarted after deadlock aborts.
    pub restarts: u32,
    /// Accumulated lock waiting time.
    pub lock_wait: SimDuration,
    /// Accumulated I/O and page-transfer waiting time (PageWait and
    /// CommitIo phases).
    pub io_wait: SimDuration,
    /// Accumulated CPU queueing time.
    pub cpu_wait: SimDuration,
    /// Accumulated CPU service (including synchronous GEM holds).
    pub cpu_service: SimDuration,
}

impl Txn {
    /// Creates a fresh transaction.
    pub fn new(id: TxnId, node: NodeId, spec: TxnSpec, arrival: SimTime, restarts: u32) -> Self {
        Txn {
            id,
            node,
            spec,
            arrival,
            admitted: arrival,
            step: 0,
            phase: Phase::InputQueue,
            held_gem: InlineVec::new(),
            held_gla: InlineVec::new(),
            held_ra: InlineVec::new(),
            page_seqnos: FxHashMap::default(),
            modified: InlineVec::new(),
            commit_writes: InlineVec::new(),
            waiting_page: None,
            wait_since: SimTime::ZERO,
            restarts,
            lock_wait: SimDuration::ZERO,
            io_wait: SimDuration::ZERO,
            cpu_wait: SimDuration::ZERO,
            cpu_service: SimDuration::ZERO,
        }
    }

    /// Reinitialises a recycled transaction slot for a new admission,
    /// keeping every collection's capacity (spill buffers, hash-map
    /// storage). Equivalent to `*self = Txn::new(..)` without the
    /// allocations.
    pub fn renew(
        &mut self,
        id: TxnId,
        node: NodeId,
        spec: TxnSpec,
        arrival: SimTime,
        restarts: u32,
    ) {
        debug_assert!(
            self.held_gem.is_empty() && self.held_gla.is_empty() && self.held_ra.is_empty(),
            "recycled transaction {:?} still holds locks",
            self.id
        );
        self.id = id;
        self.node = node;
        self.spec = spec;
        self.arrival = arrival;
        self.admitted = arrival;
        self.step = 0;
        self.phase = Phase::InputQueue;
        self.held_gem.clear();
        self.held_gla.clear();
        self.held_ra.clear();
        self.page_seqnos.clear();
        self.modified.clear();
        self.commit_writes.clear();
        self.waiting_page = None;
        self.wait_since = SimTime::ZERO;
        self.restarts = restarts;
        self.lock_wait = SimDuration::ZERO;
        self.io_wait = SimDuration::ZERO;
        self.cpu_wait = SimDuration::ZERO;
        self.cpu_service = SimDuration::ZERO;
    }

    /// Records a modified page (deduplicated, order-preserving).
    pub fn note_modified(&mut self, page: PageId) {
        if !self.modified.contains(&page) {
            self.modified.push(page);
        }
    }

    /// Begins a wait at `now` (lock or page).
    pub fn begin_wait(&mut self, now: SimTime, phase: Phase, page: Option<PageId>) {
        self.phase = phase;
        self.waiting_page = page;
        self.wait_since = now;
    }

    /// Ends a lock wait at `now`, accumulating the waited time.
    pub fn end_lock_wait(&mut self, now: SimTime) {
        if self.phase == Phase::LockWait {
            self.lock_wait += now - self.wait_since;
        }
        self.phase = Phase::Running;
        self.waiting_page = None;
    }

    /// Ends an I/O or page wait at `now`, accumulating the waited time.
    pub fn end_io_wait(&mut self, now: SimTime) {
        if matches!(self.phase, Phase::PageWait | Phase::CommitIo) && now >= self.wait_since {
            self.io_wait += now - self.wait_since;
        }
        self.phase = Phase::Running;
        self.waiting_page = None;
    }
}
