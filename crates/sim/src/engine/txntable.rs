//! Slab storage for live transactions.
//!
//! `TxnId`s are allocated densely (a monotonically increasing counter,
//! never reused — deadlock victim selection depends on that ordering),
//! so the per-event transaction lookup does not need a hash map at
//! all: a flat `index` vector maps `TxnId::raw()` to a slot in a slab
//! of `Option<Txn>`, making `get`/`get_mut` two array indexes. Slots
//! are recycled through a free list; the index grows by 4 bytes per
//! transaction ever admitted (a few hundred kilobytes for the longest
//! paper runs).
//!
//! The API mirrors the `HashMap<TxnId, Txn>` it replaced, so call
//! sites read identically. Iteration is in slot order — deterministic
//! (unlike the randomly seeded `std` map it replaced), but *not* id
//! order; callers that feed iteration into output sort first, exactly
//! as they had to before.

use super::Txn;
use dbshare_model::{NodeId, TxnId, TxnSpec};
use desim::SimTime;

const NIL: u32 = u32::MAX;

#[derive(Debug)]
pub(crate) struct TxnTable {
    /// A slot holds either a live transaction, a *retired* one
    /// ([`Self::retire`]) whose storage waits in place for the next
    /// admission, or `None` after an abort ([`Self::remove`]). Retired
    /// slots are distinguished by their id mapping to `NIL` in `index`.
    slots: Vec<Option<Txn>>,
    free: Vec<u32>,
    /// `TxnId::raw() → slot`, `NIL` once completed/aborted.
    index: Vec<u32>,
    live: usize,
}

impl TxnTable {
    /// Creates a table pre-sized for `live` concurrently active
    /// transactions (the MPL bound) and `total` admissions overall.
    pub fn with_capacity(live: usize, total: usize) -> Self {
        TxnTable {
            slots: Vec::with_capacity(live),
            free: Vec::new(),
            index: Vec::with_capacity(total),
            live: 0,
        }
    }

    /// Admits a transaction, reusing a freed slot when one exists. A
    /// retired predecessor in that slot is renewed *in place*
    /// ([`Txn::renew`]), so its spill buffers and hash-map storage —
    /// and the slot's bytes themselves — are recycled without either
    /// an allocation or a `Txn`-sized move through the stack. `id`
    /// must be fresh (higher than every id ever admitted) —
    /// guaranteed by the engine's monotonic id allocation.
    pub fn admit(
        &mut self,
        id: TxnId,
        node: NodeId,
        spec: TxnSpec,
        arrival: SimTime,
        restarts: u32,
    ) {
        let raw = id.raw() as usize;
        debug_assert!(
            raw >= self.index.len(),
            "TxnId {raw} reused — ids must be fresh"
        );
        if raw >= self.index.len() {
            self.index.resize(raw + 1, NIL);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                match &mut self.slots[s as usize] {
                    Some(t) => t.renew(id, node, spec, arrival, restarts),
                    empty => *empty = Some(Txn::new(id, node, spec, arrival, restarts)),
                }
                s
            }
            None => {
                self.slots
                    .push(Some(Txn::new(id, node, spec, arrival, restarts)));
                (self.slots.len() - 1) as u32
            }
        };
        self.index[raw] = slot;
        self.live += 1;
    }

    /// Ends a transaction but leaves its storage in the slot for the
    /// next [`Self::admit`] to renew. The slot joins the same free
    /// list as [`Self::remove`] uses, so slot-assignment order — and
    /// with it every iteration order — is identical either way.
    pub fn retire(&mut self, id: &TxnId) {
        let Some(s) = self.slot_of(*id) else {
            return;
        };
        self.index[id.raw() as usize] = NIL;
        self.free.push(s as u32);
        self.live -= 1;
    }

    #[inline]
    fn slot_of(&self, id: TxnId) -> Option<usize> {
        match self.index.get(id.raw() as usize) {
            Some(&s) if s != NIL => Some(s as usize),
            _ => None,
        }
    }

    /// Registers a pre-built transaction. `id` must be fresh (higher
    /// than every id ever inserted) — guaranteed by the engine's
    /// monotonic id allocation. The engine itself admits through
    /// [`Self::admit`]; this is the test-side primitive.
    #[cfg(test)]
    pub fn insert(&mut self, id: TxnId, txn: Txn) {
        let raw = id.raw() as usize;
        debug_assert!(
            raw >= self.index.len(),
            "TxnId {raw} reused — ids must be fresh"
        );
        if raw >= self.index.len() {
            self.index.resize(raw + 1, NIL);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(txn);
                s
            }
            None => {
                self.slots.push(Some(txn));
                (self.slots.len() - 1) as u32
            }
        };
        self.index[raw] = slot;
        self.live += 1;
    }

    #[inline]
    pub fn get(&self, id: &TxnId) -> Option<&Txn> {
        self.slots[self.slot_of(*id)?].as_ref()
    }

    #[inline]
    pub fn get_mut(&mut self, id: &TxnId) -> Option<&mut Txn> {
        let s = self.slot_of(*id)?;
        self.slots[s].as_mut()
    }

    #[inline]
    pub fn contains_key(&self, id: &TxnId) -> bool {
        self.slot_of(*id).is_some()
    }

    pub fn remove(&mut self, id: &TxnId) -> Option<Txn> {
        let s = self.slot_of(*id)?;
        self.index[id.raw() as usize] = NIL;
        self.free.push(s as u32);
        self.live -= 1;
        self.slots[s].take()
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Live transactions in slot order (deterministic; not id order).
    /// Retired storage waiting in a slot is skipped: its id maps to
    /// `NIL`, exactly like a removed one's.
    pub fn values(&self) -> impl Iterator<Item = &Txn> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|t| self.slot_of(t.id).is_some())
    }

    /// `(id, txn)` pairs in slot order (deterministic; not id order).
    pub fn iter(&self) -> impl Iterator<Item = (TxnId, &Txn)> {
        self.values().map(|t| (t.id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::{NodeId, TxnSpec, TxnTypeId};
    use desim::SimTime;

    fn mk(id: u64) -> Txn {
        Txn::new(
            TxnId::new(id),
            NodeId::new(0),
            TxnSpec::new(TxnTypeId::new(0), 0, Vec::new()),
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = TxnTable::with_capacity(4, 16);
        t.insert(TxnId::new(0), mk(0));
        t.insert(TxnId::new(1), mk(1));
        assert_eq!(t.len(), 2);
        assert!(t.contains_key(&TxnId::new(0)));
        assert_eq!(t.get(&TxnId::new(1)).unwrap().id, TxnId::new(1));
        assert!(t.get(&TxnId::new(7)).is_none());
        let gone = t.remove(&TxnId::new(0)).unwrap();
        assert_eq!(gone.id, TxnId::new(0));
        assert!(t.remove(&TxnId::new(0)).is_none());
        assert!(!t.contains_key(&TxnId::new(0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn slots_recycle_but_ids_do_not() {
        let mut t = TxnTable::with_capacity(2, 64);
        for id in 0..50u64 {
            t.insert(TxnId::new(id), mk(id));
            if id >= 2 {
                t.remove(&TxnId::new(id - 2));
            }
        }
        assert_eq!(t.len(), 2);
        // slab stayed at the live bound, index covers every id ever used
        assert!(t.slots.len() <= 3, "slab grew to {}", t.slots.len());
        assert_eq!(t.index.len(), 50);
        let mut ids: Vec<u64> = t.iter().map(|(id, _)| id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![48, 49]);
    }

    #[test]
    fn retire_keeps_storage_for_renewal_in_place() {
        let mut t = TxnTable::with_capacity(2, 8);
        t.insert(TxnId::new(0), mk(0));
        t.get_mut(&TxnId::new(0)).unwrap().step = 9;
        t.retire(&TxnId::new(0));
        // the corpse is unreachable and invisible to iteration...
        assert_eq!(t.len(), 0);
        assert!(!t.contains_key(&TxnId::new(0)));
        assert_eq!(t.values().count(), 0);
        // ...but its slot (and storage) is renewed by the next admit
        t.admit(
            TxnId::new(1),
            NodeId::new(0),
            TxnSpec::new(TxnTypeId::new(0), 0, Vec::new()),
            SimTime::ZERO,
            0,
        );
        assert_eq!(t.len(), 1);
        assert!(t.slots.len() <= 1, "slot was not reused");
        let renewed = t.get(&TxnId::new(1)).unwrap();
        assert_eq!(renewed.id, TxnId::new(1));
        assert_eq!(renewed.step, 0, "renew did not reset state");
        // removal (abort path) empties the slot instead
        t.remove(&TxnId::new(1)).unwrap();
        assert_eq!(t.values().count(), 0);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = TxnTable::with_capacity(1, 1);
        t.insert(TxnId::new(0), mk(0));
        t.get_mut(&TxnId::new(0)).unwrap().step = 7;
        assert_eq!(t.get(&TxnId::new(0)).unwrap().step, 7);
    }
}
