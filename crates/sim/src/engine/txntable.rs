//! Slab storage for live transactions.
//!
//! `TxnId`s are allocated densely (a monotonically increasing counter,
//! never reused — deadlock victim selection depends on that ordering),
//! so the per-event transaction lookup does not need a hash map at
//! all: a flat `index` vector maps `TxnId::raw()` to a slot in a slab
//! of `Option<Txn>`, making `get`/`get_mut` two array indexes. Slots
//! are recycled through a free list; the index grows by 4 bytes per
//! transaction ever admitted (a few hundred kilobytes for the longest
//! paper runs).
//!
//! The API mirrors the `HashMap<TxnId, Txn>` it replaced, so call
//! sites read identically. Iteration is in slot order — deterministic
//! (unlike the randomly seeded `std` map it replaced), but *not* id
//! order; callers that feed iteration into output sort first, exactly
//! as they had to before.
//!
//! The index is a *sliding window*: ids are monotonic and the live set
//! is bounded by the MPL, so once the all-`NIL` prefix of completed
//! transactions dominates the vector it is drained and `base` advanced
//! ([`TxnTable::compact`]). Lookups below `base` resolve to `None` —
//! exactly what the retained `NIL` entries resolved to — so compaction
//! is invisible to every caller while bounding index memory to the
//! live id *span* instead of 4 bytes per transaction ever admitted
//! (hundreds of megabytes on billion-event scale runs).

use super::Txn;
use dbshare_model::{NodeId, TxnId, TxnSpec};
use desim::SimTime;

const NIL: u32 = u32::MAX;

/// Below this index length compaction is not attempted: the paper-scale
/// runs stay under it and keep their exact historical allocation
/// profile; scale runs cross it within the first second of sim time.
const COMPACT_MIN: usize = 1 << 14;

/// Largest index pre-allocation honoured by [`TxnTable::with_capacity`]
/// — beyond it the sliding window makes up-front sizing pointless.
const MAX_INDEX_PREALLOC: usize = 1 << 20;

/// Converts a slab position to its `u32` slot index, refusing to wrap
/// into the `NIL` sentinel: at 2^32-1 concurrently live transactions
/// the table fails loudly instead of silently aliasing slot `NIL`
/// (which every lookup treats as "completed").
fn checked_slot(pos: usize) -> u32 {
    match u32::try_from(pos) {
        Ok(s) if s != NIL => s,
        _ => panic!(
            "TxnTable slab overflow: {pos} concurrent transactions exceed the u32 slot range"
        ),
    }
}

#[derive(Debug)]
pub(crate) struct TxnTable {
    /// A slot holds either a live transaction, a *retired* one
    /// ([`Self::retire`]) whose storage waits in place for the next
    /// admission, or `None` after an abort ([`Self::remove`]). Retired
    /// slots are distinguished by their id mapping to `NIL` in `index`.
    slots: Vec<Option<Txn>>,
    free: Vec<u32>,
    /// `TxnId::raw() - base → slot`, `NIL` once completed/aborted.
    index: Vec<u32>,
    /// First id still covered by `index`; every id below it completed.
    base: u64,
    /// Admissions since the last compaction attempt (amortizes the
    /// prefix scan).
    since_compact: usize,
    live: usize,
}

impl TxnTable {
    /// Creates a table pre-sized for `live` concurrently active
    /// transactions (the MPL bound) and `total` admissions overall
    /// (capped: the sliding index never needs more than a window).
    pub fn with_capacity(live: usize, total: usize) -> Self {
        TxnTable {
            slots: Vec::with_capacity(live),
            free: Vec::new(),
            index: Vec::with_capacity(total.min(MAX_INDEX_PREALLOC)),
            base: 0,
            since_compact: 0,
            live: 0,
        }
    }

    /// Drops the all-`NIL` prefix once it dominates the index. Called
    /// every `COMPACT_MIN` admissions; the scan touches at most the
    /// prefix it would drain, so the cost is amortized constant.
    fn compact(&mut self) {
        self.since_compact += 1;
        if self.since_compact < COMPACT_MIN || self.index.len() < COMPACT_MIN {
            return;
        }
        self.since_compact = 0;
        let nil_prefix = self.index.iter().take_while(|&&s| s == NIL).count();
        if nil_prefix * 2 >= self.index.len() {
            self.index.drain(..nil_prefix);
            self.base += nil_prefix as u64;
            self.index.shrink_to(self.index.len().max(COMPACT_MIN));
        }
    }

    /// `TxnId::raw() → index position`, `None` for ids already slid
    /// out of the window (always completed ones).
    #[inline]
    fn pos_of(&self, raw: u64) -> Option<usize> {
        raw.checked_sub(self.base).map(|p| p as usize)
    }

    /// Admits a transaction, reusing a freed slot when one exists. A
    /// retired predecessor in that slot is renewed *in place*
    /// ([`Txn::renew`]), so its spill buffers and hash-map storage —
    /// and the slot's bytes themselves — are recycled without either
    /// an allocation or a `Txn`-sized move through the stack. `id`
    /// must be fresh (higher than every id ever admitted) —
    /// guaranteed by the engine's monotonic id allocation.
    pub fn admit(
        &mut self,
        id: TxnId,
        node: NodeId,
        spec: TxnSpec,
        arrival: SimTime,
        restarts: u32,
    ) {
        self.compact();
        let raw = self
            .pos_of(id.raw())
            .expect("TxnId below the slid-out window — ids must be fresh");
        debug_assert!(
            raw >= self.index.len(),
            "TxnId {raw} reused — ids must be fresh"
        );
        if raw >= self.index.len() {
            self.index.resize(raw + 1, NIL);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                match &mut self.slots[s as usize] {
                    Some(t) => t.renew(id, node, spec, arrival, restarts),
                    empty => *empty = Some(Txn::new(id, node, spec, arrival, restarts)),
                }
                s
            }
            None => {
                self.slots
                    .push(Some(Txn::new(id, node, spec, arrival, restarts)));
                checked_slot(self.slots.len() - 1)
            }
        };
        self.index[raw] = slot;
        self.live += 1;
    }

    /// Ends a transaction but leaves its storage in the slot for the
    /// next [`Self::admit`] to renew. The slot joins the same free
    /// list as [`Self::remove`] uses, so slot-assignment order — and
    /// with it every iteration order — is identical either way.
    pub fn retire(&mut self, id: &TxnId) {
        let Some(s) = self.slot_of(*id) else {
            return;
        };
        let pos = self.pos_of(id.raw()).expect("slot_of checked the window");
        self.index[pos] = NIL;
        self.free.push(s as u32);
        self.live -= 1;
    }

    #[inline]
    fn slot_of(&self, id: TxnId) -> Option<usize> {
        match self.index.get(self.pos_of(id.raw())?) {
            Some(&s) if s != NIL => Some(s as usize),
            _ => None,
        }
    }

    /// Registers a pre-built transaction. `id` must be fresh (higher
    /// than every id ever inserted) — guaranteed by the engine's
    /// monotonic id allocation. The engine itself admits through
    /// [`Self::admit`]; this is the test-side primitive.
    #[cfg(test)]
    pub fn insert(&mut self, id: TxnId, txn: Txn) {
        self.compact();
        let raw = self
            .pos_of(id.raw())
            .expect("TxnId below the slid-out window — ids must be fresh");
        debug_assert!(
            raw >= self.index.len(),
            "TxnId {raw} reused — ids must be fresh"
        );
        if raw >= self.index.len() {
            self.index.resize(raw + 1, NIL);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(txn);
                s
            }
            None => {
                self.slots.push(Some(txn));
                checked_slot(self.slots.len() - 1)
            }
        };
        self.index[raw] = slot;
        self.live += 1;
    }

    #[inline]
    pub fn get(&self, id: &TxnId) -> Option<&Txn> {
        self.slots[self.slot_of(*id)?].as_ref()
    }

    #[inline]
    pub fn get_mut(&mut self, id: &TxnId) -> Option<&mut Txn> {
        let s = self.slot_of(*id)?;
        self.slots[s].as_mut()
    }

    #[inline]
    pub fn contains_key(&self, id: &TxnId) -> bool {
        self.slot_of(*id).is_some()
    }

    pub fn remove(&mut self, id: &TxnId) -> Option<Txn> {
        let s = self.slot_of(*id)?;
        let pos = self.pos_of(id.raw()).expect("slot_of checked the window");
        self.index[pos] = NIL;
        self.free.push(s as u32);
        self.live -= 1;
        self.slots[s].take()
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Live transactions in slot order (deterministic; not id order).
    /// Retired storage waiting in a slot is skipped: its id maps to
    /// `NIL`, exactly like a removed one's.
    pub fn values(&self) -> impl Iterator<Item = &Txn> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|t| self.slot_of(t.id).is_some())
    }

    /// `(id, txn)` pairs in slot order (deterministic; not id order).
    pub fn iter(&self) -> impl Iterator<Item = (TxnId, &Txn)> {
        self.values().map(|t| (t.id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::{NodeId, TxnSpec, TxnTypeId};
    use desim::SimTime;

    fn mk(id: u64) -> Txn {
        Txn::new(
            TxnId::new(id),
            NodeId::new(0),
            TxnSpec::new(TxnTypeId::new(0), 0, Vec::new()),
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = TxnTable::with_capacity(4, 16);
        t.insert(TxnId::new(0), mk(0));
        t.insert(TxnId::new(1), mk(1));
        assert_eq!(t.len(), 2);
        assert!(t.contains_key(&TxnId::new(0)));
        assert_eq!(t.get(&TxnId::new(1)).unwrap().id, TxnId::new(1));
        assert!(t.get(&TxnId::new(7)).is_none());
        let gone = t.remove(&TxnId::new(0)).unwrap();
        assert_eq!(gone.id, TxnId::new(0));
        assert!(t.remove(&TxnId::new(0)).is_none());
        assert!(!t.contains_key(&TxnId::new(0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn slots_recycle_but_ids_do_not() {
        let mut t = TxnTable::with_capacity(2, 64);
        for id in 0..50u64 {
            t.insert(TxnId::new(id), mk(id));
            if id >= 2 {
                t.remove(&TxnId::new(id - 2));
            }
        }
        assert_eq!(t.len(), 2);
        // slab stayed at the live bound, index covers every id ever used
        assert!(t.slots.len() <= 3, "slab grew to {}", t.slots.len());
        assert_eq!(t.index.len(), 50);
        let mut ids: Vec<u64> = t.iter().map(|(id, _)| id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![48, 49]);
    }

    #[test]
    fn retire_keeps_storage_for_renewal_in_place() {
        let mut t = TxnTable::with_capacity(2, 8);
        t.insert(TxnId::new(0), mk(0));
        t.get_mut(&TxnId::new(0)).unwrap().step = 9;
        t.retire(&TxnId::new(0));
        // the corpse is unreachable and invisible to iteration...
        assert_eq!(t.len(), 0);
        assert!(!t.contains_key(&TxnId::new(0)));
        assert_eq!(t.values().count(), 0);
        // ...but its slot (and storage) is renewed by the next admit
        t.admit(
            TxnId::new(1),
            NodeId::new(0),
            TxnSpec::new(TxnTypeId::new(0), 0, Vec::new()),
            SimTime::ZERO,
            0,
        );
        assert_eq!(t.len(), 1);
        assert!(t.slots.len() <= 1, "slot was not reused");
        let renewed = t.get(&TxnId::new(1)).unwrap();
        assert_eq!(renewed.id, TxnId::new(1));
        assert_eq!(renewed.step, 0, "renew did not reset state");
        // removal (abort path) empties the slot instead
        t.remove(&TxnId::new(1)).unwrap();
        assert_eq!(t.values().count(), 0);
    }

    #[test]
    fn index_window_slides_and_lookups_survive() {
        let mut t = TxnTable::with_capacity(2, 64);
        // Drive far past COMPACT_MIN with a bounded live set.
        let total = (COMPACT_MIN * 3) as u64;
        for id in 0..total {
            t.insert(TxnId::new(id), mk(id));
            if id >= 2 {
                t.remove(&TxnId::new(id - 2));
            }
        }
        assert_eq!(t.len(), 2);
        // The index slid: it holds a window, not 4 bytes per id ever.
        assert!(t.base > 0, "index never compacted");
        assert!(
            t.index.len() < COMPACT_MIN * 2,
            "index grew unboundedly: {}",
            t.index.len()
        );
        // Live ids still resolve; slid-out (completed) ids resolve to
        // None — exactly as their retained NIL entries did.
        assert!(t.contains_key(&TxnId::new(total - 1)));
        assert!(t.contains_key(&TxnId::new(total - 2)));
        assert!(t.get(&TxnId::new(0)).is_none());
        assert!(!t.contains_key(&TxnId::new(t.base - 1)));
        let mut ids: Vec<u64> = t.iter().map(|(id, _)| id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![total - 2, total - 1]);
    }

    #[test]
    fn slot_indices_are_checked_against_the_nil_sentinel() {
        assert_eq!(checked_slot(0), 0);
        assert_eq!(checked_slot(7), 7);
    }

    #[test]
    #[should_panic(expected = "TxnTable slab overflow")]
    fn slot_index_overflow_fails_loudly_instead_of_wrapping() {
        checked_slot(NIL as usize);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = TxnTable::with_capacity(1, 1);
        t.insert(TxnId::new(0), mk(0));
        t.get_mut(&TxnId::new(0)).unwrap().step = 7;
        assert_eq!(t.get(&TxnId::new(0)).unwrap().step, 7);
    }
}
