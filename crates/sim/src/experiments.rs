//! Experiment presets reproducing §4 of the paper.
//!
//! Each `figNN` function regenerates the corresponding figure's data:
//! the same parameter sweep, the same curves, as series of
//! [`RunReport`]s. The `repro` binary in `dbshare-bench` prints them;
//! integration tests assert the qualitative shapes the paper reports.

use crate::progress::ProgressGauge;
use crate::{Engine, Observations, Observe, RunReport};
use dbshare_model::{
    CouplingMode, LogStorage, PageTransferMode, RoutingStrategy, StorageAllocation, SystemConfig,
    UpdateStrategy,
};
use dbshare_workload::trace::{Trace, TraceGenConfig};
use dbshare_workload::{DebitCredit, DebitCreditWorkload, TraceWorkload, WithGlaMap, Workload};

/// Storage allocation of the hot BRANCH/TELLER partition (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtStorage {
    /// Conventional disks (the default of §4.2).
    Disk,
    /// Resident in GEM (Fig. 4.3).
    Gem,
    /// Disks with a volatile shared cache (Fig. 4.4).
    VolatileCache,
    /// Disks with a non-volatile shared cache (Fig. 4.4).
    NvCache,
    /// Disks behind a small non-volatile GEM write buffer (§2 usage
    /// form 2; reproduction extension).
    GemWriteBuffer,
}

/// Run length: trade fidelity for speed (tests use [`RunLength::quick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Transactions completed before measurement starts.
    pub warmup: u64,
    /// Transactions measured.
    pub measured: u64,
}

impl RunLength {
    /// Full-length runs for the reproduction binary.
    pub const fn full() -> Self {
        RunLength {
            warmup: 2_000,
            measured: 16_000,
        }
    }
    /// Short runs for tests and quick sweeps.
    pub const fn quick() -> Self {
        RunLength {
            warmup: 400,
            measured: 2_500,
        }
    }
}

/// One curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label as in the paper's legend.
    pub label: String,
    /// `(nodes, report)` per swept point.
    pub points: Vec<(u16, RunReport)>,
}

impl Series {
    /// The report at `nodes`, if present.
    pub fn at(&self, nodes: u16) -> Option<&RunReport> {
        self.points
            .iter()
            .find(|&&(n, _)| n == nodes)
            .map(|(_, r)| r)
    }

    /// The node counts this curve actually has points for, in sweep
    /// order. Callers rendering several curves against a shared node
    /// axis should consult this (or [`Series::at`], which returns
    /// `None` for absent points) rather than assuming every curve
    /// covers every node count.
    pub fn node_counts(&self) -> Vec<u16> {
        self.points.iter().map(|&(n, _)| n).collect()
    }
}

/// A data-only description of one simulation run: everything a worker
/// needs to execute it, with no closures, so sweeps can be flattened
/// into independent jobs, fingerprinted, and logged (the
/// `dbshare-harness` crate builds on this).
#[derive(Debug, Clone, Copy)]
pub enum RunSpec {
    /// A debit-credit run (Figs. 4.1–4.6).
    DebitCredit(DebitCreditRun),
    /// A debit-credit run against the central lock engine with an
    /// explicit per-operation service time (the §5 comparison).
    LockEngine {
        /// Preset parameters (with [`CouplingMode::LockEngine`]).
        params: DebitCreditRun,
        /// Lock-engine service time per operation in microseconds.
        op_service_us: f64,
    },
    /// A trace-driven run (Fig. 4.7).
    Trace(TraceRun),
    /// A memory-lean large-system run (the `--scale` family).
    Scale(ScaleRun),
}

impl RunSpec {
    /// Executes the run. Deterministic: equal specs produce equal
    /// reports on every invocation, in any process, on any thread.
    pub fn execute(&self) -> RunReport {
        self.engine().run()
    }

    /// Executes the run with the given observation settings, returning
    /// the report together with the collected timeline and trace. The
    /// report is identical to [`execute`](RunSpec::execute) — and so
    /// are the observations across repeated invocations, which is what
    /// makes trace files diffable.
    pub fn execute_observed(&self, observe: Observe) -> (RunReport, Observations) {
        let mut engine = self.engine();
        engine.set_observe(observe);
        engine.run_observed()
    }

    /// Executes the run on `cores` host threads with the given
    /// observation settings. The report and observations are
    /// bit-identical to [`execute_observed`](RunSpec::execute_observed)
    /// at every `cores` value (the pipeline stages preserve the serial
    /// event and fold order; see the engine's `parallel` module) —
    /// only wall-clock changes.
    pub fn execute_with(&self, cores: u32, observe: Observe) -> (RunReport, Observations) {
        self.execute_instrumented(cores, observe, None)
    }

    /// Executes the run on `cores` host threads, optionally publishing
    /// coarse progress into `progress` for a sampling thread to read.
    /// The gauge is observer-only: the report and observations are
    /// bit-identical with and without it, at every `cores` value.
    pub fn execute_instrumented(
        &self,
        cores: u32,
        observe: Observe,
        progress: Option<std::sync::Arc<ProgressGauge>>,
    ) -> (RunReport, Observations) {
        let mut engine = self.engine();
        engine.set_cores(cores);
        engine.set_observe(observe);
        if let Some(gauge) = progress {
            engine.set_progress(gauge);
        }
        engine.run_observed()
    }

    /// Builds the configured engine without running it.
    fn engine(&self) -> Engine {
        match *self {
            RunSpec::DebitCredit(p) => debit_credit_engine_at(p, 100.0, |_| {}),
            RunSpec::LockEngine {
                params,
                op_service_us,
            } => debit_credit_engine_at(params, 100.0, |cfg| {
                cfg.lock_engine.op_service_us = op_service_us
            }),
            RunSpec::Trace(p) => trace_engine(p),
            RunSpec::Scale(p) => scale_engine(p),
        }
    }

    /// Number of nodes the run simulates.
    pub fn nodes(&self) -> u16 {
        match *self {
            RunSpec::DebitCredit(p) | RunSpec::LockEngine { params: p, .. } => p.nodes,
            RunSpec::Trace(p) => p.nodes,
            RunSpec::Scale(p) => p.nodes,
        }
    }

    /// The run's master seed.
    pub fn seed(&self) -> u64 {
        match *self {
            RunSpec::DebitCredit(p) | RunSpec::LockEngine { params: p, .. } => p.seed,
            RunSpec::Trace(p) => p.seed,
            RunSpec::Scale(p) => p.seed,
        }
    }
}

/// One curve of a figure as a grid of pending runs: the shape of the
/// sweep without any of the work. Produced by the `*_grid` preset
/// functions; executed serially by [`run_grid_serial`] or in parallel
/// by the `dbshare-harness` worker pool.
#[derive(Debug, Clone)]
pub struct CurveGrid {
    /// Curve label as in the paper's legend.
    pub label: String,
    /// `(nodes, spec)` per swept point.
    pub points: Vec<(u16, RunSpec)>,
}

/// Executes a grid serially, point by point, in declaration order.
/// The parallel harness reassembles its results into exactly this
/// shape, so the two are interchangeable.
pub fn run_grid_serial(grid: Vec<CurveGrid>) -> Vec<Series> {
    grid.into_iter()
        .map(|c| Series {
            label: c.label,
            points: c
                .points
                .into_iter()
                .map(|(n, spec)| (n, spec.execute()))
                .collect(),
        })
        .collect()
}

/// Parameters of one debit-credit run.
#[derive(Debug, Clone, Copy)]
pub struct DebitCreditRun {
    /// Number of nodes.
    pub nodes: u16,
    /// Concurrency/coherency protocol.
    pub coupling: CouplingMode,
    /// FORCE or NOFORCE.
    pub update: UpdateStrategy,
    /// Random or affinity routing.
    pub routing: RoutingStrategy,
    /// Buffer frames per node (200 or 1000 in the paper).
    pub buffer: u64,
    /// BRANCH/TELLER storage allocation.
    pub bt: BtStorage,
    /// §3.1 clustering of BRANCH and TELLER records (all of the paper's
    /// experiments cluster; `false` runs the four-page variant).
    pub clustered: bool,
    /// Replaces PCL's partitioned lock authority with a *central* lock
    /// manager on node 0 (\[Ra91b\] baseline; only meaningful with
    /// [`CouplingMode::Pcl`]).
    pub central_lock_manager: bool,
    /// NOFORCE page-transfer channel (Fig. 4.3 extension).
    pub transfer: PageTransferMode,
    /// Where commit log records go (§2 extension; the paper uses log
    /// disks).
    pub log: LogStorage,
    /// Run length.
    pub run: RunLength,
    /// Master seed.
    pub seed: u64,
}

impl DebitCreditRun {
    /// The §4.2 baseline: GEM locking, NOFORCE, affinity routing,
    /// buffer 200, everything on plain disks.
    pub fn baseline(nodes: u16, run: RunLength) -> Self {
        DebitCreditRun {
            nodes,
            coupling: CouplingMode::GemLocking,
            update: UpdateStrategy::NoForce,
            routing: RoutingStrategy::Affinity,
            buffer: 200,
            bt: BtStorage::Disk,
            clustered: true,
            central_lock_manager: false,
            transfer: PageTransferMode::Network,
            log: LogStorage::Disk,
            run,
            seed: 0xDB5_4A6E,
        }
    }
}

/// Executes one debit-credit configuration (Table 4.1 parameters).
pub fn debit_credit_run(p: DebitCreditRun) -> RunReport {
    debit_credit_run_with(p, |_| {})
}

/// Like [`debit_credit_run`], with a final hook to adjust any
/// [`SystemConfig`] field the preset does not expose (lock-engine
/// timing, MPL, CPU capacity, ...).
pub fn debit_credit_run_with(
    p: DebitCreditRun,
    tweak: impl FnOnce(&mut SystemConfig),
) -> RunReport {
    debit_credit_run_at(p, 100.0, tweak)
}

/// [`debit_credit_run_with`] at an explicit per-node arrival rate (the
/// database still scales with the rate, §4.1). Used by
/// [`find_tps_at_cpu`]'s probes so every preset option is honoured.
pub fn debit_credit_run_at(
    p: DebitCreditRun,
    tps: f64,
    tweak: impl FnOnce(&mut SystemConfig),
) -> RunReport {
    debit_credit_engine_at(p, tps, tweak).run()
}

/// Builds the fully configured engine for a debit-credit run without
/// running it (observed execution attaches its sinks first).
fn debit_credit_engine_at(
    p: DebitCreditRun,
    tps: f64,
    tweak: impl FnOnce(&mut SystemConfig),
) -> Engine {
    let mut cfg = SystemConfig::debit_credit(p.nodes);
    cfg.arrival_tps_per_node = tps;
    cfg.coupling = p.coupling;
    cfg.update = p.update;
    cfg.routing = p.routing;
    cfg.buffer_pages_per_node = p.buffer;
    cfg.page_transfer = p.transfer;
    cfg.log_storage = p.log;
    cfg.run.warmup_txns = p.run.warmup;
    cfg.run.measured_txns = p.run.measured;
    cfg.run.seed = p.seed;
    let dc = DebitCredit::new(p.nodes, tps);
    let bt_pages = dc.bt_pages();
    let mut wl = DebitCreditWorkload::new(dc, tps, p.routing);
    if !p.clustered {
        wl = wl.unclustered();
    }
    cfg.partitions = Workload::partitions(&wl).to_vec();
    // §4.4: reallocate the hot BRANCH/TELLER partition.
    let bt_part = &mut cfg.partitions[dbshare_workload::debit_credit::BT.index()];
    match p.bt {
        BtStorage::Disk => {}
        BtStorage::Gem => bt_part.storage = StorageAllocation::Gem,
        BtStorage::VolatileCache => {
            let disks = disks_of(&bt_part.storage);
            bt_part.storage = StorageAllocation::CachedDisk {
                disks,
                cache_pages: bt_pages,
                nonvolatile: false,
            };
        }
        BtStorage::NvCache => {
            let disks = disks_of(&bt_part.storage);
            bt_part.storage = StorageAllocation::CachedDisk {
                disks,
                cache_pages: bt_pages,
                nonvolatile: true,
            };
        }
        BtStorage::GemWriteBuffer => {
            let disks = disks_of(&bt_part.storage);
            bt_part.storage = StorageAllocation::WriteBufferedDisk {
                disks,
                // a *small* buffer is the point of this usage form
                buffer_pages: (bt_pages / 4).max(16),
            };
        }
    }
    tweak(&mut cfg);
    if p.central_lock_manager {
        let partitions = cfg.partitions.len();
        let central = WithGlaMap::new(wl, dbshare_model::gla::GlaMap::central(p.nodes, partitions));
        return Engine::new(cfg, Box::new(central)).expect("valid experiment configuration");
    }
    Engine::new(cfg, Box::new(wl)).expect("valid experiment configuration")
}

/// Parameters of one memory-lean scale run. Unlike [`DebitCreditRun`],
/// the database size is explicit instead of rate-coupled (a 200-node
/// Table 4.1 database would hold two billion accounts), and every
/// page-metadata pre-allocation is capped by a budget so the engine
/// materializes large-system state lazily.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRun {
    /// Number of nodes (the paper's figures stop at 8; scale runs
    /// probe 50–200).
    pub nodes: u16,
    /// Total accounts (branches = nodes, accounts divided evenly).
    pub accounts: u64,
    /// Concurrency/coherency protocol.
    pub coupling: CouplingMode,
    /// Arrival rate per node in TPS.
    pub tps_per_node: f64,
    /// Cap on every page-metadata pre-allocation, in entries
    /// ([`SystemConfig::page_metadata_budget`]).
    pub page_metadata_budget: usize,
    /// Run length.
    pub run: RunLength,
    /// Master seed.
    pub seed: u64,
}

/// Builds the engine for a scale run. The geometry uses
/// [`DebitCredit::with_accounts`]; everything else follows the §4.2
/// baseline (NOFORCE, affinity routing, buffer 200, plain disks).
fn scale_engine(p: ScaleRun) -> Engine {
    let mut cfg = SystemConfig::debit_credit(p.nodes);
    cfg.arrival_tps_per_node = p.tps_per_node;
    cfg.coupling = p.coupling;
    cfg.run.warmup_txns = p.run.warmup;
    cfg.run.measured_txns = p.run.measured;
    cfg.run.seed = p.seed;
    cfg.page_metadata_budget = Some(p.page_metadata_budget);
    let dc = DebitCredit::with_accounts(p.nodes, p.accounts);
    let wl = DebitCreditWorkload::new(dc, p.tps_per_node, RoutingStrategy::Affinity);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid scale configuration")
}

/// Node axis of the full scale sweep (`--scale full`). The 200-node
/// endpoint is the headline run: one million accounts, on the order of
/// a hundred million calendar events.
pub const SCALE_FULL_NODES: &[u16] = &[50, 100, 200];
/// Node axis of the CI-sized smoke sweep (`--scale smoke`).
pub const SCALE_SMOKE_NODES: &[u16] = &[16, 64];

/// Pre-allocation cap used by every scale preset.
const SCALE_BUDGET: usize = 8_192;

/// Geometry and run length of one `--scale` family. The fixed grids
/// and the `--knee` bisection both build specs through
/// [`ScalePreset::spec`], so a knee probe at node count `n` is exactly
/// the grid's point at `n` — same config fingerprint, comparable
/// history rows.
#[derive(Debug, Clone, Copy)]
pub struct ScalePreset {
    /// Total accounts in the database.
    pub accounts: u64,
    /// Measured transactions per node.
    pub measured_per_node: u64,
    /// Node axis of the fixed grid.
    pub nodes: &'static [u16],
}

impl ScalePreset {
    /// The `--scale smoke` preset: a CI-sized miniature (≤64 nodes,
    /// 100,000 accounts) exercising the same code paths as the full
    /// sweep.
    pub const SMOKE: ScalePreset = ScalePreset {
        accounts: 100_000,
        measured_per_node: 1_000,
        nodes: SCALE_SMOKE_NODES,
    };

    /// The `--scale full` preset: up to 200 nodes against one million
    /// accounts, 25,000 measured transactions per node (5 million at
    /// the endpoint — beyond 10^8 calendar events for the 200-node GEM
    /// run).
    pub const FULL: ScalePreset = ScalePreset {
        accounts: 1_000_000,
        measured_per_node: 25_000,
        nodes: SCALE_FULL_NODES,
    };

    /// The two curves every scale figure sweeps.
    pub const CURVES: [(&'static str, CouplingMode); 2] = [
        ("GEM/NOFORCE", CouplingMode::GemLocking),
        ("PCL/NOFORCE", CouplingMode::Pcl),
    ];

    /// The spec at node count `n` for `coupling` — identical to the
    /// corresponding fixed-grid point.
    pub fn spec(&self, coupling: CouplingMode, n: u16) -> RunSpec {
        RunSpec::Scale(ScaleRun {
            nodes: n,
            accounts: self.accounts,
            coupling,
            tps_per_node: 100.0,
            page_metadata_budget: SCALE_BUDGET,
            run: RunLength {
                // Work scales with the system so per-node load (and
                // the contention picture) is comparable across the
                // axis.
                warmup: n as u64 * 500,
                measured: n as u64 * self.measured_per_node,
            },
            seed: 0xDB5_4A6E,
        })
    }

    /// The preset's fixed grid (what `--scale` runs).
    pub fn grid(&self) -> Vec<CurveGrid> {
        Self::CURVES
            .iter()
            .map(|&(label, coupling)| grid_curve(label, self.nodes, |n| self.spec(coupling, n)))
            .collect()
    }
}

/// The `--scale full` grid ([`ScalePreset::FULL`]).
pub fn scale_full_grid() -> Vec<CurveGrid> {
    ScalePreset::FULL.grid()
}

/// The `--scale smoke` grid ([`ScalePreset::SMOKE`]).
pub fn scale_smoke_grid() -> Vec<CurveGrid> {
    ScalePreset::SMOKE.grid()
}

fn disks_of(s: &StorageAllocation) -> u32 {
    match *s {
        StorageAllocation::Disk { disks } => disks,
        StorageAllocation::CachedDisk { disks, .. } => disks,
        StorageAllocation::WriteBufferedDisk { disks, .. } => disks,
        StorageAllocation::Gem => 0,
    }
}

/// Builds one grid curve from a per-node spec constructor.
fn grid_curve<F>(label: &str, nodes: &[u16], mut f: F) -> CurveGrid
where
    F: FnMut(u16) -> RunSpec,
{
    CurveGrid {
        label: label.to_string(),
        points: nodes.iter().map(|&n| (n, f(n))).collect(),
    }
}

/// Fig. 4.1 as a grid of pending runs: GEM locking, response time vs.
/// nodes for random/affinity routing × FORCE/NOFORCE (buffer 200, all
/// files on disk).
pub fn fig41_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for (routing, rl) in [
        (RoutingStrategy::Random, "random"),
        (RoutingStrategy::Affinity, "affinity"),
    ] {
        for (update, ul) in [
            (UpdateStrategy::Force, "FORCE"),
            (UpdateStrategy::NoForce, "NOFORCE"),
        ] {
            out.push(grid_curve(&format!("{rl}/{ul}"), nodes, |n| {
                RunSpec::DebitCredit(DebitCreditRun {
                    nodes: n,
                    routing,
                    update,
                    ..DebitCreditRun::baseline(n, run)
                })
            }));
        }
    }
    out
}

/// Fig. 4.1: GEM locking, response time vs. nodes for random/affinity
/// routing × FORCE/NOFORCE (buffer 200, all files on disk).
pub fn fig41(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig41_grid(nodes, run))
}

/// Fig. 4.2 as a grid of pending runs: buffer size 200 vs. 1000 for
/// random routing, FORCE and NOFORCE, GEM locking.
pub fn fig42_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for buffer in [200u64, 1_000] {
        for (update, ul) in [
            (UpdateStrategy::Force, "FORCE"),
            (UpdateStrategy::NoForce, "NOFORCE"),
        ] {
            out.push(grid_curve(&format!("{ul}/buffer {buffer}"), nodes, |n| {
                RunSpec::DebitCredit(DebitCreditRun {
                    nodes: n,
                    routing: RoutingStrategy::Random,
                    update,
                    buffer,
                    ..DebitCreditRun::baseline(n, run)
                })
            }));
        }
    }
    out
}

/// Fig. 4.2: influence of buffer size (200 vs. 1000) for random
/// routing, FORCE and NOFORCE, GEM locking.
pub fn fig42(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig42_grid(nodes, run))
}

/// Fig. 4.3 as a grid of pending runs: BRANCH/TELLER on disk vs. in
/// GEM, for NOFORCE (a) and FORCE (b), both routings, buffer 1000.
pub fn fig43_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for (update, ul) in [
        (UpdateStrategy::NoForce, "NOFORCE"),
        (UpdateStrategy::Force, "FORCE"),
    ] {
        for (bt, bl) in [(BtStorage::Disk, "disk"), (BtStorage::Gem, "GEM")] {
            for (routing, rl) in [
                (RoutingStrategy::Random, "random"),
                (RoutingStrategy::Affinity, "affinity"),
            ] {
                out.push(grid_curve(&format!("{ul}/{rl}/B-T {bl}"), nodes, |n| {
                    RunSpec::DebitCredit(DebitCreditRun {
                        nodes: n,
                        routing,
                        update,
                        buffer: 1_000,
                        bt,
                        ..DebitCreditRun::baseline(n, run)
                    })
                }));
            }
        }
    }
    out
}

/// Fig. 4.3: BRANCH/TELLER on disk vs. in GEM, for NOFORCE (a) and
/// FORCE (b), both routings, buffer 1000.
pub fn fig43(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig43_grid(nodes, run))
}

/// Fig. 4.4 as a grid of pending runs: disk caches for the
/// BRANCH/TELLER partition (FORCE, buffer 1000).
pub fn fig44_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for (bt, bl) in [
        (BtStorage::Disk, "disk"),
        (BtStorage::VolatileCache, "volatile cache"),
        (BtStorage::NvCache, "nonvolatile cache"),
        (BtStorage::Gem, "GEM"),
    ] {
        for (routing, rl) in [
            (RoutingStrategy::Random, "random"),
            (RoutingStrategy::Affinity, "affinity"),
        ] {
            out.push(grid_curve(&format!("{rl}/B-T {bl}"), nodes, |n| {
                RunSpec::DebitCredit(DebitCreditRun {
                    nodes: n,
                    routing,
                    update: UpdateStrategy::Force,
                    buffer: 1_000,
                    bt,
                    ..DebitCreditRun::baseline(n, run)
                })
            }));
        }
    }
    out
}

/// Fig. 4.4: disk caches for the BRANCH/TELLER partition (FORCE,
/// buffer 1000): disk vs. volatile cache vs. non-volatile cache vs. GEM.
pub fn fig44(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig44_grid(nodes, run))
}

/// Fig. 4.5 as a grid of pending runs: PCL vs. GEM locking across
/// buffer sizes, update strategies, and routings.
pub fn fig45_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for (coupling, cl) in [
        (CouplingMode::GemLocking, "GEM"),
        (CouplingMode::Pcl, "PCL"),
    ] {
        for buffer in [200u64, 1_000] {
            for (update, ul) in [
                (UpdateStrategy::Force, "FORCE"),
                (UpdateStrategy::NoForce, "NOFORCE"),
            ] {
                for (routing, rl) in [
                    (RoutingStrategy::Random, "random"),
                    (RoutingStrategy::Affinity, "affinity"),
                ] {
                    out.push(grid_curve(
                        &format!("{cl}/{rl}/{ul}/buffer {buffer}"),
                        nodes,
                        |n| {
                            RunSpec::DebitCredit(DebitCreditRun {
                                nodes: n,
                                coupling,
                                routing,
                                update,
                                buffer,
                                ..DebitCreditRun::baseline(n, run)
                            })
                        },
                    ));
                }
            }
        }
    }
    out
}

/// Fig. 4.5: PCL vs. GEM locking across buffer sizes, update
/// strategies, and routings (all files on plain disks).
pub fn fig45(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig45_grid(nodes, run))
}

/// Fig. 4.6 as a grid of pending runs: throughput per node at 80% CPU
/// utilization for PCL and GEM locking × routing × update strategy
/// (buffer 1000).
pub fn fig46_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for (coupling, cl) in [
        (CouplingMode::GemLocking, "GEM"),
        (CouplingMode::Pcl, "PCL"),
    ] {
        for (routing, rl) in [
            (RoutingStrategy::Random, "random"),
            (RoutingStrategy::Affinity, "affinity"),
        ] {
            for (update, ul) in [
                (UpdateStrategy::Force, "FORCE"),
                (UpdateStrategy::NoForce, "NOFORCE"),
            ] {
                out.push(grid_curve(&format!("{cl}/{rl}/{ul}"), nodes, |n| {
                    RunSpec::DebitCredit(DebitCreditRun {
                        nodes: n,
                        coupling,
                        routing,
                        update,
                        buffer: 1_000,
                        ..DebitCreditRun::baseline(n, run)
                    })
                }));
            }
        }
    }
    out
}

/// Fig. 4.6: throughput per node at 80% CPU utilization for PCL and
/// GEM locking × routing × update strategy (buffer 1000). The value is
/// in each report's `tps_per_node_at_80pct_cpu`.
pub fn fig46(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig46_grid(nodes, run))
}

/// Parameters of one trace-driven run (§4.6).
#[derive(Debug, Clone, Copy)]
pub struct TraceRun {
    /// Number of nodes (the paper varies 1–8).
    pub nodes: u16,
    /// Protocol.
    pub coupling: CouplingMode,
    /// Routing strategy.
    pub routing: RoutingStrategy,
    /// PCL read optimization (\[Ra86\]); §4.6 reports local-lock shares
    /// both with and without it.
    pub read_optimization: bool,
    /// Run length.
    pub run: RunLength,
    /// Master seed (also seeds the trace generator).
    pub seed: u64,
}

/// Executes one trace-driven configuration: 50 TPS per node, buffer
/// 1000, NOFORCE, PCL read optimization enabled (§4.6).
pub fn trace_run(p: TraceRun) -> RunReport {
    trace_engine(p).run()
}

/// Builds the configured engine for [`trace_run`] without running it.
fn trace_engine(p: TraceRun) -> Engine {
    let mut cfg = SystemConfig::debit_credit(p.nodes);
    cfg.arrival_tps_per_node = 50.0;
    cfg.coupling = p.coupling;
    cfg.update = UpdateStrategy::NoForce;
    cfg.routing = p.routing;
    cfg.buffer_pages_per_node = 1_000;
    cfg.pcl_read_optimization = p.read_optimization;
    // Long trace transactions (the largest performs >11,000 accesses)
    // need many concurrent slots; the paper chooses the MPL high enough
    // to avoid input queueing (§4.1).
    cfg.mpl_per_node = 256;
    // Trace transactions average ~57 accesses; the paper keeps the CPU
    // and device characteristics of Table 4.1 — the per-access path
    // length is scaled so that GEM-locking CPU utilization lands near
    // the reported ~45% at 50 TPS per node.
    cfg.cpu.per_access_instr = 3_000.0;
    cfg.run.warmup_txns = p.run.warmup;
    cfg.run.measured_txns = p.run.measured;
    cfg.run.seed = p.seed;
    let trace = Trace::synthesize(&TraceGenConfig::default(), p.seed);
    let wl = TraceWorkload::new(trace, p.nodes, p.routing);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid experiment configuration")
}

/// Fig. 4.7 as a grid of pending runs: PCL vs. GEM locking for the
/// real-life (synthetic-trace) workload, both routings.
pub fn fig47_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    for (coupling, cl) in [
        (CouplingMode::GemLocking, "GEM"),
        (CouplingMode::Pcl, "PCL"),
    ] {
        for (routing, rl) in [
            (RoutingStrategy::Random, "random"),
            (RoutingStrategy::Affinity, "affinity"),
        ] {
            out.push(grid_curve(&format!("{cl}/{rl}"), nodes, |n| {
                RunSpec::Trace(TraceRun {
                    nodes: n,
                    coupling,
                    routing,
                    read_optimization: true,
                    run,
                    seed: 0xDB5_4A6E,
                })
            }));
        }
    }
    out
}

/// Fig. 4.7: PCL vs. GEM locking for the real-life (synthetic-trace)
/// workload, random and affinity routing, 1–8 nodes.
pub fn fig47(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(fig47_grid(nodes, run))
}

/// Searches (by bisection over the arrival rate) for the per-node
/// transaction rate at which average CPU utilization reaches `target`
/// (Fig. 4.6 measures 80%). Each probe is a full short simulation, so
/// this is the faithful — if slower — alternative to the single-point
/// extrapolation in [`RunReport::tps_per_node_at_80pct_cpu`]; the two
/// agree within a few percent because per-transaction CPU cost is
/// nearly load-independent (see `tests/harness.rs`).
///
/// # Panics
///
/// Panics if `target` is not within (0, 1).
pub fn find_tps_at_cpu(p: DebitCreditRun, target: f64, probes: u32) -> f64 {
    assert!(target > 0.0 && target < 1.0, "target utilization in (0,1)");
    let util_at = |tps: f64| -> f64 { debit_credit_run_at(p, tps, |_| {}).cpu_utilization };
    // CPU utilization is monotone in the offered rate; bracket and bisect.
    let (mut lo, mut hi) = (10.0f64, 170.0f64);
    for _ in 0..probes {
        let mid = (lo + hi) / 2.0;
        if util_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Summary of replicated runs with independent seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Replication {
    /// Mean of the per-run mean response times (ms).
    pub mean_response_ms: f64,
    /// Half-width of the 95% confidence interval across replications.
    pub response_ci95_ms: f64,
    /// The individual reports.
    pub runs: Vec<RunReport>,
}

/// Runs `p` under each seed and summarizes across replications
/// (independent-replications confidence intervals, the companion to the
/// within-run batch-means interval in [`RunReport`]).
///
/// # Panics
///
/// Panics if fewer than two seeds are supplied.
pub fn replicate(p: DebitCreditRun, seeds: &[u64]) -> Replication {
    assert!(seeds.len() >= 2, "need >= 2 replications for an interval");
    let runs: Vec<RunReport> = seeds
        .iter()
        .map(|&seed| debit_credit_run(DebitCreditRun { seed, ..p }))
        .collect();
    let n = runs.len() as f64;
    let mean = runs.iter().map(|r| r.mean_response_ms).sum::<f64>() / n;
    let var = runs
        .iter()
        .map(|r| (r.mean_response_ms - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0);
    Replication {
        mean_response_ms: mean,
        response_ci95_ms: 1.96 * (var / n).sqrt(),
        runs,
    }
}

/// §5 comparison as a grid of pending runs: GEM locking vs. a central
/// lock engine at several per-operation service times.
pub fn lock_engine_comparison_grid(nodes: &[u16], run: RunLength) -> Vec<CurveGrid> {
    let mut out = Vec::new();
    out.push(grid_curve("GEM locking (2us entries)", nodes, |n| {
        RunSpec::DebitCredit(DebitCreditRun {
            routing: RoutingStrategy::Random,
            ..DebitCreditRun::baseline(n, run)
        })
    }));
    for us in [100.0f64, 300.0, 500.0] {
        out.push(grid_curve(
            &format!("lock engine ({us:.0}us/op)"),
            nodes,
            |n| RunSpec::LockEngine {
                params: DebitCreditRun {
                    coupling: CouplingMode::LockEngine,
                    routing: RoutingStrategy::Random,
                    ..DebitCreditRun::baseline(n, run)
                },
                op_service_us: us,
            },
        ));
    }
    out
}

/// §5 comparison: GEM locking vs. a central lock engine (\[Yu87\]) with
/// 100 µs and 500 µs lock-operation service times. The lock engine
/// saturates within the paper's 1–10-node range; GEM locking does not.
pub fn lock_engine_comparison(nodes: &[u16], run: RunLength) -> Vec<Series> {
    run_grid_serial(lock_engine_comparison_grid(nodes, run))
}

/// Renders Table 4.1 (the parameter settings actually in force).
pub fn table41() -> String {
    let cfg = SystemConfig::debit_credit(1);
    format!(
        "Table 4.1 parameter settings (debit-credit)\n\
         number of nodes N      : 1 - 10\n\
         arrival rate           : {} TPS per node\n\
         DB size (per 100 TPS)  : BRANCH 100 (bf 1, clustered w. TELLER), TELLER 1000 (bf 10),\n\
         \u{20}                        ACCOUNT 10,000,000 (bf 10), HISTORY (bf 20)\n\
         path length            : {} instructions per transaction\n\
         lock mode              : page locks for BRANCH/TELLER, ACCOUNT; no locks for HISTORY\n\
         CPU capacity           : {} processors x {} MIPS per node\n\
         DB buffer size         : 200 (1000) pages per node\n\
         GEM                    : {} server; {} us/page, {} us/entry\n\
         communication          : {} MB/s; {}/{} instr per send or receive (short/long)\n\
         I/O overhead           : {} instr per page (GEM: {})\n\
         disk access time       : {} ms DB disks, {} ms log disks\n\
         other I/O delays       : controller {} ms, transfer {} ms per page\n",
        cfg.arrival_tps_per_node,
        cfg.cpu.bot_instr + cfg.cpu.eot_instr + 4.0 * cfg.cpu.per_access_instr,
        cfg.cpu.cpus_per_node,
        cfg.cpu.mips_per_cpu,
        cfg.gem.servers,
        cfg.gem.page_access_us,
        cfg.gem.entry_access_us,
        cfg.comm.bandwidth_mb_per_s,
        cfg.comm.short_msg_instr,
        cfg.comm.long_msg_instr,
        cfg.disk.io_instr_per_page,
        cfg.gem.io_init_instr,
        cfg.disk.db_disk_ms,
        cfg.disk.log_disk_ms,
        cfg.disk.controller_ms,
        cfg.disk.transfer_ms,
    )
}
