//! Bottleneck attribution: which resource binds, and where the knee is.
//!
//! The paper's argument (§4) is that each coupling architecture is
//! limited by whichever shared resource saturates first — CPU, GEM
//! servers, the lock engine, the network, a disk group, or the log —
//! and that response time decomposes into the queue waits that
//! resource inflicts. This module turns the numbers a [`RunReport`]
//! already carries into that argument in structured form:
//!
//! * [`attribute`] ranks the per-resource utilizations of one run and
//!   pairs them with the report's response-time decomposition — the
//!   *binding constraint* is simply the most-utilized resource, the
//!   *next constraint* the runner-up (what would bind after fixing the
//!   first).
//! * [`find_knee`] walks a curve along the node axis and reports the
//!   first point whose binding utilization crosses a saturation
//!   threshold, corroborated by the response-time slope (a real knee
//!   at least doubles response time across the crossing interval).
//! * [`explain_figure`] applies both to a whole figure and renders a
//!   deterministic table ([`FigureExplain::render`]) plus a JSON
//!   sidecar ([`sidecar_json`]) for `repro --explain`.
//!
//! Everything here is a pure function of `RunReport` fields that are
//! themselves bit-identical across `--jobs` and `--cores`, so the
//! rendered table and sidecar are byte-identical too (pinned by
//! `sim/tests/explain.rs`). The attribution is deliberately generic —
//! it reads only the per-resource statistics every protocol reports,
//! so it applies unchanged to any coupling mode.

use crate::experiments::Series;
use crate::RunReport;

/// Default saturation threshold for knee detection: a binding
/// utilization at or above 95% marks the knee point.
pub const SATURATION_THRESHOLD: f64 = 0.95;

/// One resource's utilization in a run, named for humans
/// (`"cpu"`, `"gem"`, `"lock-engine"`, `"network"`, `"disk:<group>"`,
/// `"log"`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUtil {
    /// Resource name.
    pub name: String,
    /// Utilization in `[0, 1]` (busy share of the measurement window).
    pub utilization: f64,
}

/// The response-time decomposition of a run, in milliseconds per
/// committed transaction. The components sum to (approximately) the
/// mean response time; [`WaitBreakdown::share`] converts one to its
/// share of the total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitBreakdown {
    /// Mean response time.
    pub mean_response_ms: f64,
    /// Input-queue (MPL) wait.
    pub input_ms: f64,
    /// Lock wait.
    pub lock_ms: f64,
    /// I/O wait.
    pub io_ms: f64,
    /// CPU queueing wait.
    pub cpu_wait_ms: f64,
    /// CPU service.
    pub cpu_service_ms: f64,
}

impl WaitBreakdown {
    /// `component_ms` as a fraction of the mean response time.
    pub fn share(&self, component_ms: f64) -> f64 {
        component_ms / self.mean_response_ms.max(1e-9)
    }
}

/// The full attribution of one run: every resource's utilization in a
/// fixed order, the index of the binding constraint (argmax; ties go
/// to the earlier resource), the runner-up, and the wait breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Per-resource utilizations: cpu (hottest node), gem,
    /// lock-engine, network, one entry per disk group, log (hottest
    /// log disk) — always in this order, so renderings are stable.
    pub resources: Vec<ResourceUtil>,
    /// Index of the binding constraint in `resources`.
    pub binding: usize,
    /// Index of the next constraint (the runner-up), if a second
    /// resource exists.
    pub next: Option<usize>,
    /// Response-time decomposition of the same run.
    pub waits: WaitBreakdown,
}

impl Attribution {
    /// The binding constraint.
    pub fn binding(&self) -> &ResourceUtil {
        &self.resources[self.binding]
    }

    /// The next constraint (what would bind after fixing the first).
    pub fn next(&self) -> Option<&ResourceUtil> {
        self.next.map(|i| &self.resources[i])
    }
}

/// Attributes one run: ranks its per-resource utilizations and pairs
/// them with its response-time decomposition. Pure — equal reports
/// yield equal attributions.
pub fn attribute(r: &RunReport) -> Attribution {
    let mut resources = vec![
        // The *hottest* node's CPU, not the mean: the first node to
        // saturate gates the system even while the average looks safe.
        ResourceUtil {
            name: "cpu".into(),
            utilization: r.cpu_utilization_max,
        },
        ResourceUtil {
            name: "gem".into(),
            utilization: r.gem_utilization,
        },
        ResourceUtil {
            name: "lock-engine".into(),
            utilization: r.lock_engine_utilization,
        },
        ResourceUtil {
            name: "network".into(),
            utilization: r.network_utilization,
        },
    ];
    for (name, util) in &r.disk_utilizations {
        resources.push(ResourceUtil {
            name: format!("disk:{name}"),
            utilization: *util,
        });
    }
    resources.push(ResourceUtil {
        name: "log".into(),
        utilization: r.log_utilization_max,
    });

    let argmax = |skip: Option<usize>| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, res) in resources.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            match best {
                Some(b) if resources[b].utilization >= res.utilization => {}
                _ => best = Some(i),
            }
        }
        best
    };
    let binding = argmax(None).expect("resource list is never empty");
    let next = argmax(Some(binding));

    Attribution {
        resources,
        binding,
        next,
        waits: WaitBreakdown {
            mean_response_ms: r.mean_response_ms,
            input_ms: r.input_wait_ms,
            lock_ms: r.lock_wait_ms,
            io_ms: r.io_wait_ms,
            cpu_wait_ms: r.cpu_wait_ms,
            cpu_service_ms: r.cpu_service_ms,
        },
    }
}

/// A detected knee on one curve's node axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Knee {
    /// The last probed node count whose binding utilization stayed
    /// below the threshold; `None` when the very first point was
    /// already saturated.
    pub below: Option<u16>,
    /// The first node count at or above the threshold.
    pub at: u16,
    /// The resource that binds at the knee.
    pub resource: String,
    /// Its utilization at the knee point.
    pub utilization: f64,
    /// `resp(at) / resp(below)` — the response-time slope across the
    /// crossing interval (1.0 when `below` is `None`).
    pub resp_ratio: f64,
    /// True when the response-time curve corroborates the utilization
    /// crossing (at least a doubling across the interval).
    pub corroborated: bool,
}

/// Scans `points` (ordered by node count) for the first one whose
/// binding utilization reaches `threshold`. Returns `None` when the
/// curve never saturates within the probed axis.
pub fn find_knee(points: &[(u16, &RunReport)], threshold: f64) -> Option<Knee> {
    for (i, (n, r)) in points.iter().enumerate() {
        let a = attribute(r);
        let util = a.binding().utilization;
        if util >= threshold {
            let below = i.checked_sub(1).map(|j| points[j].0);
            let resp_ratio = match i.checked_sub(1) {
                Some(j) => r.mean_response_ms / points[j].1.mean_response_ms.max(1e-9),
                None => 1.0,
            };
            return Some(Knee {
                below,
                at: *n,
                resource: a.binding().name.clone(),
                utilization: util,
                resp_ratio,
                corroborated: below.is_some() && resp_ratio >= 2.0,
            });
        }
    }
    None
}

/// One curve point's attribution within a figure.
#[derive(Debug, Clone)]
pub struct PointExplain {
    /// Curve label.
    pub curve: String,
    /// Node count.
    pub nodes: u16,
    /// The point's attribution.
    pub attribution: Attribution,
}

/// One curve's knee verdict within a figure.
#[derive(Debug, Clone)]
pub struct CurveKnee {
    /// Curve label.
    pub curve: String,
    /// First node count probed.
    pub lo: u16,
    /// Last node count probed.
    pub hi: u16,
    /// The knee, when the curve saturates within `[lo, hi]`.
    pub knee: Option<Knee>,
    /// The curve's peak binding constraint: `(resource, utilization,
    /// nodes)` of the point with the highest binding utilization —
    /// what the "no knee" verdict is measured against.
    pub peak: (String, f64, u16),
}

impl CurveKnee {
    /// The one-line human verdict for this curve, shared by
    /// `--explain` ([`FigureExplain::render`]) and the `--knee`
    /// bisection driver so both speak the same language.
    pub fn verdict(&self) -> String {
        match &self.knee {
            None => format!(
                "{}: no knee in [{}, {}] (peak binding {} {:.1}% at n={})",
                self.curve,
                self.lo,
                self.hi,
                self.peak.0,
                self.peak.1 * 100.0,
                self.peak.2
            ),
            Some(knee) => match knee.below {
                Some(below) => format!(
                    "{}: knee between n={} and n={}: {} reaches {:.1}% (resp x{:.2}{})",
                    self.curve,
                    below,
                    knee.at,
                    knee.resource,
                    knee.utilization * 100.0,
                    knee.resp_ratio,
                    if knee.corroborated {
                        ", corroborated"
                    } else {
                        ", not corroborated"
                    }
                ),
                None => format!(
                    "{}: saturated from the first probe (n={}): {} at {:.1}%",
                    self.curve,
                    knee.at,
                    knee.resource,
                    knee.utilization * 100.0
                ),
            },
        }
    }
}

/// A whole figure, attributed: per-point binding constraints plus
/// per-curve knee verdicts.
#[derive(Debug, Clone)]
pub struct FigureExplain {
    /// Figure key (e.g. `"scale-smoke"`).
    pub figure: String,
    /// Saturation threshold the knee scan used.
    pub threshold: f64,
    /// Every curve point in input order.
    pub points: Vec<PointExplain>,
    /// One verdict per curve, in input order.
    pub knees: Vec<CurveKnee>,
}

/// Attributes every point of `series` and scans each curve for a knee
/// at `threshold`. Curves without points are skipped.
pub fn explain_figure(figure: &str, series: &[Series], threshold: f64) -> FigureExplain {
    let mut points = Vec::new();
    let mut knees = Vec::new();
    for s in series {
        if s.points.is_empty() {
            continue;
        }
        let refs: Vec<(u16, &RunReport)> = s.points.iter().map(|(n, r)| (*n, r)).collect();
        let mut peak: Option<(String, f64, u16)> = None;
        for (n, r) in &refs {
            let attribution = attribute(r);
            let b = attribution.binding();
            if peak.as_ref().is_none_or(|(_, u, _)| b.utilization > *u) {
                peak = Some((b.name.clone(), b.utilization, *n));
            }
            points.push(PointExplain {
                curve: s.label.clone(),
                nodes: *n,
                attribution,
            });
        }
        knees.push(CurveKnee {
            curve: s.label.clone(),
            lo: refs[0].0,
            hi: refs[refs.len() - 1].0,
            knee: find_knee(&refs, threshold),
            peak: peak.expect("curve has at least one point"),
        });
    }
    FigureExplain {
        figure: figure.to_string(),
        threshold,
        points,
        knees,
    }
}

impl FigureExplain {
    /// Renders the figure's attribution as a fixed-width text table
    /// plus one knee line per curve. Deterministic: a pure function of
    /// the underlying reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== explain [{}] (saturation threshold {:.0}%) ===\n",
            self.figure,
            self.threshold * 100.0
        ));
        out.push_str(&format!(
            "{:<26}{:>6}  {:<14}{:>6}  {:<14}{:>6}{:>10}{:>7}{:>7}{:>7}{:>7}{:>7}\n",
            "curve",
            "nodes",
            "binding",
            "util%",
            "next",
            "util%",
            "resp ms",
            "input%",
            "lock%",
            "io%",
            "cpuW%",
            "cpuS%"
        ));
        for p in &self.points {
            let a = &p.attribution;
            let b = a.binding();
            let (next_name, next_util) = match a.next() {
                Some(n) => (n.name.as_str(), n.utilization),
                None => ("-", 0.0),
            };
            let w = &a.waits;
            out.push_str(&format!(
                "{:<26}{:>6}  {:<14}{:>6.1}  {:<14}{:>6.1}{:>10.1}{:>7.1}{:>7.1}{:>7.1}{:>7.1}{:>7.1}\n",
                p.curve,
                p.nodes,
                b.name,
                b.utilization * 100.0,
                next_name,
                next_util * 100.0,
                w.mean_response_ms,
                w.share(w.input_ms) * 100.0,
                w.share(w.lock_ms) * 100.0,
                w.share(w.io_ms) * 100.0,
                w.share(w.cpu_wait_ms) * 100.0,
                w.share(w.cpu_service_ms) * 100.0,
            ));
        }
        for k in &self.knees {
            out.push_str(&k.verdict());
            out.push('\n');
        }
        out
    }
}

/// Renders a set of figure explanations as the `--explain` JSON
/// sidecar (schema `dbshare-explain/1`). Hand-built and dependency
/// free; floats use Rust's shortest-round-trip formatting, so the
/// output is byte-identical whenever the inputs are bit-identical.
pub fn sidecar_json(figures: &[FigureExplain]) -> String {
    let mut out = String::from("{\"schema\":\"dbshare-explain/1\",\"figures\":[");
    for (fi, fig) in figures.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"figure\":{},\"threshold\":{},\"points\":[",
            json_str(&fig.figure),
            json_num(fig.threshold)
        ));
        for (pi, p) in fig.points.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let a = &p.attribution;
            let b = a.binding();
            out.push_str(&format!(
                "{{\"curve\":{},\"nodes\":{},\"binding\":{},\"binding_utilization\":{}",
                json_str(&p.curve),
                p.nodes,
                json_str(&b.name),
                json_num(b.utilization)
            ));
            match a.next() {
                Some(n) => out.push_str(&format!(
                    ",\"next\":{},\"next_utilization\":{}",
                    json_str(&n.name),
                    json_num(n.utilization)
                )),
                None => out.push_str(",\"next\":null,\"next_utilization\":null"),
            }
            let w = &a.waits;
            out.push_str(&format!(
                ",\"mean_response_ms\":{},\"waits_ms\":{{\"input\":{},\"lock\":{},\"io\":{},\"cpu_wait\":{},\"cpu_service\":{}}}",
                json_num(w.mean_response_ms),
                json_num(w.input_ms),
                json_num(w.lock_ms),
                json_num(w.io_ms),
                json_num(w.cpu_wait_ms),
                json_num(w.cpu_service_ms)
            ));
            out.push_str(",\"utilizations\":[");
            for (ri, res) in a.resources.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "[{},{}]",
                    json_str(&res.name),
                    json_num(res.utilization)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"knees\":[");
        for (ki, k) in fig.knees.iter().enumerate() {
            if ki > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"curve\":{},\"lo\":{},\"hi\":{},\"peak\":{{\"resource\":{},\"utilization\":{},\"nodes\":{}}},\"knee\":",
                json_str(&k.curve),
                k.lo,
                k.hi,
                json_str(&k.peak.0),
                json_num(k.peak.1),
                k.peak.2
            ));
            match &k.knee {
                None => out.push_str("null"),
                Some(knee) => {
                    out.push_str(&format!(
                        "{{\"below\":{},\"at\":{},\"resource\":{},\"utilization\":{},\"resp_ratio\":{},\"corroborated\":{}}}",
                        knee.below.map_or("null".to_string(), |n| n.to_string()),
                        knee.at,
                        json_str(&knee.resource),
                        json_num(knee.utilization),
                        json_num(knee.resp_ratio),
                        knee.corroborated
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// A finite float as a JSON number (`null` otherwise).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cpu_max: f64, net: f64, resp: f64) -> RunReport {
        RunReport {
            cpu_utilization_max: cpu_max,
            network_utilization: net,
            mean_response_ms: resp,
            input_wait_ms: resp * 0.3,
            lock_wait_ms: resp * 0.6,
            io_wait_ms: resp * 0.05,
            cpu_wait_ms: resp * 0.01,
            cpu_service_ms: resp * 0.04,
            disk_utilizations: vec![("ACCOUNT".into(), 0.2)],
            log_utilization_max: 0.1,
            ..RunReport::default()
        }
    }

    #[test]
    fn binding_is_argmax_next_is_runner_up() {
        let a = attribute(&report(0.64, 0.71, 800.0));
        assert_eq!(a.binding().name, "network");
        assert_eq!(a.next().unwrap().name, "cpu");
        // Fixed resource order: cpu, gem, lock-engine, network,
        // disk:<group>..., log.
        let names: Vec<&str> = a.resources.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "cpu",
                "gem",
                "lock-engine",
                "network",
                "disk:ACCOUNT",
                "log"
            ]
        );
    }

    #[test]
    fn ties_go_to_the_earlier_resource() {
        let a = attribute(&report(0.8, 0.8, 100.0));
        assert_eq!(a.binding().name, "cpu");
        assert_eq!(a.next().unwrap().name, "network");
    }

    #[test]
    fn knee_detects_first_threshold_crossing() {
        let r50 = report(0.3, 0.35, 1_000.0);
        let r100 = report(0.5, 0.69, 6_600.0);
        let r200 = report(0.6, 0.999, 88_700.0);
        let points = vec![(50u16, &r50), (100u16, &r100), (200u16, &r200)];
        let knee = find_knee(&points, SATURATION_THRESHOLD).expect("saturates at 200");
        assert_eq!(knee.below, Some(100));
        assert_eq!(knee.at, 200);
        assert_eq!(knee.resource, "network");
        assert!(knee.corroborated, "resp 6.6s -> 88.7s is a real knee");
        // Below-threshold curves have no knee.
        let flat = vec![(50u16, &r50), (100u16, &r100)];
        assert!(find_knee(&flat, SATURATION_THRESHOLD).is_none());
    }

    #[test]
    fn saturated_first_probe_has_no_below_point() {
        let hot = report(0.2, 0.99, 5_000.0);
        let points = vec![(50u16, &hot)];
        let knee = find_knee(&points, SATURATION_THRESHOLD).unwrap();
        assert_eq!(knee.below, None);
        assert_eq!(knee.resp_ratio, 1.0);
        assert!(!knee.corroborated);
    }

    #[test]
    fn sidecar_is_valid_shape_and_render_is_stable() {
        let series = vec![Series {
            label: "PCL/NOFORCE".into(),
            points: vec![(16, report(0.64, 0.71, 800.0))],
        }];
        let fig = explain_figure("scale-smoke", &series, SATURATION_THRESHOLD);
        let text = fig.render();
        assert!(text.contains("binding"));
        assert!(text.contains("network"));
        assert!(text.contains("no knee in [16, 16]"));
        let json = sidecar_json(std::slice::from_ref(&fig));
        assert_eq!(json, sidecar_json(&[fig]));
        assert!(json.starts_with("{\"schema\":\"dbshare-explain/1\""));
        assert!(json.contains("\"binding\":\"network\""));
        assert!(json.contains("\"knee\":null"));
    }
}
