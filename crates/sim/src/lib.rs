//! # dbshare-sim — the database sharing simulator (§3, §4)
//!
//! Ties the component crates together into the complete simulation
//! system of the paper: SOURCE (workload generation and allocation),
//! processing nodes (transaction manager, buffer manager, concurrency
//! control, communication subsystem, CPU servers), and external devices
//! (disks, disk caches, GEM, network).
//!
//! * [`Engine`] — the discrete-event engine; build with a
//!   [`SystemConfig`](dbshare_model::SystemConfig) and a workload, run,
//!   and get a [`RunReport`].
//! * [`experiments`] — presets that regenerate every figure of the
//!   paper's §4 (Fig. 4.1 through Fig. 4.7).
//!
//! ```rust
//! use dbshare_model::SystemConfig;
//! use dbshare_sim::Engine;
//! use dbshare_workload::{DebitCredit, DebitCreditWorkload};
//! use dbshare_model::RoutingStrategy;
//!
//! let mut cfg = SystemConfig::debit_credit(1);
//! cfg.run.warmup_txns = 50;
//! cfg.run.measured_txns = 200;
//! let dc = DebitCredit::new(1, 100.0);
//! let wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity);
//! let report = Engine::new(cfg, Box::new(wl)).unwrap().run();
//! assert_eq!(report.measured_txns, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod metrics;

pub mod experiments;
pub mod explain;
pub mod observe;
pub mod progress;

pub use engine::Engine;
pub use metrics::{RunProfile, RunReport};
pub use observe::{Observations, Observe, TimelineWindow};
pub use progress::{ProgressGauge, ProgressSnapshot};
