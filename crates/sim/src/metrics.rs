//! Measurement collection and the end-of-run report.

use desim::stats::{BatchMeans, DurationHistogram, RunningStat};
use desim::{SimDuration, SimTime};
use std::fmt;

/// Observations per batch for the batch-means confidence interval.
const BATCH: u64 = 200;

/// Accumulators filled during the measurement window.
#[derive(Debug)]
pub(crate) struct Metrics {
    /// Response times (arrival → commit) in milliseconds.
    pub resp: RunningStat,
    /// Batch means over response times (95% confidence half-width).
    pub resp_batches: BatchMeans,
    /// Response-time histogram for percentiles.
    pub resp_hist: DurationHistogram,
    /// Input-queue (MPL) waiting time.
    pub input_wait: RunningStat,
    /// Per-transaction lock waiting time.
    pub lock_wait: RunningStat,
    /// Per-transaction I/O waiting time (storage reads, page transfers,
    /// commit writes).
    pub io_wait: RunningStat,
    /// Per-transaction CPU queueing time.
    pub cpu_wait: RunningStat,
    /// Per-transaction CPU service time (incl. synchronous GEM holds).
    pub cpu_service: RunningStat,
    /// Delay from page request send to page installation (§4.2 footnote:
    /// ≈6.5 ms vs >16.4 ms for a disk access).
    pub page_req_delay: RunningStat,
    /// Per-transaction response time divided by its reference count
    /// (used for the §4.6 "artificial average transaction" metric).
    pub resp_per_ref: RunningStat,
    /// Total page references of measured transactions.
    pub refs_completed: u64,
    /// Commits per timeline bucket over the measurement window.
    pub timeline: Vec<u64>,
    /// Width of one timeline bucket in simulated seconds. Starts at 1
    /// and doubles whenever the timeline would exceed
    /// [`Metrics::MAX_TIMELINE_BUCKETS`], so an hour-of-sim-time run
    /// stores a fixed-size summary instead of one entry per second.
    pub timeline_bucket_secs: u64,
    /// Measurement window start.
    pub started: SimTime,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            resp: RunningStat::default(),
            resp_batches: BatchMeans::new(BATCH),
            resp_hist: DurationHistogram::default(),
            input_wait: RunningStat::default(),
            lock_wait: RunningStat::default(),
            io_wait: RunningStat::default(),
            cpu_wait: RunningStat::default(),
            cpu_service: RunningStat::default(),
            page_req_delay: RunningStat::default(),
            resp_per_ref: RunningStat::default(),
            refs_completed: 0,
            timeline: Vec::new(),
            timeline_bucket_secs: 1,
            started: SimTime::ZERO,
        }
    }
}

impl Metrics {
    /// Timeline length ceiling. Runs short enough to fit (every
    /// historical figure, at ~100–200 measured seconds) keep their
    /// exact per-second timeline; longer runs coarsen by doubling the
    /// bucket width, which only ever pair-sums existing counts.
    pub(crate) const MAX_TIMELINE_BUCKETS: usize = 4096;

    /// Buckets a commit at `now` into the timeline.
    pub(crate) fn record_commit_time(&mut self, now: SimTime) {
        let sec = (now - self.started).as_secs_f64() as u64;
        let mut idx = (sec / self.timeline_bucket_secs) as usize;
        while idx >= Self::MAX_TIMELINE_BUCKETS {
            self.coarsen_timeline();
            idx = (sec / self.timeline_bucket_secs) as usize;
        }
        if self.timeline.len() <= idx {
            self.timeline.resize(idx + 1, 0);
        }
        self.timeline[idx] += 1;
    }

    /// Doubles the bucket width by summing adjacent buckets (an odd
    /// tail bucket carries over unchanged).
    fn coarsen_timeline(&mut self) {
        let half = self.timeline.len().div_ceil(2);
        for i in 0..half {
            self.timeline[i] =
                self.timeline[2 * i] + self.timeline.get(2 * i + 1).copied().unwrap_or(0);
        }
        self.timeline.truncate(half);
        self.timeline_bucket_secs *= 2;
    }

    #[allow(clippy::too_many_arguments)] // one bucket per wait class
    pub(crate) fn record_completion(
        &mut self,
        resp: SimDuration,
        refs: usize,
        input_wait: SimDuration,
        lock_wait: SimDuration,
        io_wait: SimDuration,
        cpu_wait: SimDuration,
        cpu_service: SimDuration,
    ) {
        self.resp.record_dur_ms(resp);
        self.resp_batches.record(resp.as_millis_f64());
        self.resp_hist.record(resp);
        self.input_wait.record_dur_ms(input_wait);
        self.lock_wait.record_dur_ms(lock_wait);
        self.io_wait.record_dur_ms(io_wait);
        self.cpu_wait.record_dur_ms(cpu_wait);
        self.cpu_service.record_dur_ms(cpu_service);
        self.resp_per_ref
            .record(resp.as_millis_f64() / refs.max(1) as f64);
        self.refs_completed += refs as u64;
    }
}

/// One measured commit, deferred for the statistics stage of the
/// pipeline engine.
pub(crate) struct CommitSample {
    pub at: SimTime,
    pub resp: SimDuration,
    pub refs: u32,
    pub input: SimDuration,
    pub lock: SimDuration,
    pub io: SimDuration,
    pub cpu_wait: SimDuration,
    pub cpu_service: SimDuration,
}

/// A batch of deferred statistics operations, sharded *by metric
/// class* so the folding stage merges whole deltas instead of matching
/// on a per-sample message enum.
///
/// Why class shards keep f64 results bit-identical: every accumulator
/// a commit touches (`resp*`, the wait classes, `resp_per_ref`,
/// `refs_completed`, the timeline) is disjoint from the one a
/// page-request delay touches (`page_req_delay`), so reordering
/// *across* the two classes cannot change any floating-point fold —
/// while order *within* each class is preserved FIFO by the `Vec`s
/// below. Sharding by node would not have this property: commits from
/// different nodes fold into the same global accumulators, so
/// per-node shards would permute a shared f64 reduction. The rebase
/// (end of warm-up) is a sequence point: the engine seals the current
/// shard before recording it, so a shard's operations are always
/// entirely pre- or post-rebase, applied as rebase → commits → delays.
#[derive(Default)]
pub(crate) struct StatsShard {
    /// Replace the accumulator (measurement-window start), applied
    /// before this shard's samples.
    pub rebase: Option<SimTime>,
    /// Measured commits, in commit order.
    pub commits: Vec<CommitSample>,
    /// Remote-page wait delays (ms), in completion order.
    pub delays: Vec<f64>,
}

impl StatsShard {
    /// Samples carried (the flush threshold counts both classes).
    pub(crate) fn len(&self) -> usize {
        self.commits.len() + self.delays.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.rebase.is_none() && self.commits.is_empty() && self.delays.is_empty()
    }

    /// Folds the shard into `m`, draining it for reuse.
    pub(crate) fn apply(&mut self, m: &mut Metrics) {
        if let Some(started) = self.rebase.take() {
            *m = Metrics {
                started,
                ..Metrics::default()
            };
        }
        for c in self.commits.drain(..) {
            m.record_commit_time(c.at);
            m.record_completion(
                c.resp,
                c.refs as usize,
                c.input,
                c.lock,
                c.io,
                c.cpu_wait,
                c.cpu_service,
            );
        }
        for ms in self.delays.drain(..) {
            m.page_req_delay.record(ms);
        }
    }
}

/// Engine-level event counters (snapshotted at the end of warm-up so
/// reports cover only the measurement window).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct Counters {
    pub committed: u64,
    pub lock_requests: u64,
    pub remote_lock_requests: u64,
    pub ra_local_grants: u64,
    pub lock_waits: u64,
    pub page_requests: u64,
    pub page_transfers: u64,
    pub gem_transfers: u64,
    pub storage_reads: u64,
    pub commit_writes: u64,
    pub log_writes: u64,
    pub evict_writes: u64,
    pub invalidations: u64,
    pub deadlock_aborts: u64,
    pub timeout_aborts: u64,
    pub crash_aborts: u64,
    pub revokes_sent: u64,
}

impl Counters {
    /// Counter delta `self - base` (measurement window totals).
    pub(crate) fn since(&self, base: &Counters) -> Counters {
        Counters {
            committed: self.committed - base.committed,
            lock_requests: self.lock_requests - base.lock_requests,
            remote_lock_requests: self.remote_lock_requests - base.remote_lock_requests,
            ra_local_grants: self.ra_local_grants - base.ra_local_grants,
            lock_waits: self.lock_waits - base.lock_waits,
            page_requests: self.page_requests - base.page_requests,
            page_transfers: self.page_transfers - base.page_transfers,
            gem_transfers: self.gem_transfers - base.gem_transfers,
            storage_reads: self.storage_reads - base.storage_reads,
            commit_writes: self.commit_writes - base.commit_writes,
            log_writes: self.log_writes - base.log_writes,
            evict_writes: self.evict_writes - base.evict_writes,
            invalidations: self.invalidations - base.invalidations,
            deadlock_aborts: self.deadlock_aborts - base.deadlock_aborts,
            timeout_aborts: self.timeout_aborts - base.timeout_aborts,
            crash_aborts: self.crash_aborts - base.crash_aborts,
            revokes_sent: self.revokes_sent - base.revokes_sent,
        }
    }
}

/// Always-on event-loop profile: how many calendar events of each kind
/// the run processed and which subsystems their continuations
/// dispatched into. Counts cover the whole run (including warm-up) and
/// mirror the deterministic event stream, so two runs of the same
/// configuration produce identical profiles; wall-clock-derived rates
/// (events per second) live in the harness artifacts, not here.
#[derive(Default, Clone)]
pub struct RunProfile {
    /// `Arrival` events (open-system source admissions).
    pub arrivals: u64,
    /// `Restart` events (re-admissions after deadlock/crash aborts).
    pub restarts: u64,
    /// `CpuDone` events (CPU bursts finished).
    pub cpu_done: u64,
    /// `GemHeldDone` events (synchronous GEM tails holding the CPU).
    pub gem_held_done: u64,
    /// `IoDone` events (storage, log, and transfer completions).
    pub io_done: u64,
    /// `Delivered` events (network message deliveries).
    pub delivered: u64,
    /// Periodic deadlock/timeout scan ticks.
    pub deadlock_scans: u64,
    /// `NodeCrash` + `NodeRecovered` failure-injection events.
    pub crash_events: u64,
    /// Timeline sampling ticks (zero unless a timeline is requested —
    /// sampling is scheduled only when observation is enabled, so the
    /// disabled event stream is untouched).
    pub timeline_samples: u64,
    /// Continuations dispatched into the transaction lifecycle
    /// (BOT, object access, commit initiation).
    pub cont_lifecycle: u64,
    /// Continuations dispatched into the lock protocols (GEM + PCL).
    pub cont_locking: u64,
    /// Continuations dispatched into messaging (send/receive handlers).
    pub cont_messaging: u64,
    /// Continuations dispatched into storage, buffer, and transfer I/O.
    pub cont_storage: u64,
    /// Host heap allocations performed while executing the run
    /// (`alloc` + `realloc` calls). Filled in by the harness when a
    /// counting global allocator is installed (`repro` binary); zero
    /// otherwise. Deterministic for a given build: the same job
    /// performs the same allocation sequence every time.
    pub host_allocs: u64,
    /// Host heap bytes requested while executing the run. Same caveats
    /// as [`host_allocs`](Self::host_allocs).
    pub host_alloc_bytes: u64,
    /// Pipeline batches handed between stages (`cores > 1` only).
    /// Like the wall clock, the `pipe_*` fields describe how the host
    /// *executed* the run, not what was simulated: they vary with the
    /// `cores` setting, so the manual `Debug`/`PartialEq` impls below
    /// exclude them and cross-`cores` report comparisons stay exact.
    pub pipe_batches: u64,
    /// Items (arrivals, stat samples, trace events) carried by those
    /// batches; `pipe_items / pipe_batches` is the mean occupancy.
    pub pipe_items: u64,
    /// Mutex acquisitions the stages paid to move those items — the
    /// quantity batching exists to minimize (a per-event channel would
    /// pay `pipe_items`).
    pub pipe_locks: u64,
    /// Times a stage blocked on a full pipe before handing off.
    pub pipe_stalls: u64,
}

impl RunProfile {
    /// Accumulates `other` into `self` (used to aggregate the profiles
    /// of many runs into one figure- or suite-level summary).
    pub fn merge(&mut self, other: &RunProfile) {
        self.arrivals += other.arrivals;
        self.restarts += other.restarts;
        self.cpu_done += other.cpu_done;
        self.gem_held_done += other.gem_held_done;
        self.io_done += other.io_done;
        self.delivered += other.delivered;
        self.deadlock_scans += other.deadlock_scans;
        self.crash_events += other.crash_events;
        self.timeline_samples += other.timeline_samples;
        self.cont_lifecycle += other.cont_lifecycle;
        self.cont_locking += other.cont_locking;
        self.cont_messaging += other.cont_messaging;
        self.cont_storage += other.cont_storage;
        self.host_allocs += other.host_allocs;
        self.host_alloc_bytes += other.host_alloc_bytes;
        self.pipe_batches += other.pipe_batches;
        self.pipe_items += other.pipe_items;
        self.pipe_locks += other.pipe_locks;
        self.pipe_stalls += other.pipe_stalls;
    }

    /// Mean items per pipeline batch (0.0 in serial runs).
    pub fn pipe_occupancy(&self) -> f64 {
        if self.pipe_batches == 0 {
            0.0
        } else {
            self.pipe_items as f64 / self.pipe_batches as f64
        }
    }

    /// Host heap allocations per processed calendar event — the
    /// steady-state allocator pressure this profile saw. Zero when no
    /// counting allocator was installed.
    pub fn allocs_per_event(&self) -> f64 {
        let events = self.events_total();
        if events == 0 {
            0.0
        } else {
            self.host_allocs as f64 / events as f64
        }
    }

    /// Total calendar events processed (sum of the per-type counts).
    pub fn events_total(&self) -> u64 {
        self.arrivals
            + self.restarts
            + self.cpu_done
            + self.gem_held_done
            + self.io_done
            + self.delivered
            + self.deadlock_scans
            + self.crash_events
            + self.timeline_samples
    }
}

/// Hand-written to exclude the `pipe_*` host-execution counters: the
/// cross-`cores` invariance suites compare `Debug` renderings of whole
/// reports, and batching behavior — like wall time — legitimately
/// differs between a serial and a staged execution of the same run.
impl fmt::Debug for RunProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunProfile")
            .field("arrivals", &self.arrivals)
            .field("restarts", &self.restarts)
            .field("cpu_done", &self.cpu_done)
            .field("gem_held_done", &self.gem_held_done)
            .field("io_done", &self.io_done)
            .field("delivered", &self.delivered)
            .field("deadlock_scans", &self.deadlock_scans)
            .field("crash_events", &self.crash_events)
            .field("timeline_samples", &self.timeline_samples)
            .field("cont_lifecycle", &self.cont_lifecycle)
            .field("cont_locking", &self.cont_locking)
            .field("cont_messaging", &self.cont_messaging)
            .field("cont_storage", &self.cont_storage)
            .field("host_allocs", &self.host_allocs)
            .field("host_alloc_bytes", &self.host_alloc_bytes)
            .finish()
    }
}

/// Same exclusion rationale as the `Debug` impl above.
impl PartialEq for RunProfile {
    fn eq(&self, other: &Self) -> bool {
        self.arrivals == other.arrivals
            && self.restarts == other.restarts
            && self.cpu_done == other.cpu_done
            && self.gem_held_done == other.gem_held_done
            && self.io_done == other.io_done
            && self.delivered == other.delivered
            && self.deadlock_scans == other.deadlock_scans
            && self.crash_events == other.crash_events
            && self.timeline_samples == other.timeline_samples
            && self.cont_lifecycle == other.cont_lifecycle
            && self.cont_locking == other.cont_locking
            && self.cont_messaging == other.cont_messaging
            && self.cont_storage == other.cont_storage
            && self.host_allocs == other.host_allocs
            && self.host_alloc_bytes == other.host_alloc_bytes
    }
}

impl Eq for RunProfile {}

impl fmt::Display for RunProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  events: {} (arrival {} restart {} cpu {} gem-held {} io {} msg {} scan {} crash {} sample {})",
            self.events_total(),
            self.arrivals,
            self.restarts,
            self.cpu_done,
            self.gem_held_done,
            self.io_done,
            self.delivered,
            self.deadlock_scans,
            self.crash_events,
            self.timeline_samples,
        )?;
        write!(
            f,
            "  conts: lifecycle {} locking {} messaging {} storage {}",
            self.cont_lifecycle, self.cont_locking, self.cont_messaging, self.cont_storage,
        )?;
        if self.pipe_batches > 0 {
            write!(
                f,
                "\n  pipe: batches {} items {} occupancy {:.1} locks {} stalls {}",
                self.pipe_batches,
                self.pipe_items,
                self.pipe_occupancy(),
                self.pipe_locks,
                self.pipe_stalls,
            )?;
        }
        Ok(())
    }
}

/// Everything a simulation run reports. Field units are embedded in the
/// names; "per_txn" denominators are measured commits.
/// (`Default` exists for tests that synthesize partial reports, e.g.
/// the attribution unit tests in [`crate::explain`].)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Number of processing nodes.
    pub nodes: u16,
    /// Committed transactions in the measurement window.
    pub measured_txns: u64,
    /// True if the run hit `RunControl::max_sim_secs` before reaching
    /// its measured-transaction target (overload).
    pub truncated: bool,
    /// Length of the measurement window in simulated seconds.
    pub sim_seconds: f64,
    /// Measured throughput in transactions per second (system-wide).
    pub throughput_tps: f64,
    /// Commits per timeline bucket over the measurement window (the
    /// last, possibly partial, bucket is included) — visualizes
    /// transients such as an injected node crash.
    pub throughput_timeline: Vec<u64>,
    /// Simulated seconds per `throughput_timeline` bucket: 1 for every
    /// run short enough to keep a per-second timeline, doubling on
    /// long scale runs so the vector stays a fixed-size summary.
    pub timeline_bucket_secs: u64,
    /// Mean transaction response time in milliseconds.
    pub mean_response_ms: f64,
    /// Half-width of the 95% confidence interval on the mean response
    /// time (batch means over batches of 200 transactions; `None` with
    /// fewer than two complete batches).
    pub response_ci95_ms: Option<f64>,
    /// Median response time.
    pub p50_response_ms: f64,
    /// 95th-percentile response time.
    pub p95_response_ms: f64,
    /// Response time normalized to a transaction of the workload's
    /// average size (the §4.6 reporting convention; equals
    /// `mean_response_ms` for fixed-size workloads).
    pub norm_response_ms: f64,
    /// Mean input-queue wait (should be ≈0 with the paper's MPL).
    pub input_wait_ms: f64,
    /// Mean per-transaction lock wait.
    pub lock_wait_ms: f64,
    /// Mean per-transaction I/O wait (reads, page transfers, commit
    /// writes) — the response-time composition the paper reports.
    pub io_wait_ms: f64,
    /// Mean per-transaction CPU queueing time.
    pub cpu_wait_ms: f64,
    /// Mean per-transaction CPU service time.
    pub cpu_service_ms: f64,
    /// Average CPU utilization across nodes.
    pub cpu_utilization: f64,
    /// Highest per-node CPU utilization (imbalance indicator, §4.6).
    pub cpu_utilization_max: f64,
    /// CPU utilization of each node (§4.6 reports "some nodes utilized
    /// by more than 85%").
    pub cpu_utilization_per_node: Vec<f64>,
    /// GEM server utilization.
    pub gem_utilization: f64,
    /// Central lock-engine utilization (0 unless
    /// `CouplingMode::LockEngine` — the \[Yu87\] comparison of §5).
    pub lock_engine_utilization: f64,
    /// Network utilization.
    pub network_utilization: f64,
    /// Messages per transaction (all kinds).
    pub messages_per_txn: f64,
    /// GEM entry operations per transaction.
    pub gem_entries_per_txn: f64,
    /// Page requests per transaction (NOFORCE misses served by owners).
    pub page_requests_per_txn: f64,
    /// Pages transferred between nodes per transaction (page-request
    /// replies under GEM locking; grant piggybacks under PCL).
    pub page_transfers_per_txn: f64,
    /// Read-authorization revocations sent per transaction (PCL read
    /// optimization).
    pub revokes_per_txn: f64,
    /// Mean delay of a page request until the page was installed.
    pub page_req_delay_ms: f64,
    /// Lock requests per transaction.
    pub lock_requests_per_txn: f64,
    /// Fraction of lock requests processed without messages (PCL; GEM
    /// locking reports `None` — every request goes to GEM, none need
    /// messages).
    pub local_lock_fraction: Option<f64>,
    /// Lock requests that had to wait, per transaction.
    pub lock_waits_per_txn: f64,
    /// Buffer invalidations detected per transaction.
    pub invalidations_per_txn: f64,
    /// Storage page reads per transaction.
    pub reads_per_txn: f64,
    /// Commit-time page/log writes per transaction.
    pub writes_per_txn: f64,
    /// Replacement-driven write-backs per transaction.
    pub evict_writes_per_txn: f64,
    /// Per-partition buffer hit ratios `(name, ratio)` aggregated over
    /// all nodes.
    pub hit_ratios: Vec<(String, f64)>,
    /// Per-partition disk-array utilization `(name, utilization)`.
    pub disk_utilizations: Vec<(String, f64)>,
    /// Per-node log-disk utilization (max across nodes).
    pub log_utilization_max: f64,
    /// Transactions aborted by deadlock detection.
    pub deadlock_aborts: u64,
    /// Transactions aborted by lock timeout (safety net; expected 0).
    pub timeout_aborts: u64,
    /// Transactions killed by an injected node crash (their restarts
    /// run on surviving nodes).
    pub crash_aborts: u64,
    /// Records in the merged global log (update commits over the whole
    /// run incl. warm-up; the merge is validated every run, §2/\[Ra91a\]).
    pub global_log_records: u64,
    /// Calendar events processed over the whole run (simulator-
    /// performance figure; pairs with the criterion benches).
    pub events_processed: u64,
    /// Per-event-type and per-subsystem event-loop counters (always
    /// collected; surfaced by `repro --profile`).
    pub profile: RunProfile,
    /// Throughput per node that would drive average CPU utilization to
    /// 80% (the Fig. 4.6 metric), extrapolated from the measured
    /// utilization-per-TPS ratio.
    pub tps_per_node_at_80pct_cpu: f64,
}

impl RunReport {
    /// Hit ratio of the named partition, if present.
    pub fn hit_ratio(&self, partition: &str) -> Option<f64> {
        self.hit_ratios
            .iter()
            .find(|(n, _)| n == partition)
            .map(|&(_, r)| r)
    }

    /// A 64-bit FNV-1a fingerprint over the exact bits of the report's
    /// headline metrics (the same field set the golden-numbers tests
    /// pin), as 16 hex digits. The simulator is deterministic, so two
    /// runs of one configuration share a fingerprint iff they produced
    /// bit-identical results — the experiment store records it per job
    /// and the regression gate fails on any change for an unchanged
    /// config fingerprint.
    pub fn metric_fingerprint(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.measured_txns);
        eat(self.mean_response_ms.to_bits());
        eat(self.p95_response_ms.to_bits());
        eat(self.norm_response_ms.to_bits());
        eat(self.throughput_tps.to_bits());
        eat(self.lock_wait_ms.to_bits());
        eat(self.io_wait_ms.to_bits());
        eat(self.cpu_wait_ms.to_bits());
        eat(self.cpu_service_ms.to_bits());
        eat(self.cpu_utilization.to_bits());
        eat(self.messages_per_txn.to_bits());
        eat(self.lock_requests_per_txn.to_bits());
        eat(self.reads_per_txn.to_bits());
        eat(self.writes_per_txn.to_bits());
        eat(self.deadlock_aborts);
        eat(self.timeout_aborts);
        eat(self.events_processed);
        format!("{hash:016x}")
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "N={:<2} txns={:<6} tps={:<7.1} resp={:.1}ms (p50 {:.1}, p95 {:.1}, norm {:.1})",
            self.nodes,
            self.measured_txns,
            self.throughput_tps,
            self.mean_response_ms,
            self.p50_response_ms,
            self.p95_response_ms,
            self.norm_response_ms,
        )?;
        writeln!(
            f,
            "  cpu={:.1}% (max {:.1}%) gem={:.2}% net={:.1}% | waits: input {:.2}ms lock {:.2}ms cpu {:.2}ms svc {:.2}ms",
            self.cpu_utilization * 100.0,
            self.cpu_utilization_max * 100.0,
            self.gem_utilization * 100.0,
            self.network_utilization * 100.0,
            self.input_wait_ms,
            self.lock_wait_ms,
            self.cpu_wait_ms,
            self.cpu_service_ms,
        )?;
        writeln!(f, "  io wait: {:.2}ms/txn", self.io_wait_ms)?;
        writeln!(
            f,
            "  per txn: locks {:.2} (local {}) msgs {:.2} pagereq {:.2} ({:.1}ms) reads {:.2} writes {:.2} evict {:.2} inval {:.3}",
            self.lock_requests_per_txn,
            match self.local_lock_fraction {
                Some(l) => format!("{:.0}%", l * 100.0),
                None => "n/a".into(),
            },
            self.messages_per_txn,
            self.page_requests_per_txn,
            self.page_req_delay_ms,
            self.reads_per_txn,
            self.writes_per_txn,
            self.evict_writes_per_txn,
            self.invalidations_per_txn,
        )?;
        write!(f, "  hits:")?;
        for (name, r) in &self.hit_ratios {
            write!(f, " {name}={:.0}%", r * 100.0)?;
        }
        write!(f, "\n  disk util:")?;
        for (name, u) in &self.disk_utilizations {
            write!(f, " {name}={:.0}%", u * 100.0)?;
        }
        write!(f, " log(max)={:.0}%", self.log_utilization_max * 100.0)?;
        if self.deadlock_aborts + self.timeout_aborts > 0 {
            write!(
                f,
                " | aborts: {} deadlock, {} timeout",
                self.deadlock_aborts, self.timeout_aborts
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            nodes: 2,
            measured_txns: 100,
            truncated: false,
            sim_seconds: 1.0,
            throughput_tps: 100.0,
            throughput_timeline: vec![100, 100],
            timeline_bucket_secs: 1,
            mean_response_ms: 42.0,
            response_ci95_ms: Some(1.0),
            p50_response_ms: 40.0,
            p95_response_ms: 80.0,
            norm_response_ms: 42.0,
            input_wait_ms: 0.0,
            lock_wait_ms: 1.0,
            io_wait_ms: 20.0,
            cpu_wait_ms: 5.0,
            cpu_service_ms: 25.0,
            cpu_utilization: 0.625,
            cpu_utilization_max: 0.64,
            cpu_utilization_per_node: vec![0.61, 0.64],
            gem_utilization: 0.004,
            lock_engine_utilization: 0.0,
            network_utilization: 0.01,
            messages_per_txn: 2.0,
            gem_entries_per_txn: 12.0,
            page_requests_per_txn: 0.5,
            page_transfers_per_txn: 0.5,
            revokes_per_txn: 0.0,
            page_req_delay_ms: 6.5,
            lock_requests_per_txn: 2.0,
            local_lock_fraction: Some(0.5),
            lock_waits_per_txn: 0.01,
            invalidations_per_txn: 0.2,
            reads_per_txn: 1.3,
            writes_per_txn: 1.0,
            evict_writes_per_txn: 1.0,
            hit_ratios: vec![("BRANCH/TELLER".into(), 0.71)],
            disk_utilizations: vec![("BRANCH/TELLER".into(), 0.4)],
            log_utilization_max: 0.3,
            deadlock_aborts: 0,
            timeout_aborts: 0,
            crash_aborts: 0,
            global_log_records: 100,
            events_processed: 5_000,
            profile: RunProfile::default(),
            tps_per_node_at_80pct_cpu: 128.0,
        }
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("tps=100.0"), "{s}");
        assert!(s.contains("resp=42.0ms"), "{s}");
        assert!(s.contains("local 50%"), "{s}");
        assert!(s.contains("BRANCH/TELLER=71%"), "{s}");
        assert!(!s.contains("aborts"), "{s}");
    }

    #[test]
    fn display_shows_aborts_when_present() {
        let mut r = report();
        r.deadlock_aborts = 3;
        assert!(r.to_string().contains("3 deadlock"));
    }

    #[test]
    fn metric_fingerprint_is_stable_and_sensitive() {
        let r = report();
        assert_eq!(r.metric_fingerprint(), r.metric_fingerprint());
        assert_eq!(r.metric_fingerprint().len(), 16);
        // Any pinned metric flips the fingerprint — even by one ULP.
        let mut ulp = report();
        ulp.mean_response_ms = f64::from_bits(ulp.mean_response_ms.to_bits() + 1);
        assert_ne!(r.metric_fingerprint(), ulp.metric_fingerprint());
        let mut counter = report();
        counter.events_processed += 1;
        assert_ne!(r.metric_fingerprint(), counter.metric_fingerprint());
        // Unpinned presentation fields (e.g. per-node breakdowns) do
        // not: the fingerprint tracks the golden-test field set.
        let mut cosmetic = report();
        cosmetic.cpu_utilization_per_node = vec![0.0];
        assert_eq!(r.metric_fingerprint(), cosmetic.metric_fingerprint());
    }

    #[test]
    fn short_timelines_keep_per_second_buckets() {
        let mut m = Metrics::default();
        for sec in 0..300u64 {
            m.record_commit_time(SimTime::from_secs(sec));
            m.record_commit_time(SimTime::from_secs(sec));
        }
        assert_eq!(m.timeline_bucket_secs, 1);
        assert_eq!(m.timeline.len(), 300);
        assert!(m.timeline.iter().all(|&c| c == 2));
    }

    #[test]
    fn long_timelines_coarsen_without_losing_commits() {
        let mut m = Metrics::default();
        // An hour-scale window: 3x the bucket ceiling in sim-seconds.
        let secs = Metrics::MAX_TIMELINE_BUCKETS as u64 * 3;
        for sec in 0..secs {
            m.record_commit_time(SimTime::from_secs(sec));
        }
        assert!(m.timeline.len() <= Metrics::MAX_TIMELINE_BUCKETS);
        assert_eq!(m.timeline_bucket_secs, 4, "two doublings for 3x span");
        // Coarsening pair-sums; every commit is still accounted for.
        assert_eq!(m.timeline.iter().sum::<u64>(), secs);
        // All full buckets hold exactly bucket_secs commits.
        let full = secs / m.timeline_bucket_secs;
        assert!(m.timeline[..full as usize]
            .iter()
            .all(|&c| c == m.timeline_bucket_secs));
    }

    #[test]
    fn metric_counters_stay_exact_past_u32_range() {
        // A billion-event scale run pushes several formerly-u32 counts
        // past 2^32; the report math and fingerprint must stay exact
        // (no silent truncation) across that boundary.
        let huge = u64::from(u32::MAX) + 5;
        let mut m = Metrics {
            refs_completed: huge,
            ..Metrics::default()
        };
        m.refs_completed += 7; // accumulation continues, no wrap
        assert_eq!(m.refs_completed, huge + 7);

        let mut a = report();
        a.measured_txns = huge;
        a.events_processed = huge * 30;
        let mut b = a.clone();
        b.events_processed += 1;
        // One event past the u32 boundary still flips the fingerprint:
        // the hash eats full 64-bit values, not truncated ones.
        assert_ne!(a.metric_fingerprint(), b.metric_fingerprint());
        let mut wrapped = a.clone();
        wrapped.measured_txns = huge - u64::from(u32::MAX) - 1; // what a u32 cast would leave
        assert_ne!(a.metric_fingerprint(), wrapped.metric_fingerprint());
    }

    #[test]
    fn hit_ratio_lookup() {
        let r = report();
        assert_eq!(r.hit_ratio("BRANCH/TELLER"), Some(0.71));
        assert_eq!(r.hit_ratio("ACCOUNT"), None);
    }

    #[test]
    fn counters_since_subtracts() {
        let a = Counters {
            committed: 10,
            page_requests: 4,
            ..Counters::default()
        };
        let mut b = a.clone();
        b.committed = 25;
        b.page_requests = 9;
        let d = b.since(&a);
        assert_eq!(d.committed, 15);
        assert_eq!(d.page_requests, 5);
    }
}
