//! Run observation: tracing and timeline-sampling configuration plus
//! the data the engine hands back when observation is enabled.
//!
//! Observation is strictly opt-in. A default [`Observe`] leaves the
//! engine on the exact event stream and allocation profile of an
//! unobserved run; enabling it adds trace records and/or periodic
//! `TimelineSample` calendar events, all stamped with *simulated* time
//! so the outputs are bit-reproducible across runs, hosts, and worker
//! counts.

use desim::trace::TraceEvent;
use desim::{SimDuration, SimTime};

/// What to observe during a run. `Default` observes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Observe {
    /// Sample a timeline window every this much simulated time
    /// (`None` = no timeline). Windows are aligned to the measurement
    /// window: the first opens at end of warm-up.
    pub timeline_every: Option<SimDuration>,
    /// Collect structured trace events ([`desim::trace::TraceEvent`]).
    pub trace: bool,
}

impl Observe {
    /// The default timeline window width (500 ms of simulated time).
    pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_millis(500);

    /// Everything on, with the default timeline window.
    pub fn full() -> Self {
        Observe {
            timeline_every: Some(Self::DEFAULT_WINDOW),
            trace: true,
        }
    }

    /// True if any observation is requested.
    pub fn enabled(&self) -> bool {
        self.trace || self.timeline_every.is_some()
    }
}

/// One timeline window: exact event-count deltas over the window plus
/// instantaneous occupancy and windowed utilization at its close.
///
/// Count fields are differences of the engine's `u64` counters, so
/// summing them across all windows of a run reproduces the end-of-run
/// totals exactly (the conservation property the tests pin).
/// Utilizations attribute device busy time to the window a request was
/// *issued* in (service is accrued at offer time), which is exact in
/// total and deterministic per window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimelineWindow {
    /// Window start (simulated time).
    pub start: SimTime,
    /// Window width (the last window of a run may be partial).
    pub width: SimDuration,
    /// Transactions committed in the window.
    pub committed: u64,
    /// Lock requests issued.
    pub lock_requests: u64,
    /// Lock requests that had to wait.
    pub lock_waits: u64,
    /// Storage page reads issued.
    pub storage_reads: u64,
    /// Commit-time force writes issued.
    pub commit_writes: u64,
    /// Commit log writes issued.
    pub log_writes: u64,
    /// Replacement write-backs issued.
    pub evict_writes: u64,
    /// Pages transferred node-to-node (or through GEM).
    pub page_transfers: u64,
    /// Transactions aborted (deadlock + timeout + crash).
    pub aborts: u64,
    /// Buffer hits across all nodes and partitions.
    pub buffer_hits: u64,
    /// Buffer misses across all nodes and partitions.
    pub buffer_misses: u64,
    /// Summed response time of transactions committed in the window
    /// (nanoseconds; divide by `committed` for the window mean).
    pub resp_ns: u64,
    /// Summed input-queue wait of committed transactions (ns).
    pub input_ns: u64,
    /// Summed lock wait of committed transactions (ns).
    pub lock_ns: u64,
    /// Summed I/O wait of committed transactions (ns).
    pub io_ns: u64,
    /// Summed CPU queueing wait of committed transactions (ns).
    pub cpu_wait_ns: u64,
    /// Summed CPU service of committed transactions (ns).
    pub cpu_service_ns: u64,
    /// MPL slots in use across nodes at the window close
    /// (instantaneous). `u64`: a 200-node scale run sums per-node
    /// gauges system-wide, so the window types must not assume the
    /// totals fit a node-sized integer.
    pub mpl_in_use: u64,
    /// Transactions queued for an MPL slot at the window close.
    pub mpl_queue: u64,
    /// Live transactions in a lock wait at the window close.
    pub lock_wait_depth: u64,
    /// Per-node CPU utilization over the window.
    pub cpu_util: Vec<f64>,
    /// GEM server utilization over the window.
    pub gem_util: f64,
    /// Database-disk (and cache-controller) utilization over the window.
    pub disk_util: f64,
    /// Network utilization over the window.
    pub net_util: f64,
    /// Log-disk utilization over the window.
    pub log_util: f64,
}

/// Everything observation collected during one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Observations {
    /// Timeline windows in order (empty unless a timeline was enabled).
    pub timeline: Vec<TimelineWindow>,
    /// Trace events in emission order (empty unless tracing was
    /// enabled).
    pub trace: Vec<TraceEvent>,
}
