//! Live run telemetry: a lock-free gauge the engine publishes into
//! while it runs, for observer threads (the harness progress ticker)
//! to sample.
//!
//! The discipline is the same as the trace layer's: observation must
//! not perturb the simulation. The engine updates the gauge with
//! relaxed atomic stores once every few thousand events behind a
//! single `Option` branch, never reads it back, and never changes an
//! event or a metric because a gauge is attached (`sim/tests/`
//! `explain.rs` pins report equality with and without one). Observer
//! threads only load; they cannot block the engine.

use desim::pipe::{LaneStats, LaneWatch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared progress counters for one running simulation. Create with
/// `Default`, attach with [`Engine::set_progress`], sample from any
/// thread with [`ProgressGauge::snapshot`].
///
/// [`Engine::set_progress`]: crate::Engine::set_progress
#[derive(Default)]
pub struct ProgressGauge {
    /// Calendar events scheduled so far.
    events: AtomicU64,
    /// Simulated time reached, in nanoseconds.
    sim_nanos: AtomicU64,
    /// Transactions committed so far (warm-up included).
    committed: AtomicU64,
    /// Total transactions the run will commit (warm-up + measured).
    target_txns: AtomicU64,
    /// Watches over the pipeline lanes of a `--cores > 1` run, labelled
    /// by stage. Registered once at stage start-up, read per sample.
    lanes: Mutex<Vec<(&'static str, LaneWatch)>>,
}

impl ProgressGauge {
    /// A point-in-time copy of every counter, for one ticker line.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            events: self.events.load(Ordering::Relaxed),
            sim_seconds: self.sim_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            committed: self.committed.load(Ordering::Relaxed),
            target_txns: self.target_txns.load(Ordering::Relaxed),
            lanes: self
                .lanes
                .lock()
                .map(|l| l.iter().map(|(n, w)| (*n, w.stats())).collect())
                .unwrap_or_default(),
        }
    }

    pub(crate) fn publish(&self, events: u64, sim_nanos: u64, committed: u64) {
        self.events.store(events, Ordering::Relaxed);
        self.sim_nanos.store(sim_nanos, Ordering::Relaxed);
        self.committed.store(committed, Ordering::Relaxed);
    }

    pub(crate) fn set_target(&self, txns: u64) {
        self.target_txns.store(txns, Ordering::Relaxed);
    }

    pub(crate) fn add_lane(&self, label: &'static str, watch: LaneWatch) {
        if let Ok(mut lanes) = self.lanes.lock() {
            lanes.push((label, watch));
        }
    }
}

impl std::fmt::Debug for ProgressGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressGauge")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// One sample of a [`ProgressGauge`].
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Calendar events scheduled so far.
    pub events: u64,
    /// Simulated time reached, in seconds.
    pub sim_seconds: f64,
    /// Transactions committed so far (warm-up included).
    pub committed: u64,
    /// Total transactions the run will commit (warm-up + measured).
    pub target_txns: u64,
    /// Labelled pipeline-lane counters (empty for a serial run).
    pub lanes: Vec<(&'static str, LaneStats)>,
}

impl ProgressSnapshot {
    /// Fraction of the run completed, by committed transactions, in
    /// `[0, 1]` (0.0 before the target is known).
    pub fn fraction(&self) -> f64 {
        if self.target_txns == 0 {
            0.0
        } else {
            (self.committed as f64 / self.target_txns as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_publishes() {
        let g = ProgressGauge::default();
        assert_eq!(g.snapshot().fraction(), 0.0);
        g.set_target(200);
        g.publish(5_000, 1_500_000_000, 50);
        let s = g.snapshot();
        assert_eq!(s.events, 5_000);
        assert_eq!(s.sim_seconds, 1.5);
        assert_eq!(s.committed, 50);
        assert_eq!(s.target_txns, 200);
        assert!((s.fraction() - 0.25).abs() < 1e-12);
        assert!(s.lanes.is_empty());
    }

    #[test]
    fn fraction_saturates_at_one() {
        let g = ProgressGauge::default();
        g.set_target(10);
        g.publish(1, 1, 25);
        assert_eq!(g.snapshot().fraction(), 1.0);
    }
}
