//! `--explain` determinism at the library level: attribution, the
//! rendered table, and the JSON sidecar are pure functions of the
//! (bit-identical) reports, so they must be byte-identical across
//! `--cores`; and the progress gauge is observe-only, so publishing
//! through one must not perturb the simulation's results.

use std::sync::Arc;

use dbshare_model::{CouplingMode, RoutingStrategy, UpdateStrategy};
use dbshare_sim::experiments::{DebitCreditRun, RunLength, RunSpec, Series};
use dbshare_sim::explain::{self, SATURATION_THRESHOLD};
use dbshare_sim::{Observe, ProgressGauge};

fn spec(coupling: CouplingMode, nodes: u16) -> RunSpec {
    RunSpec::DebitCredit(DebitCreditRun {
        nodes,
        coupling,
        update: UpdateStrategy::NoForce,
        routing: RoutingStrategy::Random,
        ..DebitCreditRun::baseline(nodes, RunLength::quick())
    })
}

fn figure_at_cores(cores: u32) -> explain::FigureExplain {
    let mut series = Vec::new();
    for (label, coupling) in [
        ("GEM/NOFORCE", CouplingMode::GemLocking),
        ("PCL/NOFORCE", CouplingMode::Pcl),
    ] {
        let mut points = Vec::new();
        for nodes in [2u16, 4] {
            let (report, _) = spec(coupling, nodes).execute_with(cores, Observe::default());
            points.push((nodes, report));
        }
        series.push(Series {
            label: label.into(),
            points,
        });
    }
    explain::explain_figure("explain-test", &series, SATURATION_THRESHOLD)
}

/// The rendered table and the sidecar must be byte-identical no matter
/// how many engine threads produced the underlying reports.
#[test]
fn explain_render_and_sidecar_are_byte_identical_across_cores() {
    let base = figure_at_cores(1);
    let base_text = base.render();
    let base_json = explain::sidecar_json(std::slice::from_ref(&base));
    for cores in [2u32, 4] {
        let fig = figure_at_cores(cores);
        assert_eq!(
            fig.render(),
            base_text,
            "explain table drifted at cores={cores}"
        );
        assert_eq!(
            explain::sidecar_json(&[fig]),
            base_json,
            "explain sidecar drifted at cores={cores}"
        );
    }
}

/// The progress gauge is a pure observer: wiring one in must leave the
/// report bit-identical, and its final snapshot must agree with the
/// report's event count.
#[test]
fn progress_gauge_does_not_perturb_results() {
    let s = spec(CouplingMode::GemLocking, 2);
    let baseline = s.execute();
    for cores in [1u32, 2] {
        let gauge = Arc::new(ProgressGauge::default());
        let (report, _) =
            s.execute_instrumented(cores, Observe::default(), Some(Arc::clone(&gauge)));
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "gauge perturbed the report at cores={cores}"
        );
        let snap = gauge.snapshot();
        assert_eq!(
            snap.events, report.events_processed,
            "final gauge publish must agree with the report at cores={cores}"
        );
        assert!(snap.fraction() >= 1.0, "run completed, fraction < 1");
    }
}
