//! Golden-numbers regression tests: the optimized engine must produce
//! *bit-identical* metrics to the seed engine for pinned seeds. The
//! constants below were captured from the pre-optimization build; any
//! hot-path change (hashing, slab indexing, calendar layout) that
//! perturbs event order or arithmetic shows up here immediately.

use dbshare_model::{CouplingMode, RoutingStrategy, UpdateStrategy};
use dbshare_sim::experiments::{debit_credit_run, DebitCreditRun, RunLength, RunSpec};

/// One run's fingerprint: every floating-point metric as exact bits,
/// every counter as-is. Formatted as one line per field so failures
/// point at the drifted metric.
fn fingerprint(r: &dbshare_sim::RunReport) -> String {
    fn b(x: f64) -> u64 {
        x.to_bits()
    }
    format!(
        "measured={} resp={:016x} p95={:016x} norm={:016x} tput={:016x} \
         lockw={:016x} iow={:016x} cpuw={:016x} cpusvc={:016x} cpu={:016x} \
         msgs={:016x} locks={:016x} reads={:016x} writes={:016x} \
         deadlocks={} timeouts={} events={}",
        r.measured_txns,
        b(r.mean_response_ms),
        b(r.p95_response_ms),
        b(r.norm_response_ms),
        b(r.throughput_tps),
        b(r.lock_wait_ms),
        b(r.io_wait_ms),
        b(r.cpu_wait_ms),
        b(r.cpu_service_ms),
        b(r.cpu_utilization),
        b(r.messages_per_txn),
        b(r.lock_requests_per_txn),
        b(r.reads_per_txn),
        b(r.writes_per_txn),
        r.deadlock_aborts,
        r.timeout_aborts,
        r.events_processed,
    )
}

fn params(coupling: CouplingMode, update: UpdateStrategy, nodes: u16) -> DebitCreditRun {
    DebitCreditRun {
        nodes,
        coupling,
        update,
        routing: RoutingStrategy::Random,
        ..DebitCreditRun::baseline(nodes, RunLength::quick())
    }
}

fn run(coupling: CouplingMode, update: UpdateStrategy, nodes: u16) -> String {
    fingerprint(&debit_credit_run(params(coupling, update, nodes)))
}

/// The same run on the pipeline engine (`RunControl::cores > 1`).
fn run_at_cores(coupling: CouplingMode, update: UpdateStrategy, nodes: u16, cores: u32) -> String {
    let spec = RunSpec::DebitCredit(params(coupling, update, nodes));
    let (report, _) = spec.execute_with(cores, Default::default());
    fingerprint(&report)
}

#[test]
fn golden_gem_noforce_2_nodes() {
    let got = run(CouplingMode::GemLocking, UpdateStrategy::NoForce, 2);
    assert_eq!(
        got,
        "measured=2500 resp=4051ebc9d0333faf p95=405c4fc1db0142f6 norm=4051ebc9d0333fb1 \
         tput=4068932ef816d64c lockw=3fcf5d165efbb3cf iow=40447c577ff05a93 \
         cpuw=40178c022ca0b4ee cpusvc=403a61959635d421 cpu=3fe58edb60abb0f0 \
         msgs=3fe57a786c22680a locks=400009d495182a99 reads=3ff56d5cfaacd9e8 \
         writes=3ff001a36e2eb1c4 deadlocks=0 timeouts=0 events=71677",
        "GEM/NOFORCE metrics drifted"
    );
}

#[test]
fn golden_pcl_noforce_2_nodes() {
    let got = run(CouplingMode::Pcl, UpdateStrategy::NoForce, 2);
    assert_eq!(
        got,
        "measured=2500 resp=405485c9357c595f p95=406040bfe1975f2d norm=405485c9357c5955 \
         tput=40688b37ce66c28e lockw=401a0d29881ab36d iow=4045ab94a05ed04b \
         cpuw=4021de9927556fc4 cpusvc=403b7adf0ee4617e cpu=3fe73de472f777e7 \
         msgs=400507c84b5dcc64 locks=40000c49ba5e353f reads=3ff7a0f9096bb98c \
         writes=3ff0000000000000 deadlocks=0 timeouts=0 events=69172",
        "PCL/NOFORCE metrics drifted"
    );
}

#[test]
fn golden_pcl_force_3_nodes() {
    let got = run(CouplingMode::Pcl, UpdateStrategy::Force, 3);
    assert_eq!(
        got,
        "measured=2500 resp=406ce56923ff4680 p95=407711947bedb728 norm=406ce56923ff466c \
         tput=40727dc30ad801c9 lockw=403932c17d06929f iow=4065105b31c4241b \
         cpuw=402d56d480755b4c cpusvc=403cabf98c3ab9ba cpu=3fe8534c9616dcf9 \
         msgs=400bdd97f62b6ae8 locks=400017c1bda5119d reads=3ffca2339c0ebee0 \
         writes=400ff141205bc01a deadlocks=0 timeouts=0 events=87540",
        "PCL/FORCE metrics drifted"
    );
}

/// The pipeline engine must hit the very same golden bits at every
/// `cores` value — each stage count (source at 2, +stats at 3, +trace
/// clamp at 4) reproduces the serial event and fold order exactly.
#[test]
fn golden_gem_noforce_holds_on_the_pipeline_engine() {
    let serial = run(CouplingMode::GemLocking, UpdateStrategy::NoForce, 2);
    for cores in [2, 3, 4] {
        let got = run_at_cores(CouplingMode::GemLocking, UpdateStrategy::NoForce, 2, cores);
        assert_eq!(got, serial, "GEM/NOFORCE drifted at cores={cores}");
    }
}

#[test]
fn golden_pcl_force_holds_on_the_pipeline_engine() {
    let serial = run(CouplingMode::Pcl, UpdateStrategy::Force, 3);
    for cores in [2, 3, 4] {
        let got = run_at_cores(CouplingMode::Pcl, UpdateStrategy::Force, 3, cores);
        assert_eq!(got, serial, "PCL/FORCE drifted at cores={cores}");
    }
}
