//! Cross-`cores` invariance at the engine level: the pipeline engine
//! (`RunControl::cores > 1`) must produce reports *and observations*
//! bit-identical to the serial engine, including under the awkward
//! shutdown paths — simulated-time truncation (the producer stage has
//! run ahead of a run that stops early) and crash/recovery schedules.

use dbshare_model::{CouplingMode, CrashConfig, RoutingStrategy, SystemConfig, UpdateStrategy};
use dbshare_sim::experiments::{DebitCreditRun, RunLength, RunSpec};
use dbshare_sim::{Engine, Observe};
use dbshare_workload::{DebitCredit, DebitCreditWorkload, Workload};

fn spec(coupling: CouplingMode, update: UpdateStrategy, nodes: u16) -> RunSpec {
    RunSpec::DebitCredit(DebitCreditRun {
        nodes,
        coupling,
        update,
        routing: RoutingStrategy::Random,
        ..DebitCreditRun::baseline(nodes, RunLength::quick())
    })
}

/// Fully observed runs (trace + timeline) must be equal at every stage
/// count: 2 adds the arrival producer, 3 the statistics sink, 4 the
/// trace sink.
#[test]
fn observed_runs_are_identical_across_cores() {
    for s in [
        spec(CouplingMode::GemLocking, UpdateStrategy::NoForce, 2),
        spec(CouplingMode::Pcl, UpdateStrategy::NoForce, 3),
    ] {
        let (base_report, base_obs) = s.execute_with(1, Observe::full());
        for cores in [2, 3, 4] {
            let (report, obs) = s.execute_with(cores, Observe::full());
            assert_eq!(
                format!("{report:?}"),
                format!("{base_report:?}"),
                "report drifted at cores={cores}"
            );
            assert_eq!(obs, base_obs, "observations drifted at cores={cores}");
        }
    }
}

fn engine(cores: u32, crash: Option<CrashConfig>, max_sim_secs: Option<f64>) -> Engine {
    let tps = 100.0;
    let nodes = 4;
    let mut cfg = SystemConfig::debit_credit(nodes);
    cfg.coupling = CouplingMode::GemLocking;
    cfg.routing = RoutingStrategy::Random;
    cfg.crash = crash;
    cfg.run.warmup_txns = 200;
    cfg.run.measured_txns = 2_000;
    cfg.run.max_sim_secs = max_sim_secs;
    cfg.run.cores = cores;
    let wl = DebitCreditWorkload::new(DebitCredit::new(nodes, tps), tps, RoutingStrategy::Random);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid config")
}

/// A truncated run stops mid-stream with the producer stage holding
/// pre-generated arrivals; teardown must not hang and the report must
/// match the serial engine's.
#[test]
fn truncated_runs_terminate_and_match() {
    let base = engine(1, None, Some(2.0)).run();
    assert!(base.truncated, "run must actually truncate");
    for cores in [2, 4] {
        let got = engine(cores, None, Some(2.0)).run();
        assert_eq!(
            format!("{got:?}"),
            format!("{base:?}"),
            "truncated report drifted at cores={cores}"
        );
    }
}

/// Crash/recovery schedules (aborts, rerouted arrivals, restart RNG
/// draws) stay engine-side; the pipeline must not perturb them.
#[test]
fn crash_runs_match_across_cores() {
    let crash = Some(CrashConfig {
        node: 1,
        at_secs: 3.0,
        recovery_secs: 2.0,
    });
    let base = engine(1, crash, None).run();
    assert!(base.crash_aborts > 0, "crash must bite");
    for cores in [2, 4] {
        let got = engine(cores, crash, None).run();
        assert_eq!(
            format!("{got:?}"),
            format!("{base:?}"),
            "crash report drifted at cores={cores}"
        );
    }
}
