//! The `--scale` family's two load-bearing invariants.
//!
//! 1. `page_metadata_budget` is a *capacity* knob, not a semantic one:
//!    a run with every page-keyed pre-allocation capped (lazy
//!    materialization beyond the budget) must produce a report
//!    bit-identical to the historical dense pre-sizing, at any budget,
//!    over any seed.
//! 2. Scale presets inherit the engine's cross-`cores` bit-identity:
//!    a `ScaleRun` executed on the pipeline engine matches the serial
//!    engine, report and observations both.

use dbshare_model::{CouplingMode, RoutingStrategy, UpdateStrategy};
use dbshare_sim::experiments::{
    debit_credit_run_with, DebitCreditRun, RunLength, RunSpec, ScaleRun,
};
use dbshare_sim::Observe;

const QUICK: RunLength = RunLength {
    warmup: 200,
    measured: 2_000,
};

/// Dense (budget `None`) vs sparse (budget capped far below the hot
/// page count) runs of the same configuration: every metric bit must
/// match. Sweeps both protocols and several seeds — the sparse path
/// must not leak into results through any of them.
#[test]
fn sparse_page_metadata_matches_dense_baseline() {
    for coupling in [CouplingMode::GemLocking, CouplingMode::Pcl] {
        for seed in [0xDB5_4A6E_u64, 1, 0xFFFF_FFFF] {
            let p = DebitCreditRun {
                coupling,
                routing: RoutingStrategy::Random,
                update: UpdateStrategy::NoForce,
                seed,
                ..DebitCreditRun::baseline(3, QUICK)
            };
            let dense = debit_credit_run_with(p, |_| {});
            // Budget 8 is far below hot_pages (2 * buffer 200), so
            // every page-metadata structure takes the lazy path.
            for budget in [8usize, 1] {
                let sparse =
                    debit_credit_run_with(p, |cfg| cfg.page_metadata_budget = Some(budget));
                assert_eq!(
                    format!("{sparse:?}"),
                    format!("{dense:?}"),
                    "budget {budget} drifted from dense (coupling {coupling:?}, seed {seed:#x})"
                );
                assert_eq!(sparse.metric_fingerprint(), dense.metric_fingerprint());
            }
        }
    }
}

/// A miniature `ScaleRun` (the same spec shape `--scale` executes,
/// shrunk to test size) must be bit-identical across engine thread
/// counts — the full sweep's 1-vs-2-core check without the hour of
/// wall-clock.
#[test]
fn scale_runs_are_identical_across_cores() {
    for coupling in [CouplingMode::GemLocking, CouplingMode::Pcl] {
        let spec = RunSpec::Scale(ScaleRun {
            nodes: 4,
            accounts: 4_000,
            coupling,
            tps_per_node: 100.0,
            page_metadata_budget: 64,
            run: QUICK,
            seed: 0xDB5_4A6E,
        });
        let (base_report, base_obs) = spec.execute_with(1, Observe::full());
        assert!(
            base_report.measured_txns > 0,
            "scale spec must actually run"
        );
        for cores in [2, 4] {
            let (report, obs) = spec.execute_with(cores, Observe::full());
            assert_eq!(
                format!("{report:?}"),
                format!("{base_report:?}"),
                "scale report drifted at cores={cores} (coupling {coupling:?})"
            );
            assert_eq!(obs, base_obs, "observations drifted at cores={cores}");
        }
    }
}
