//! The no-progress watchdog: off by default (zero behavior change),
//! and when armed with an aggressive threshold it reports through the
//! trace layer without perturbing the simulation's results.

use dbshare_model::{RoutingStrategy, SystemConfig};
use dbshare_sim::{Engine, Observe};
use dbshare_workload::{DebitCredit, DebitCreditWorkload};
use desim::trace::TraceEventKind;

fn engine(watchdog_secs: Option<f64>) -> Engine {
    let mut cfg = SystemConfig::debit_credit(1);
    cfg.run.warmup_txns = 20;
    cfg.run.measured_txns = 100;
    cfg.run.watchdog_secs = watchdog_secs;
    let dc = DebitCredit::new(1, 100.0);
    let wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity);
    Engine::new(cfg, Box::new(wl)).expect("valid configuration")
}

fn engine_at_cores(watchdog_secs: Option<f64>, cores: u32) -> Engine {
    let mut e = engine(watchdog_secs);
    e.set_cores(cores);
    e
}

#[test]
fn disabled_watchdog_changes_nothing() {
    let a = engine(None).run();
    let b = engine(Some(3600.0)).run(); // armed but never trips
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn aggressive_watchdog_fires_and_traces_without_perturbing_results() {
    let baseline = engine(None).run();
    // A threshold far below the mean inter-commit gap trips on nearly
    // every deadlock-scan tick (its stderr dump is diagnostic output).
    let mut traced = engine(Some(1e-9));
    traced.set_observe(Observe {
        timeline_every: None,
        trace: true,
    });
    let (report, obs) = traced.run_observed();
    let barks = obs
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Watchdog)
        .count();
    assert!(barks > 0, "aggressive watchdog never fired");
    assert!(
        obs.trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::Watchdog)
            .all(|e| e.arg > 0),
        "watchdog events must report the live-transaction count"
    );
    // Reporting is read-only: the simulated results are untouched.
    assert_eq!(report.measured_txns, baseline.measured_txns);
    assert_eq!(
        format!("{} {}", report.mean_response_ms, report.throughput_tps),
        format!("{} {}", baseline.mean_response_ms, baseline.throughput_tps),
    );
}

/// Under the pipeline engine the dump additionally reports lane
/// occupancy and calendar depth (stderr); firing it there must leave
/// the report bit-identical to the serial engine's.
#[test]
fn watchdog_on_pipeline_engine_dumps_without_perturbing_results() {
    let baseline = engine(None).run();
    let mut traced = engine_at_cores(Some(1e-9), 2);
    traced.set_observe(Observe {
        timeline_every: None,
        trace: true,
    });
    let (report, obs) = traced.run_observed();
    let barks = obs
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Watchdog)
        .count();
    assert!(barks > 0, "aggressive watchdog never fired at cores=2");
    assert_eq!(
        format!("{report:?}"),
        format!("{baseline:?}"),
        "watchdog dump at cores=2 perturbed the report"
    );
}
