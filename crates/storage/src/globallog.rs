//! Global log construction (§2 / \[Ra91a\]).
//!
//! Each node of a database sharing system writes its own local log; for
//! media recovery a single *global* log covering the whole shared
//! database is needed. The paper lists "efficiently construct\[ing\] a
//! global log by merging local log data" among GEM's usage forms: with
//! the local logs (or their tails) resident in GEM, any node can merge
//! them at semiconductor speed instead of through disk passes.
//!
//! This module implements the merge itself. Records are ordered by
//! commit timestamp with `(node, LSN)` as the tie-breaker. Under strict
//! two-phase locking this order is serialization-correct: conflicting
//! transactions are serialized by their lock conflicts, and a
//! transaction's commit timestamp precedes that of any transaction that
//! later locked one of its pages.

use dbshare_model::{NodeId, TxnId};
use desim::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One commit record of a local log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Writing node.
    pub node: NodeId,
    /// Node-local log sequence number (dense, starting at 0).
    pub lsn: u64,
    /// Commit timestamp (the simulated instant the record was forced).
    pub commit_ts: SimTime,
    /// Committing transaction.
    pub txn: TxnId,
    /// Pages the transaction modified (redo payload size surrogate).
    pub pages: u32,
}

/// The global merge order: commit timestamp, then node, then LSN.
impl PartialOrd for LogRecord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LogRecord {
    fn cmp(&self, other: &Self) -> Ordering {
        self.commit_ts
            .cmp(&other.commit_ts)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.lsn.cmp(&other.lsn))
    }
}

/// A node's local log: append-only, dense LSNs, monotone timestamps.
///
/// ```rust
/// use dbshare_storage::globallog::LocalLog;
/// use dbshare_model::{NodeId, TxnId};
/// use desim::SimTime;
/// let mut log = LocalLog::new(NodeId::new(0));
/// let lsn = log.append(SimTime::from_millis(5), TxnId::new(1), 3);
/// assert_eq!(lsn, 0);
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalLog {
    node: NodeId,
    records: Vec<LogRecord>,
}

impl LocalLog {
    /// Creates an empty log for `node`.
    pub fn new(node: NodeId) -> Self {
        LocalLog {
            node,
            records: Vec::new(),
        }
    }

    /// Appends a commit record, returning its LSN.
    ///
    /// # Panics
    ///
    /// Panics if `commit_ts` precedes the previous record's timestamp
    /// (a node's commits are totally ordered in time).
    pub fn append(&mut self, commit_ts: SimTime, txn: TxnId, pages: u32) -> u64 {
        if let Some(last) = self.records.last() {
            assert!(
                commit_ts >= last.commit_ts,
                "local log timestamps must be monotone"
            );
        }
        let lsn = self.records.len() as u64;
        self.records.push(LogRecord {
            node: self.node,
            lsn,
            commit_ts,
            txn,
            pages,
        });
        lsn
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in LSN order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }
}

/// K-way merges local logs into the global order (commit timestamp,
/// node, LSN). Runs in `O(n log k)`.
///
/// ```rust
/// use dbshare_storage::globallog::{merge, LocalLog};
/// use dbshare_model::{NodeId, TxnId};
/// use desim::SimTime;
/// let mut a = LocalLog::new(NodeId::new(0));
/// let mut b = LocalLog::new(NodeId::new(1));
/// a.append(SimTime::from_millis(1), TxnId::new(10), 1);
/// b.append(SimTime::from_millis(2), TxnId::new(20), 1);
/// a.append(SimTime::from_millis(3), TxnId::new(11), 1);
/// let global = merge(&[a, b]);
/// let txns: Vec<u64> = global.iter().map(|r| r.txn.raw()).collect();
/// assert_eq!(txns, vec![10, 20, 11]);
/// ```
pub fn merge(locals: &[LocalLog]) -> Vec<LogRecord> {
    #[derive(PartialEq, Eq)]
    struct Head(LogRecord, usize, usize); // record, log index, position
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> Ordering {
            // reversed: BinaryHeap is a max-heap
            other.0.cmp(&self.0)
        }
    }
    let mut heap = BinaryHeap::new();
    for (i, log) in locals.iter().enumerate() {
        if let Some(&first) = log.records().first() {
            heap.push(Head(first, i, 0));
        }
    }
    let total: usize = locals.iter().map(LocalLog::len).sum();
    let mut out = Vec::with_capacity(total);
    while let Some(Head(rec, li, pos)) = heap.pop() {
        out.push(rec);
        if let Some(&next) = locals[li].records().get(pos + 1) {
            heap.push(Head(next, li, pos + 1));
        }
    }
    out
}

/// Validates a global log: totally ordered by the merge key and
/// per-node LSNs dense and increasing. Returns the number of records.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate(global: &[LogRecord]) -> Result<usize, String> {
    for w in global.windows(2) {
        if w[0].cmp(&w[1]) != Ordering::Less {
            return Err(format!("order violation: {:?} !< {:?}", w[0], w[1]));
        }
    }
    let mut next_lsn: std::collections::HashMap<NodeId, u64> = Default::default();
    for r in global {
        let e = next_lsn.entry(r.node).or_insert(0);
        if r.lsn != *e {
            return Err(format!(
                "node {} LSN gap: expected {}, found {}",
                r.node, e, r.lsn
            ));
        }
        *e += 1;
    }
    Ok(global.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Rng;

    fn ts(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn txn(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn local_log_appends_dense_lsns() {
        let mut log = LocalLog::new(NodeId::new(2));
        assert_eq!(log.append(ts(1), txn(1), 2), 0);
        assert_eq!(log.append(ts(1), txn(2), 1), 1); // equal ts allowed
        assert_eq!(log.append(ts(5), txn(3), 4), 2);
        assert_eq!(log.len(), 3);
        assert_eq!(log.node(), NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn local_log_rejects_time_travel() {
        let mut log = LocalLog::new(NodeId::new(0));
        log.append(ts(5), txn(1), 1);
        log.append(ts(4), txn(2), 1);
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let mut a = LocalLog::new(NodeId::new(0));
        let mut b = LocalLog::new(NodeId::new(1));
        let mut c = LocalLog::new(NodeId::new(2));
        a.append(ts(1), txn(1), 1);
        a.append(ts(4), txn(4), 1);
        b.append(ts(2), txn(2), 1);
        b.append(ts(5), txn(5), 1);
        c.append(ts(3), txn(3), 1);
        let g = merge(&[a, b, c]);
        let order: Vec<u64> = g.iter().map(|r| r.txn.raw()).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
        assert_eq!(validate(&g), Ok(5));
    }

    #[test]
    fn merge_breaks_timestamp_ties_by_node() {
        let mut a = LocalLog::new(NodeId::new(1));
        let mut b = LocalLog::new(NodeId::new(0));
        a.append(ts(7), txn(10), 1);
        b.append(ts(7), txn(20), 1);
        let g = merge(&[a, b]);
        assert_eq!(g[0].node, NodeId::new(0));
        assert_eq!(g[1].node, NodeId::new(1));
        assert_eq!(validate(&g), Ok(2));
    }

    #[test]
    fn merge_of_empty_and_single_logs() {
        let empty = LocalLog::new(NodeId::new(0));
        assert!(merge(std::slice::from_ref(&empty)).is_empty());
        let mut one = LocalLog::new(NodeId::new(1));
        one.append(ts(1), txn(1), 1);
        let g = merge(&[empty, one]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn merge_randomized_matches_sort() {
        let mut rng = Rng::seed_from_u64(11);
        let mut locals: Vec<LocalLog> = (0..5).map(|n| LocalLog::new(NodeId::new(n))).collect();
        let mut all = Vec::new();
        let mut clock = [0u64; 5];
        for i in 0..2_000u64 {
            let n = rng.below(5) as usize;
            clock[n] += rng.below(3); // non-decreasing per node
            let rec_ts = ts(clock[n]);
            locals[n].append(rec_ts, txn(i), rng.below(5) as u32 + 1);
            all.push((rec_ts, n as u16, i));
        }
        assert_eq!(all.len(), 2_000);
        let g = merge(&locals);
        assert_eq!(g.len(), 2_000);
        assert_eq!(validate(&g), Ok(2_000));
        // identical to a global stable sort by the merge key
        let mut sorted: Vec<LogRecord> = locals
            .iter()
            .flat_map(|l| l.records().iter().copied())
            .collect();
        sorted.sort();
        assert_eq!(g, sorted);
    }

    #[test]
    fn validate_catches_order_violations() {
        let mut a = LocalLog::new(NodeId::new(0));
        a.append(ts(1), txn(1), 1);
        a.append(ts(2), txn(2), 1);
        let mut g = merge(&[a]);
        g.swap(0, 1);
        assert!(validate(&g).is_err());
    }

    #[test]
    fn validate_catches_lsn_gaps() {
        let rec = |lsn, ms| LogRecord {
            node: NodeId::new(0),
            lsn,
            commit_ts: ts(ms),
            txn: txn(lsn),
            pages: 1,
        };
        assert!(validate(&[rec(0, 1), rec(2, 2)]).is_err());
        assert!(validate(&[rec(0, 1), rec(1, 2)]).is_ok());
    }
}
