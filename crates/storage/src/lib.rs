//! # dbshare-storage — external storage device models (§3.3)
//!
//! Models the peripheral devices of the simulated system:
//!
//! * magnetic **disk arrays** per database partition (15 ms average
//!   access; 1 ms controller + 0.4 ms transfer are folded into the
//!   16.4 ms page access time the paper quotes),
//! * per-node **log disks** (5 ms average access → 6.4 ms per page),
//! * **disk caches** at the controllers — volatile (read hits only) or
//!   non-volatile (writes absorbed, destaged asynchronously) — managed
//!   LRU after IBM's DASD caches \[Gr89\], shared by all nodes and thus
//!   acting as a *global database buffer*,
//! * the **GEM** unit with separate page (50 µs) and entry (2 µs)
//!   access times, and
//! * the **interconnection network**, a bandwidth-limited server.
//!
//! All devices are FIFO queued servers ([`desim::MultiServer`]), so
//! queueing delays arise naturally under load. The [`StorageSubsystem`]
//! facade owns every device of a configuration and exposes the
//! operations the simulation engine needs at event time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod subsystem;

pub mod globallog;

pub use subsystem::{AccessClass, DeviceBusySnapshot, DeviceReport, StorageSubsystem};
